file(REMOVE_RECURSE
  "libzerodeg_monitoring.a"
)
