# Empty compiler generated dependencies file for zerodeg_monitoring.
# This may be replaced when dependencies are built.
