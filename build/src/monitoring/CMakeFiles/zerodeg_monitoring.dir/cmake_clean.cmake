file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_monitoring.dir/collector.cpp.o"
  "CMakeFiles/zerodeg_monitoring.dir/collector.cpp.o.d"
  "CMakeFiles/zerodeg_monitoring.dir/datalogger.cpp.o"
  "CMakeFiles/zerodeg_monitoring.dir/datalogger.cpp.o.d"
  "CMakeFiles/zerodeg_monitoring.dir/netsim.cpp.o"
  "CMakeFiles/zerodeg_monitoring.dir/netsim.cpp.o.d"
  "CMakeFiles/zerodeg_monitoring.dir/outlier_filter.cpp.o"
  "CMakeFiles/zerodeg_monitoring.dir/outlier_filter.cpp.o.d"
  "CMakeFiles/zerodeg_monitoring.dir/power_meter.cpp.o"
  "CMakeFiles/zerodeg_monitoring.dir/power_meter.cpp.o.d"
  "libzerodeg_monitoring.a"
  "libzerodeg_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
