
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitoring/collector.cpp" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/collector.cpp.o" "gcc" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/collector.cpp.o.d"
  "/root/repo/src/monitoring/datalogger.cpp" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/datalogger.cpp.o" "gcc" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/datalogger.cpp.o.d"
  "/root/repo/src/monitoring/netsim.cpp" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/netsim.cpp.o" "gcc" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/netsim.cpp.o.d"
  "/root/repo/src/monitoring/outlier_filter.cpp" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/outlier_filter.cpp.o" "gcc" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/outlier_filter.cpp.o.d"
  "/root/repo/src/monitoring/power_meter.cpp" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/power_meter.cpp.o" "gcc" "src/monitoring/CMakeFiles/zerodeg_monitoring.dir/power_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/zerodeg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/zerodeg_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
