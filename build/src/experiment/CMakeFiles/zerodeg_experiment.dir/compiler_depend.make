# Empty compiler generated dependencies file for zerodeg_experiment.
# This may be replaced when dependencies are built.
