file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_experiment.dir/census.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/census.cpp.o.d"
  "CMakeFiles/zerodeg_experiment.dir/config.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/config.cpp.o.d"
  "CMakeFiles/zerodeg_experiment.dir/figures.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/figures.cpp.o.d"
  "CMakeFiles/zerodeg_experiment.dir/prototype.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/prototype.cpp.o.d"
  "CMakeFiles/zerodeg_experiment.dir/report.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/report.cpp.o.d"
  "CMakeFiles/zerodeg_experiment.dir/runner.cpp.o"
  "CMakeFiles/zerodeg_experiment.dir/runner.cpp.o.d"
  "libzerodeg_experiment.a"
  "libzerodeg_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
