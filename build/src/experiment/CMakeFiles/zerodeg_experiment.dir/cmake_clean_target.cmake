file(REMOVE_RECURSE
  "libzerodeg_experiment.a"
)
