# Empty compiler generated dependencies file for zerodeg_energy.
# This may be replaced when dependencies are built.
