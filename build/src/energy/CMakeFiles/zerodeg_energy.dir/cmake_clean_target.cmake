file(REMOVE_RECURSE
  "libzerodeg_energy.a"
)
