file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_energy.dir/cooling_plant.cpp.o"
  "CMakeFiles/zerodeg_energy.dir/cooling_plant.cpp.o.d"
  "CMakeFiles/zerodeg_energy.dir/cost_model.cpp.o"
  "CMakeFiles/zerodeg_energy.dir/cost_model.cpp.o.d"
  "CMakeFiles/zerodeg_energy.dir/economizer.cpp.o"
  "CMakeFiles/zerodeg_energy.dir/economizer.cpp.o.d"
  "CMakeFiles/zerodeg_energy.dir/pue.cpp.o"
  "CMakeFiles/zerodeg_energy.dir/pue.cpp.o.d"
  "libzerodeg_energy.a"
  "libzerodeg_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
