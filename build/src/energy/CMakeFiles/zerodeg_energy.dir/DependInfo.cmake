
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cooling_plant.cpp" "src/energy/CMakeFiles/zerodeg_energy.dir/cooling_plant.cpp.o" "gcc" "src/energy/CMakeFiles/zerodeg_energy.dir/cooling_plant.cpp.o.d"
  "/root/repo/src/energy/cost_model.cpp" "src/energy/CMakeFiles/zerodeg_energy.dir/cost_model.cpp.o" "gcc" "src/energy/CMakeFiles/zerodeg_energy.dir/cost_model.cpp.o.d"
  "/root/repo/src/energy/economizer.cpp" "src/energy/CMakeFiles/zerodeg_energy.dir/economizer.cpp.o" "gcc" "src/energy/CMakeFiles/zerodeg_energy.dir/economizer.cpp.o.d"
  "/root/repo/src/energy/pue.cpp" "src/energy/CMakeFiles/zerodeg_energy.dir/pue.cpp.o" "gcc" "src/energy/CMakeFiles/zerodeg_energy.dir/pue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
