# Empty compiler generated dependencies file for zerodeg_hardware.
# This may be replaced when dependencies are built.
