
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hardware/components.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/components.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/components.cpp.o.d"
  "/root/repo/src/hardware/fleet.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/fleet.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/fleet.cpp.o.d"
  "/root/repo/src/hardware/network_switch.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/network_switch.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/network_switch.cpp.o.d"
  "/root/repo/src/hardware/sensor_chip.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/sensor_chip.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/sensor_chip.cpp.o.d"
  "/root/repo/src/hardware/server.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/server.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/server.cpp.o.d"
  "/root/repo/src/hardware/smart.cpp" "src/hardware/CMakeFiles/zerodeg_hardware.dir/smart.cpp.o" "gcc" "src/hardware/CMakeFiles/zerodeg_hardware.dir/smart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/zerodeg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
