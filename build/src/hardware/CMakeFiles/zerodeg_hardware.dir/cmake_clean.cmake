file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_hardware.dir/components.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/components.cpp.o.d"
  "CMakeFiles/zerodeg_hardware.dir/fleet.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/fleet.cpp.o.d"
  "CMakeFiles/zerodeg_hardware.dir/network_switch.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/network_switch.cpp.o.d"
  "CMakeFiles/zerodeg_hardware.dir/sensor_chip.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/sensor_chip.cpp.o.d"
  "CMakeFiles/zerodeg_hardware.dir/server.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/server.cpp.o.d"
  "CMakeFiles/zerodeg_hardware.dir/smart.cpp.o"
  "CMakeFiles/zerodeg_hardware.dir/smart.cpp.o.d"
  "libzerodeg_hardware.a"
  "libzerodeg_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
