file(REMOVE_RECURSE
  "libzerodeg_hardware.a"
)
