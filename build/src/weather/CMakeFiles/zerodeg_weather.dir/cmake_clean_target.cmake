file(REMOVE_RECURSE
  "libzerodeg_weather.a"
)
