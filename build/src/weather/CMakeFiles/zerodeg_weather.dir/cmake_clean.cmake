file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_weather.dir/psychrometrics.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/psychrometrics.cpp.o.d"
  "CMakeFiles/zerodeg_weather.dir/solar.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/solar.cpp.o.d"
  "CMakeFiles/zerodeg_weather.dir/stochastic.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/stochastic.cpp.o.d"
  "CMakeFiles/zerodeg_weather.dir/trace_io.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/trace_io.cpp.o.d"
  "CMakeFiles/zerodeg_weather.dir/weather_model.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/weather_model.cpp.o.d"
  "CMakeFiles/zerodeg_weather.dir/weather_station.cpp.o"
  "CMakeFiles/zerodeg_weather.dir/weather_station.cpp.o.d"
  "libzerodeg_weather.a"
  "libzerodeg_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
