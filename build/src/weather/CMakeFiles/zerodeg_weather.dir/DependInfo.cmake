
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/weather/psychrometrics.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/psychrometrics.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/psychrometrics.cpp.o.d"
  "/root/repo/src/weather/solar.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/solar.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/solar.cpp.o.d"
  "/root/repo/src/weather/stochastic.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/stochastic.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/stochastic.cpp.o.d"
  "/root/repo/src/weather/trace_io.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/trace_io.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/trace_io.cpp.o.d"
  "/root/repo/src/weather/weather_model.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/weather_model.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/weather_model.cpp.o.d"
  "/root/repo/src/weather/weather_station.cpp" "src/weather/CMakeFiles/zerodeg_weather.dir/weather_station.cpp.o" "gcc" "src/weather/CMakeFiles/zerodeg_weather.dir/weather_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
