# Empty compiler generated dependencies file for zerodeg_weather.
# This may be replaced when dependencies are built.
