# Empty dependencies file for zerodeg_workload.
# This may be replaced when dependencies are built.
