file(REMOVE_RECURSE
  "libzerodeg_workload.a"
)
