
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/archive.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/archive.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/archive.cpp.o.d"
  "/root/repo/src/workload/compressor.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/compressor.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/compressor.cpp.o.d"
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/crc32.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/crc32.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/crc32.cpp.o.d"
  "/root/repo/src/workload/load_job.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/load_job.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/load_job.cpp.o.d"
  "/root/repo/src/workload/md5.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/md5.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/md5.cpp.o.d"
  "/root/repo/src/workload/recover.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/recover.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/recover.cpp.o.d"
  "/root/repo/src/workload/scheduler.cpp" "src/workload/CMakeFiles/zerodeg_workload.dir/scheduler.cpp.o" "gcc" "src/workload/CMakeFiles/zerodeg_workload.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/zerodeg_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/zerodeg_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/zerodeg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
