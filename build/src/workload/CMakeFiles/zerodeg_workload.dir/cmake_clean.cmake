file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_workload.dir/archive.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/archive.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/compressor.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/compressor.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/corpus.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/crc32.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/crc32.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/load_job.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/load_job.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/md5.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/md5.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/recover.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/recover.cpp.o.d"
  "CMakeFiles/zerodeg_workload.dir/scheduler.cpp.o"
  "CMakeFiles/zerodeg_workload.dir/scheduler.cpp.o.d"
  "libzerodeg_workload.a"
  "libzerodeg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
