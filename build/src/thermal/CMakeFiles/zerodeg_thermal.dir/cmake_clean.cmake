file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_thermal.dir/condensation.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/condensation.cpp.o.d"
  "CMakeFiles/zerodeg_thermal.dir/enclosure.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/enclosure.cpp.o.d"
  "CMakeFiles/zerodeg_thermal.dir/envelope.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/envelope.cpp.o.d"
  "CMakeFiles/zerodeg_thermal.dir/rc_network.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/rc_network.cpp.o.d"
  "CMakeFiles/zerodeg_thermal.dir/server_thermal.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/server_thermal.cpp.o.d"
  "CMakeFiles/zerodeg_thermal.dir/tent_network.cpp.o"
  "CMakeFiles/zerodeg_thermal.dir/tent_network.cpp.o.d"
  "libzerodeg_thermal.a"
  "libzerodeg_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
