# Empty compiler generated dependencies file for zerodeg_thermal.
# This may be replaced when dependencies are built.
