file(REMOVE_RECURSE
  "libzerodeg_thermal.a"
)
