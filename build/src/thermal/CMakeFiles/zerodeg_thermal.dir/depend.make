# Empty dependencies file for zerodeg_thermal.
# This may be replaced when dependencies are built.
