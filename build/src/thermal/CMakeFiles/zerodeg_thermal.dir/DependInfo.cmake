
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/condensation.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/condensation.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/condensation.cpp.o.d"
  "/root/repo/src/thermal/enclosure.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/enclosure.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/enclosure.cpp.o.d"
  "/root/repo/src/thermal/envelope.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/envelope.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/envelope.cpp.o.d"
  "/root/repo/src/thermal/rc_network.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/rc_network.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/rc_network.cpp.o.d"
  "/root/repo/src/thermal/server_thermal.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/server_thermal.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/server_thermal.cpp.o.d"
  "/root/repo/src/thermal/tent_network.cpp" "src/thermal/CMakeFiles/zerodeg_thermal.dir/tent_network.cpp.o" "gcc" "src/thermal/CMakeFiles/zerodeg_thermal.dir/tent_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
