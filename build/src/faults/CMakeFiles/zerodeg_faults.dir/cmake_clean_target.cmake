file(REMOVE_RECURSE
  "libzerodeg_faults.a"
)
