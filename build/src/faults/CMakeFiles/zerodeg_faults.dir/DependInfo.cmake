
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/component_faults.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/component_faults.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/component_faults.cpp.o.d"
  "/root/repo/src/faults/distributions.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/distributions.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/distributions.cpp.o.d"
  "/root/repo/src/faults/fault_injector.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/fault_injector.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/fault_injector.cpp.o.d"
  "/root/repo/src/faults/fault_log.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/fault_log.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/fault_log.cpp.o.d"
  "/root/repo/src/faults/hazard.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/hazard.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/hazard.cpp.o.d"
  "/root/repo/src/faults/memory_faults.cpp" "src/faults/CMakeFiles/zerodeg_faults.dir/memory_faults.cpp.o" "gcc" "src/faults/CMakeFiles/zerodeg_faults.dir/memory_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/zerodeg_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/zerodeg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
