# Empty dependencies file for zerodeg_faults.
# This may be replaced when dependencies are built.
