file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_faults.dir/component_faults.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/component_faults.cpp.o.d"
  "CMakeFiles/zerodeg_faults.dir/distributions.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/distributions.cpp.o.d"
  "CMakeFiles/zerodeg_faults.dir/fault_injector.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/fault_injector.cpp.o.d"
  "CMakeFiles/zerodeg_faults.dir/fault_log.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/fault_log.cpp.o.d"
  "CMakeFiles/zerodeg_faults.dir/hazard.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/hazard.cpp.o.d"
  "CMakeFiles/zerodeg_faults.dir/memory_faults.cpp.o"
  "CMakeFiles/zerodeg_faults.dir/memory_faults.cpp.o.d"
  "libzerodeg_faults.a"
  "libzerodeg_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
