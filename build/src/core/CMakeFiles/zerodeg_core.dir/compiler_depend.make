# Empty compiler generated dependencies file for zerodeg_core.
# This may be replaced when dependencies are built.
