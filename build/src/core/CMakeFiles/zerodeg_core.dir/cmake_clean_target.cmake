file(REMOVE_RECURSE
  "libzerodeg_core.a"
)
