file(REMOVE_RECURSE
  "CMakeFiles/zerodeg_core.dir/csv.cpp.o"
  "CMakeFiles/zerodeg_core.dir/csv.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/event_queue.cpp.o"
  "CMakeFiles/zerodeg_core.dir/event_queue.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/log.cpp.o"
  "CMakeFiles/zerodeg_core.dir/log.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/rng.cpp.o"
  "CMakeFiles/zerodeg_core.dir/rng.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/sim_time.cpp.o"
  "CMakeFiles/zerodeg_core.dir/sim_time.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/stats.cpp.o"
  "CMakeFiles/zerodeg_core.dir/stats.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/timeseries.cpp.o"
  "CMakeFiles/zerodeg_core.dir/timeseries.cpp.o.d"
  "CMakeFiles/zerodeg_core.dir/units.cpp.o"
  "CMakeFiles/zerodeg_core.dir/units.cpp.o.d"
  "libzerodeg_core.a"
  "libzerodeg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
