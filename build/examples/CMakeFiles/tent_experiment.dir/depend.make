# Empty dependencies file for tent_experiment.
# This may be replaced when dependencies are built.
