file(REMOVE_RECURSE
  "CMakeFiles/tent_experiment.dir/tent_experiment.cpp.o"
  "CMakeFiles/tent_experiment.dir/tent_experiment.cpp.o.d"
  "tent_experiment"
  "tent_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tent_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
