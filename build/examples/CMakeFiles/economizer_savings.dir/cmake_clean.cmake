file(REMOVE_RECURSE
  "CMakeFiles/economizer_savings.dir/economizer_savings.cpp.o"
  "CMakeFiles/economizer_savings.dir/economizer_savings.cpp.o.d"
  "economizer_savings"
  "economizer_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economizer_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
