# Empty dependencies file for economizer_savings.
# This may be replaced when dependencies are built.
