file(REMOVE_RECURSE
  "CMakeFiles/workload_pipeline.dir/workload_pipeline.cpp.o"
  "CMakeFiles/workload_pipeline.dir/workload_pipeline.cpp.o.d"
  "workload_pipeline"
  "workload_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
