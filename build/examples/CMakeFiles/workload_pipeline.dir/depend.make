# Empty dependencies file for workload_pipeline.
# This may be replaced when dependencies are built.
