# Empty dependencies file for condensation_study.
# This may be replaced when dependencies are built.
