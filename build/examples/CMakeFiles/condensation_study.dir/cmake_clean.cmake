file(REMOVE_RECURSE
  "CMakeFiles/condensation_study.dir/condensation_study.cpp.o"
  "CMakeFiles/condensation_study.dir/condensation_study.cpp.o.d"
  "condensation_study"
  "condensation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
