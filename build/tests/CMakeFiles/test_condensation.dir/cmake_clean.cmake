file(REMOVE_RECURSE
  "CMakeFiles/test_condensation.dir/test_condensation.cpp.o"
  "CMakeFiles/test_condensation.dir/test_condensation.cpp.o.d"
  "test_condensation"
  "test_condensation.pdb"
  "test_condensation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
