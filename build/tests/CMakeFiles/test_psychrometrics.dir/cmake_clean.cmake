file(REMOVE_RECURSE
  "CMakeFiles/test_psychrometrics.dir/test_psychrometrics.cpp.o"
  "CMakeFiles/test_psychrometrics.dir/test_psychrometrics.cpp.o.d"
  "test_psychrometrics"
  "test_psychrometrics.pdb"
  "test_psychrometrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psychrometrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
