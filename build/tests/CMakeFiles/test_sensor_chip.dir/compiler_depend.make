# Empty compiler generated dependencies file for test_sensor_chip.
# This may be replaced when dependencies are built.
