file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_chip.dir/test_sensor_chip.cpp.o"
  "CMakeFiles/test_sensor_chip.dir/test_sensor_chip.cpp.o.d"
  "test_sensor_chip"
  "test_sensor_chip.pdb"
  "test_sensor_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
