file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_archive.dir/test_corpus_archive.cpp.o"
  "CMakeFiles/test_corpus_archive.dir/test_corpus_archive.cpp.o.d"
  "test_corpus_archive"
  "test_corpus_archive.pdb"
  "test_corpus_archive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
