file(REMOVE_RECURSE
  "CMakeFiles/test_enclosure.dir/test_enclosure.cpp.o"
  "CMakeFiles/test_enclosure.dir/test_enclosure.cpp.o.d"
  "test_enclosure"
  "test_enclosure.pdb"
  "test_enclosure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
