# Empty compiler generated dependencies file for test_enclosure.
# This may be replaced when dependencies are built.
