file(REMOVE_RECURSE
  "CMakeFiles/test_server_thermal.dir/test_server_thermal.cpp.o"
  "CMakeFiles/test_server_thermal.dir/test_server_thermal.cpp.o.d"
  "test_server_thermal"
  "test_server_thermal.pdb"
  "test_server_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
