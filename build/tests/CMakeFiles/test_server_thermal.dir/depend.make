# Empty dependencies file for test_server_thermal.
# This may be replaced when dependencies are built.
