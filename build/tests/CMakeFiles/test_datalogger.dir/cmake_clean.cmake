file(REMOVE_RECURSE
  "CMakeFiles/test_datalogger.dir/test_datalogger.cpp.o"
  "CMakeFiles/test_datalogger.dir/test_datalogger.cpp.o.d"
  "test_datalogger"
  "test_datalogger.pdb"
  "test_datalogger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datalogger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
