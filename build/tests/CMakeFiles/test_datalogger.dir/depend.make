# Empty dependencies file for test_datalogger.
# This may be replaced when dependencies are built.
