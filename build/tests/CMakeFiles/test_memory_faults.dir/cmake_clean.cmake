file(REMOVE_RECURSE
  "CMakeFiles/test_memory_faults.dir/test_memory_faults.cpp.o"
  "CMakeFiles/test_memory_faults.dir/test_memory_faults.cpp.o.d"
  "test_memory_faults"
  "test_memory_faults.pdb"
  "test_memory_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
