# Empty compiler generated dependencies file for test_tent_network.
# This may be replaced when dependencies are built.
