file(REMOVE_RECURSE
  "CMakeFiles/test_tent_network.dir/test_tent_network.cpp.o"
  "CMakeFiles/test_tent_network.dir/test_tent_network.cpp.o.d"
  "test_tent_network"
  "test_tent_network.pdb"
  "test_tent_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tent_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
