file(REMOVE_RECURSE
  "CMakeFiles/test_component_faults.dir/test_component_faults.cpp.o"
  "CMakeFiles/test_component_faults.dir/test_component_faults.cpp.o.d"
  "test_component_faults"
  "test_component_faults.pdb"
  "test_component_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_component_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
