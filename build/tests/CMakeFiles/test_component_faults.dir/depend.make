# Empty dependencies file for test_component_faults.
# This may be replaced when dependencies are built.
