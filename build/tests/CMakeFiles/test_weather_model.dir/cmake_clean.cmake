file(REMOVE_RECURSE
  "CMakeFiles/test_weather_model.dir/test_weather_model.cpp.o"
  "CMakeFiles/test_weather_model.dir/test_weather_model.cpp.o.d"
  "test_weather_model"
  "test_weather_model.pdb"
  "test_weather_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weather_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
