file(REMOVE_RECURSE
  "CMakeFiles/test_load_job.dir/test_load_job.cpp.o"
  "CMakeFiles/test_load_job.dir/test_load_job.cpp.o.d"
  "test_load_job"
  "test_load_job.pdb"
  "test_load_job[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
