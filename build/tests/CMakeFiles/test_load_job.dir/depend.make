# Empty dependencies file for test_load_job.
# This may be replaced when dependencies are built.
