file(REMOVE_RECURSE
  "CMakeFiles/test_md5.dir/test_md5.cpp.o"
  "CMakeFiles/test_md5.dir/test_md5.cpp.o.d"
  "test_md5"
  "test_md5.pdb"
  "test_md5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
