# Empty compiler generated dependencies file for test_network_switch.
# This may be replaced when dependencies are built.
