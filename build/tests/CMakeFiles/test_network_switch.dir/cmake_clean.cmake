file(REMOVE_RECURSE
  "CMakeFiles/test_network_switch.dir/test_network_switch.cpp.o"
  "CMakeFiles/test_network_switch.dir/test_network_switch.cpp.o.d"
  "test_network_switch"
  "test_network_switch.pdb"
  "test_network_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
