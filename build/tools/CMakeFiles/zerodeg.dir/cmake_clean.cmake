file(REMOVE_RECURSE
  "CMakeFiles/zerodeg.dir/zerodeg_cli.cpp.o"
  "CMakeFiles/zerodeg.dir/zerodeg_cli.cpp.o.d"
  "zerodeg"
  "zerodeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerodeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
