# Empty dependencies file for zerodeg.
# This may be replaced when dependencies are built.
