file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_tco.dir/bench_tab_tco.cpp.o"
  "CMakeFiles/bench_tab_tco.dir/bench_tab_tco.cpp.o.d"
  "bench_tab_tco"
  "bench_tab_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
