# Empty compiler generated dependencies file for bench_tab_tco.
# This may be replaced when dependencies are built.
