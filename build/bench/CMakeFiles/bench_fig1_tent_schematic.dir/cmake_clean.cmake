file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tent_schematic.dir/bench_fig1_tent_schematic.cpp.o"
  "CMakeFiles/bench_fig1_tent_schematic.dir/bench_fig1_tent_schematic.cpp.o.d"
  "bench_fig1_tent_schematic"
  "bench_fig1_tent_schematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tent_schematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
