# Empty compiler generated dependencies file for bench_fig1_tent_schematic.
# This may be replaced when dependencies are built.
