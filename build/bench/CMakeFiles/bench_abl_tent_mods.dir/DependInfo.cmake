
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_tent_mods.cpp" "bench/CMakeFiles/bench_abl_tent_mods.dir/bench_abl_tent_mods.cpp.o" "gcc" "bench/CMakeFiles/bench_abl_tent_mods.dir/bench_abl_tent_mods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/zerodeg_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zerodeg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/zerodeg_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/zerodeg_monitoring.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/zerodeg_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/zerodeg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/zerodeg_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/zerodeg_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zerodeg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
