# Empty dependencies file for bench_abl_tent_mods.
# This may be replaced when dependencies are built.
