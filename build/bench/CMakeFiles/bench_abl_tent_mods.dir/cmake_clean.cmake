file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tent_mods.dir/bench_abl_tent_mods.cpp.o"
  "CMakeFiles/bench_abl_tent_mods.dir/bench_abl_tent_mods.cpp.o.d"
  "bench_abl_tent_mods"
  "bench_abl_tent_mods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tent_mods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
