# Empty compiler generated dependencies file for bench_abl_climate.
# This may be replaced when dependencies are built.
