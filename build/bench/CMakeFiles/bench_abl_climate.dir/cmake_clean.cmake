file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_climate.dir/bench_abl_climate.cpp.o"
  "CMakeFiles/bench_abl_climate.dir/bench_abl_climate.cpp.o.d"
  "bench_abl_climate"
  "bench_abl_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
