file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_economizers.dir/bench_abl_economizers.cpp.o"
  "CMakeFiles/bench_abl_economizers.dir/bench_abl_economizers.cpp.o.d"
  "bench_abl_economizers"
  "bench_abl_economizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_economizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
