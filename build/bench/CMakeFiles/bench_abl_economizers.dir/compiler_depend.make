# Empty compiler generated dependencies file for bench_abl_economizers.
# This may be replaced when dependencies are built.
