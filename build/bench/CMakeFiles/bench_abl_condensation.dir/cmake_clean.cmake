file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_condensation.dir/bench_abl_condensation.cpp.o"
  "CMakeFiles/bench_abl_condensation.dir/bench_abl_condensation.cpp.o.d"
  "bench_abl_condensation"
  "bench_abl_condensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
