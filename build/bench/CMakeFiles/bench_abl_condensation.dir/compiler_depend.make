# Empty compiler generated dependencies file for bench_abl_condensation.
# This may be replaced when dependencies are built.
