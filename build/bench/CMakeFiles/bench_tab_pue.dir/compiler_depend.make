# Empty compiler generated dependencies file for bench_tab_pue.
# This may be replaced when dependencies are built.
