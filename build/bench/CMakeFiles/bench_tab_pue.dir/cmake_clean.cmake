file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_pue.dir/bench_tab_pue.cpp.o"
  "CMakeFiles/bench_tab_pue.dir/bench_tab_pue.cpp.o.d"
  "bench_tab_pue"
  "bench_tab_pue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_pue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
