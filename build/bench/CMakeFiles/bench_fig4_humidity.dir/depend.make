# Empty dependencies file for bench_fig4_humidity.
# This may be replaced when dependencies are built.
