file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_prototype.dir/bench_tab_prototype.cpp.o"
  "CMakeFiles/bench_tab_prototype.dir/bench_tab_prototype.cpp.o.d"
  "bench_tab_prototype"
  "bench_tab_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
