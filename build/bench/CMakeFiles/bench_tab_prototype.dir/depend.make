# Empty dependencies file for bench_tab_prototype.
# This may be replaced when dependencies are built.
