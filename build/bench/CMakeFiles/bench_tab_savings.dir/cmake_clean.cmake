file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_savings.dir/bench_tab_savings.cpp.o"
  "CMakeFiles/bench_tab_savings.dir/bench_tab_savings.cpp.o.d"
  "bench_tab_savings"
  "bench_tab_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
