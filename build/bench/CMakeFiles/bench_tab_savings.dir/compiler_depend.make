# Empty compiler generated dependencies file for bench_tab_savings.
# This may be replaced when dependencies are built.
