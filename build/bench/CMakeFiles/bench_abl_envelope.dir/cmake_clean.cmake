file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_envelope.dir/bench_abl_envelope.cpp.o"
  "CMakeFiles/bench_abl_envelope.dir/bench_abl_envelope.cpp.o.d"
  "bench_abl_envelope"
  "bench_abl_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
