# Empty dependencies file for bench_abl_envelope.
# This may be replaced when dependencies are built.
