# Empty compiler generated dependencies file for bench_tab_hashes.
# This may be replaced when dependencies are built.
