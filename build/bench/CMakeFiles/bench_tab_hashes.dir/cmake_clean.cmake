file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_hashes.dir/bench_tab_hashes.cpp.o"
  "CMakeFiles/bench_tab_hashes.dir/bench_tab_hashes.cpp.o.d"
  "bench_tab_hashes"
  "bench_tab_hashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
