file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_faults.dir/bench_tab_faults.cpp.o"
  "CMakeFiles/bench_tab_faults.dir/bench_tab_faults.cpp.o.d"
  "bench_tab_faults"
  "bench_tab_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
