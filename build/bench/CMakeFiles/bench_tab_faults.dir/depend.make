# Empty dependencies file for bench_tab_faults.
# This may be replaced when dependencies are built.
