# Empty dependencies file for bench_fig3_temperatures.
# This may be replaced when dependencies are built.
