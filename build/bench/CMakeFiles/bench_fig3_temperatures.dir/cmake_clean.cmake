file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_temperatures.dir/bench_fig3_temperatures.cpp.o"
  "CMakeFiles/bench_fig3_temperatures.dir/bench_fig3_temperatures.cpp.o.d"
  "bench_fig3_temperatures"
  "bench_fig3_temperatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_temperatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
