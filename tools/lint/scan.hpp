// Shared lexing layer for zerodeg_lint: the three-channel line lexer, token
// helpers, the suppression grammar, and the line fingerprint.
//
// Both passes of the checker build on this: the per-file checks
// (tools/lint/lint.cpp) and the whole-project analyzer
// (tools/lint/project.cpp) must see the exact same notion of "code" —
// comments and string/char literal interiors blanked, columns aligned with
// the original text — or a construct could be banned in one pass and
// invisible to the other.  The lexer additionally records every string
// literal it blanks (line, column, contents), which is how the project pass
// harvests RNG stream names without re-tokenising.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zerodeg::lint {

struct Line {
    std::string raw;      ///< original text
    std::string code;     ///< comments and string/char literal bodies blanked
    std::string comment;  ///< the inverse: only comment text kept (suppressions
                          ///< live here — never in string literals)
};

/// A string literal blanked out of the code channel.  `line` is 1-based,
/// `col` is the 0-based column of the opening quote (raw strings: of the
/// `R`), and `text` is the uninterpreted body — escapes are kept as spelled,
/// which is exact enough for name-collision keying.
struct StringLiteral {
    std::size_t line = 0;
    std::size_t col = 0;
    std::string text;
};

struct LexedSource {
    std::vector<Line> lines;
    std::vector<StringLiteral> literals;  ///< in source order
};

/// Split `content` into lines with comments and literal interiors replaced by
/// spaces.  Handles //, /*...*/ (multi-line), "..." with escapes, '...', and
/// R"delim(...)delim" raw strings.  Keeping the blanked text the same length
/// as the source keeps every column aligned with the original.
[[nodiscard]] LexedSource lex(std::string_view content);

[[nodiscard]] bool is_ident_char(char c);

/// Position of `token` in `code` at an identifier boundary (the characters
/// adjacent to the match are not identifier characters), or npos.
[[nodiscard]] std::size_t find_token(std::string_view code, std::string_view token,
                                     std::size_t from = 0);

[[nodiscard]] bool has_token(std::string_view code, std::string_view token);

[[nodiscard]] std::string strip_ws(std::string_view s);

/// FNV-1a of the whitespace-stripped raw text of 1-based `line` — the
/// baseline key, stable across unrelated edits that shift line numbers.
/// Returns 0 for out-of-range lines.
[[nodiscard]] std::uint64_t line_fingerprint(const std::vector<Line>& lines, std::size_t line);

/// One `// zerodeg-lint: allow(ZDxxx[, ZDyyy]): reason` comment.
struct Suppression {
    std::size_t comment_line = 0;  ///< 1-based line holding the comment
    std::size_t target_line = 0;   ///< line the allowance applies to
    std::vector<std::string> ids;
    bool has_reason = false;
};

[[nodiscard]] std::vector<Suppression> parse_suppressions(const std::vector<Line>& lines);

}  // namespace zerodeg::lint
