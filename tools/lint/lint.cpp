#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"  // fnv1a — same fingerprint primitive the RNG streams use
#include "lint/scan.hpp"

namespace zerodeg::lint {
namespace {

// ---------------------------------------------------------------------------
// Check table
// ---------------------------------------------------------------------------

constexpr std::array<CheckInfo, 21> kChecks{{
    {"ZD001", Severity::kError,
     "banned C RNG (rand/srand): unseeded, platform-varying, not stream-isolated"},
    {"ZD002", Severity::kError,
     "std::random_device: nondeterministic entropy breaks byte-identical replays"},
    {"ZD003", Severity::kError,
     "wall-clock read (system/steady clock, time()) outside src/monitoring/ or the "
     "core::bench_clock seam"},
    {"ZD004", Severity::kError, "getenv outside tools/: hidden environment input to a sweep"},
    {"ZD005", Severity::kError,
     "unordered container iteration in a function that writes CSV/report/journal bytes"},
    {"ZD006", Severity::kError,
     "unordered reduction (std::reduce / std::execution::par / omp reduction) in float paths"},
    {"ZD007", Severity::kError,
     "raw <random> engine or distribution outside src/core/ (platform-unstable draws)"},
    {"ZD008", Severity::kError, "header missing #pragma once as its first code line"},
    {"ZD009", Severity::kError, "using namespace in a header"},
    {"ZD010", Severity::kWarning, "ErrorCode-returning function not marked [[nodiscard]]"},
    {"ZD011", Severity::kWarning,
     "value-returning arithmetic operator in a header not marked [[nodiscard]]"},
    {"ZD012", Severity::kError,
     "direct std::ofstream/fopen in a durable-writer module (src/experiment/, "
     "src/monitoring/): bypasses the core::io fault-injection seam"},
    {"ZD013", Severity::kError,
     "core::bench_clock used outside bench/ or tools/: the wall-clock timing seam is "
     "benchmark-only"},
    {"ZD014", Severity::kError,
     "raw socket/pipe/process primitive outside src/core/transport*: cross-process I/O "
     "must ride the core::Transport seam so FaultyTransport and the torture cover it"},
    {"ZD015", Severity::kError,
     "[project] include edge violates the layer DAG, or an include cycle exists"},
    {"ZD016", Severity::kError,
     "[project] RNG stream-name literal reused across files: correlated randomness"},
    {"ZD017", Severity::kError,
     "[project] bare-statement call discards a known ErrorCode-returning function"},
    {"ZD018", Severity::kError,
     "[project] non-associative float reduction (std::accumulate/std::reduce over "
     "floating accumulators) outside the core/parallel.hpp ordered-reduce seam"},
    {"ZD097", Severity::kError,
     "zerodeg-lint suppression whose line no longer triggers the allowed check"},
    {"ZD098", Severity::kError, "zerodeg-lint suppression without a reason string"},
    {"ZD099", Severity::kError, "zerodeg-lint suppression naming an unknown check id"},
}};

// ---------------------------------------------------------------------------
// ZD005 support: function regions and unordered-container tracking
// ---------------------------------------------------------------------------

struct FunctionRegion {
    std::size_t first_line = 0;  // 1-based, inclusive
    std::size_t last_line = 0;
};

/// Best-effort segmentation of a file into maximal function bodies: a `{`
/// whose preceding non-space character is `)` opens a function body unless
/// the matching `(` is preceded by a control keyword (if/for/while/switch/
/// catch).  Nested blocks and lambdas stay inside the enclosing region.
[[nodiscard]] std::vector<FunctionRegion> find_function_regions(const std::vector<Line>& lines) {
    std::string flat;
    std::vector<std::size_t> line_of;  // flat index -> 1-based line
    for (std::size_t i = 0; i < lines.size(); ++i) {
        for (const char c : lines[i].code) {
            flat += c;
            line_of.push_back(i + 1);
        }
        flat += '\n';
        line_of.push_back(i + 1);
    }

    const auto prev_word = [&](std::size_t pos) -> std::string {
        // Word ending at the last non-space char before `pos`.
        std::size_t j = pos;
        while (j > 0 && std::isspace(static_cast<unsigned char>(flat[j - 1])) != 0) --j;
        std::size_t end = j;
        while (j > 0 && is_ident_char(flat[j - 1])) --j;
        return flat.substr(j, end - j);
    };

    std::vector<FunctionRegion> regions;
    int depth = 0;
    int region_open_depth = -1;
    std::size_t region_start = 0;
    for (std::size_t i = 0; i < flat.size(); ++i) {
        const char c = flat[i];
        if (c == '{') {
            if (region_open_depth < 0) {
                std::size_t j = i;
                while (j > 0 && std::isspace(static_cast<unsigned char>(flat[j - 1])) != 0) --j;
                if (j > 0 && flat[j - 1] == ')') {
                    // Walk back over the balanced parens to the word before.
                    int pdepth = 0;
                    std::size_t k = j - 1;
                    while (true) {
                        if (flat[k] == ')') ++pdepth;
                        if (flat[k] == '(' && --pdepth == 0) break;
                        if (k == 0) break;
                        --k;
                    }
                    const std::string word = prev_word(k);
                    if (word != "if" && word != "for" && word != "while" && word != "switch" &&
                        word != "catch") {
                        region_open_depth = depth;
                        region_start = line_of[i];
                    }
                }
            }
            ++depth;
        } else if (c == '}') {
            --depth;
            if (region_open_depth >= 0 && depth == region_open_depth) {
                regions.push_back({region_start, line_of[i]});
                region_open_depth = -1;
            }
        }
    }
    return regions;
}

/// Names of variables declared as std::unordered_map/std::unordered_set
/// anywhere in the file (declaration granularity is file-wide on purpose:
/// members declared in a header and iterated in the matching .cpp are the
/// common case this misses, so .cpp-local members are tracked permissively).
[[nodiscard]] std::vector<std::string> unordered_variable_names(const std::vector<Line>& lines) {
    std::vector<std::string> names;
    for (const Line& line : lines) {
        const std::string& code = line.code;
        for (const std::string_view type : {"unordered_map", "unordered_set"}) {
            for (std::size_t pos = find_token(code, type); pos != std::string_view::npos;
                 pos = find_token(code, type, pos + 1)) {
                std::size_t i = pos + type.size();
                if (i >= code.size() || code[i] != '<') continue;
                int adepth = 0;
                for (; i < code.size(); ++i) {
                    if (code[i] == '<') ++adepth;
                    if (code[i] == '>' && --adepth == 0) {
                        ++i;
                        break;
                    }
                }
                while (i < code.size() && (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
                                           code[i] == '&' || code[i] == '*'))
                    ++i;
                std::size_t start = i;
                while (i < code.size() && is_ident_char(code[i])) ++i;
                if (i > start) names.push_back(code.substr(start, i - start));
            }
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

/// Range-for over `var`: a `for` with a single `:` (not `::`) followed by the
/// variable token.  Counting loops whose condition mentions `var.size()` and
/// qualified names like std::size_t do not match.
[[nodiscard]] bool is_range_for_over(std::string_view code, const std::string& var) {
    const std::size_t f = find_token(code, "for");
    if (f == std::string_view::npos) return false;
    for (std::size_t i = f; i < code.size(); ++i) {
        if (code[i] != ':') continue;
        if ((i > 0 && code[i - 1] == ':') || (i + 1 < code.size() && code[i + 1] == ':')) {
            ++i;  // skip both halves of '::'
            continue;
        }
        return find_token(code.substr(i + 1), var) != std::string_view::npos;
    }
    return false;
}

/// `var.begin()` / `var.cbegin()` with a proper token boundary on `var`
/// (so `item.begin()` does not count as `m.begin()`).
[[nodiscard]] bool is_iterator_walk_over(std::string_view code, const std::string& var) {
    for (std::size_t p = find_token(code, var); p != std::string_view::npos;
         p = find_token(code, var, p + 1)) {
        const std::string_view rest = code.substr(p + var.size());
        if (rest.rfind(".begin()", 0) == 0 || rest.rfind(".cbegin()", 0) == 0) return true;
    }
    return false;
}

/// Tokens whose presence marks a function as producing output bytes that
/// must be deterministic (CSV rows, report text, journal records).
[[nodiscard]] bool is_writer_line(std::string_view code) {
    for (const std::string_view t :
         {"write_row", "write_series_csv", "CsvWriter", "ofstream", "ostream", "fprintf", "fputs",
          "journal", "Journal", "csv", "Csv", "report", "Report"}) {
        if (has_token(code, t)) return true;
    }
    return code.find(".write(") != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// The checks
// ---------------------------------------------------------------------------

struct PathTraits {
    bool is_header = false;
    bool in_monitoring = false;  // src/monitoring/: owns real-telemetry timestamps
    bool in_tools = false;       // the CLI layer: the one place getenv is policy
    bool in_core = false;        // src/core/: owns the RNG engines
    bool in_durable_module = false;  // src/experiment/ + src/monitoring/: every
                                     // durable write must use the core::io seam
    bool in_bench = false;           // bench/: the one consumer of bench_clock
    bool is_bench_clock_impl = false;  // src/core/bench_clock.*: the seam itself
    bool is_transport_impl = false;    // src/core/transport*: the one place raw
                                       // sockets/pipes are legal (ZD014)
};

[[nodiscard]] PathTraits classify(std::string_view path) {
    PathTraits t;
    t.is_header = path.ends_with(".hpp") || path.ends_with(".h");
    t.in_monitoring = path.find("src/monitoring/") != std::string_view::npos;
    t.in_tools = path.rfind("tools/", 0) == 0 || path.find("/tools/") != std::string_view::npos;
    t.in_core = path.find("src/core/") != std::string_view::npos;
    t.in_durable_module =
        t.in_monitoring || path.find("src/experiment/") != std::string_view::npos;
    t.in_bench = path.rfind("bench/", 0) == 0 || path.find("/bench/") != std::string_view::npos;
    t.is_bench_clock_impl = path.find("src/core/bench_clock.") != std::string_view::npos;
    t.is_transport_impl = path.find("src/core/transport") != std::string_view::npos;
    return t;
}

void emit(std::vector<Diagnostic>& out, std::string_view path, std::size_t line,
          std::string_view id, std::string message, std::string hint,
          const std::vector<Line>& lines) {
    Diagnostic d;
    d.file = std::string(path);
    d.line = line;
    d.id = std::string(id);
    for (const CheckInfo& c : kChecks)
        if (c.id == id) d.severity = c.severity;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.fingerprint = line_fingerprint(lines, line);
    out.push_back(std::move(d));
}

void check_banned_tokens(std::vector<Diagnostic>& out, std::string_view path,
                         const std::vector<Line>& lines, const PathTraits& traits) {
    struct Rule {
        std::string_view token;
        std::string_view id;
        std::string_view what;
        std::string_view hint;
    };
    static const std::vector<Rule> rules = {
        {"rand", "ZD001", "C rand()", "draw from a named core::rng stream instead"},
        {"srand", "ZD001", "C srand()", "seeding is owned by the experiment config base seed"},
        {"random_device", "ZD002", "std::random_device",
         "derive seeds from the campaign base seed via core::RngStream(seed, name)"},
        {"system_clock", "ZD003", "std::chrono::system_clock",
         "simulation time comes from core::SimTime; wall clocks live in src/monitoring/ only"},
        {"steady_clock", "ZD003", "std::chrono::steady_clock",
         "simulation time comes from core::SimTime; wall clocks live in src/monitoring/ only"},
        {"high_resolution_clock", "ZD003", "std::chrono::high_resolution_clock",
         "simulation time comes from core::SimTime; wall clocks live in src/monitoring/ only"},
        {"clock_gettime", "ZD003", "clock_gettime()",
         "simulation time comes from core::SimTime; wall clocks live in src/monitoring/ only"},
        {"gettimeofday", "ZD003", "gettimeofday()",
         "simulation time comes from core::SimTime; wall clocks live in src/monitoring/ only"},
        {"localtime", "ZD003", "localtime()",
         "timestamps must be derived from core::SimTime, not the host clock/timezone"},
        {"gmtime", "ZD003", "gmtime()",
         "timestamps must be derived from core::SimTime, not the host clock/timezone"},
        {"getenv", "ZD004", "getenv()",
         "environment input is only read by the CLI layer (tools/), then passed down explicitly"},
        {"mt19937", "ZD007", "std::mt19937", "all draws go through named core::rng streams"},
        {"mt19937_64", "ZD007", "std::mt19937_64", "all draws go through named core::rng streams"},
        {"minstd_rand", "ZD007", "std::minstd_rand", "all draws go through named core::rng streams"},
        {"minstd_rand0", "ZD007", "std::minstd_rand0",
         "all draws go through named core::rng streams"},
        {"default_random_engine", "ZD007", "std::default_random_engine",
         "all draws go through named core::rng streams"},
        {"uniform_int_distribution", "ZD007", "std::uniform_int_distribution",
         "libstdc++ distributions are platform-unstable; use RngStream::uniform_int"},
        {"uniform_real_distribution", "ZD007", "std::uniform_real_distribution",
         "libstdc++ distributions are platform-unstable; use RngStream::uniform"},
        {"normal_distribution", "ZD007", "std::normal_distribution",
         "libstdc++ distributions are platform-unstable; use RngStream::normal"},
        {"poisson_distribution", "ZD007", "std::poisson_distribution",
         "libstdc++ distributions are platform-unstable; use RngStream::poisson"},
        {"exponential_distribution", "ZD007", "std::exponential_distribution",
         "libstdc++ distributions are platform-unstable; use RngStream::exponential"},
        {"std::reduce", "ZD006", "std::reduce",
         "reduction order must be fixed: use the ordered reduce in core/parallel.hpp"},
        {"std::transform_reduce", "ZD006", "std::transform_reduce",
         "reduction order must be fixed: use the ordered reduce in core/parallel.hpp"},
        {"std::execution::par", "ZD006", "std::execution::par",
         "parallelism goes through core::TaskPool with seed-sharded cells and ordered reduce"},
        {"bench_clock", "ZD013", "core::bench_clock",
         "benchmark timing lives under bench/ and tools/ only; simulation code must stay "
         "wall-clock free"},
        {"std::execution::par_unseq", "ZD006", "std::execution::par_unseq",
         "parallelism goes through core::TaskPool with seed-sharded cells and ordered reduce"},
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        std::vector<std::string_view> hit_ids;  // one diagnostic per id per line
        for (const Rule& r : rules) {
            if (r.id == "ZD003" && (traits.in_monitoring || traits.is_bench_clock_impl)) {
                continue;  // bench_clock.cpp IS the sanctioned steady_clock read
            }
            if (r.id == "ZD004" && traits.in_tools) continue;
            if (r.id == "ZD007" && traits.in_core) continue;
            if (r.id == "ZD013" &&
                (traits.in_bench || traits.in_tools || traits.is_bench_clock_impl)) {
                continue;  // the seam and its sanctioned consumers
            }
            std::size_t pos;
            if (r.token.find("::") != std::string_view::npos) {
                pos = code.find(r.token);
                if (pos != std::string::npos && pos + r.token.size() < code.size() &&
                    is_ident_char(code[pos + r.token.size()]))
                    pos = std::string::npos;  // e.g. std::execution::par vs ..::par_unseq
            } else {
                pos = find_token(code, r.token);
            }
            if (pos == std::string::npos) continue;
            // Bare C `time(...)`: only the unmistakable spellings.
            if (std::find(hit_ids.begin(), hit_ids.end(), r.id) != hit_ids.end()) continue;
            hit_ids.push_back(r.id);
            emit(out, path, i + 1, r.id, std::string(r.what) + " is banned here",
                 std::string(r.hint), lines);
        }
        // `time(0)` / `time(NULL)` / `time(nullptr)` / `::time(` — too easy to
        // confuse with project methods named time() to ban the bare token.
        if (!traits.in_monitoring &&
            std::find(hit_ids.begin(), hit_ids.end(), "ZD003") == hit_ids.end()) {
            for (const std::string_view spelling :
                 {"time(0)", "time(NULL)", "time(nullptr)", "::time("}) {
                const std::size_t pos = code.find(spelling);
                if (pos == std::string::npos) continue;
                if (spelling[0] != ':' && pos > 0 &&
                    (is_ident_char(code[pos - 1]) || code[pos - 1] == '.')) {
                    continue;  // foo.time(0) / sim_time(0) are project API calls
                }
                emit(out, path, i + 1, "ZD003", "C time() is banned here",
                     "simulation time comes from core::SimTime; wall clocks live in "
                     "src/monitoring/ only",
                     lines);
                break;
            }
        }
        // `#pragma omp ... reduction(...)` — unordered float reduction.
        if (code.find("#pragma") != std::string::npos && has_token(code, "omp") &&
            code.find("reduction(") != std::string::npos) {
            emit(out, path, i + 1, "ZD006", "OpenMP reduction is banned here",
                 "reduction order must be fixed: use the ordered reduce in core/parallel.hpp",
                 lines);
        }
    }
}

/// ZD014: raw cross-process primitives — BSD sockets, pipes, popen, fork/exec
/// — are legal only inside src/core/transport* (the seam's own
/// implementation).  Everywhere else they escape FaultyTransport's fault
/// schedules and the cross-process torture, exactly as a raw ofstream
/// escapes the core::io seam (ZD012).  Call-spelling matching (`socket(`,
/// `pipe(`, ...) keeps variables like `socket_path` and flags like
/// `--socket` (a string literal, blanked by the lexer) out of scope.
void check_raw_ipc(std::vector<Diagnostic>& out, std::string_view path,
                   const std::vector<Line>& lines, const PathTraits& traits) {
    if (traits.is_transport_impl) return;
    // Functions: the token must be followed directly by '('.
    static constexpr std::array<std::string_view, 15> kCalls{
        "socket",  "socketpair", "pipe",  "pipe2", "mkfifo", "popen",  "pclose", "fork",
        "vfork",   "execv",      "execve", "execvp", "execl",  "execlp", "execle",
    };
    // Types/constants: any token-boundary use counts.
    static constexpr std::array<std::string_view, 5> kNames{
        "AF_UNIX", "AF_INET", "SOCK_STREAM", "sockaddr_un", "sockaddr_in",
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        bool hit = false;
        for (const std::string_view fn : kCalls) {
            for (std::size_t pos = find_token(code, fn); pos != std::string_view::npos;
                 pos = find_token(code, fn, pos + 1)) {
                if (pos + fn.size() < code.size() && code[pos + fn.size()] == '(') {
                    emit(out, path, i + 1, "ZD014",
                         "raw " + std::string(fn) + "() outside the transport seam",
                         "open links via core::transport (connect_unix / listen_unix / "
                         "make_loopback_pair) so fault injection and the cross-process "
                         "torture cover this I/O",
                         lines);
                    hit = true;
                    break;
                }
            }
            if (hit) break;
        }
        if (hit) continue;
        for (const std::string_view name : kNames) {
            if (!has_token(code, name)) continue;
            emit(out, path, i + 1, "ZD014",
                 "raw socket identifier '" + std::string(name) + "' outside the transport seam",
                 "socket-level details belong to src/core/transport_unix.cpp; talk to peers "
                 "through the core::Transport interface",
                 lines);
            break;
        }
    }
}

/// ZD012: writers in src/experiment/ and src/monitoring/ produce the files
/// that must survive crashes (journals, figure CSVs, telemetry dumps), so a
/// direct std::ofstream or fopen there silently escapes fault injection and
/// the crash-consistency torture.  Route writes through core::FileSystem
/// (write_file_durable / replace_file_atomic) instead; reads may use
/// ifstream, which stays legal.
void check_durable_writer_seam(std::vector<Diagnostic>& out, std::string_view path,
                               const std::vector<Line>& lines, const PathTraits& traits) {
    if (!traits.in_durable_module) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        for (const std::string_view token : {"ofstream", "fopen"}) {
            if (!has_token(code, token)) continue;
            emit(out, path, i + 1, "ZD012",
                 "direct " + std::string(token) + " in a durable-writer module",
                 "write through core::FileSystem (write_file_durable / replace_file_atomic) "
                 "so fault injection and the torture harness cover this file",
                 lines);
            break;  // one diagnostic per line is enough
        }
    }
}

void check_unordered_iteration(std::vector<Diagnostic>& out, std::string_view path,
                               const std::vector<Line>& lines) {
    const std::vector<std::string> vars = unordered_variable_names(lines);
    if (vars.empty()) return;
    const std::vector<FunctionRegion> regions = find_function_regions(lines);
    for (const FunctionRegion& region : regions) {
        bool writer = false;
        for (std::size_t l = region.first_line; l <= region.last_line; ++l)
            if (is_writer_line(lines[l - 1].code)) writer = true;
        for (std::size_t l = region.first_line; l <= region.last_line; ++l) {
            const std::string& code = lines[l - 1].code;
            for (const std::string& var : vars) {
                if (!is_range_for_over(code, var) && !is_iterator_walk_over(code, var)) continue;
                if (writer) {
                    emit(out, path, l, "ZD005",
                         "iterating unordered container '" + var +
                             "' in a function that writes output bytes",
                         "copy keys into a sorted vector (or use std::map) before emitting "
                         "CSV/report/journal rows — hash order is not stable",
                         lines);
                } else {
                    emit(out, path, l, "ZD005",
                         "iterating unordered container '" + var + "' (hash order)",
                         "no output write detected in this function, but hash-order iteration "
                         "is still nondeterministic across libstdc++ versions",
                         lines);
                    out.back().severity = Severity::kWarning;
                }
                break;  // one diagnostic per line is enough
            }
        }
    }
}

void check_header_hygiene(std::vector<Diagnostic>& out, std::string_view path,
                          const std::vector<Line>& lines, const PathTraits& traits) {
    if (!traits.is_header) return;
    bool saw_code = false;
    bool pragma_first = false;
    std::size_t first_code_line = 1;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string trimmed = strip_ws(lines[i].code);
        if (trimmed.empty()) continue;
        saw_code = true;
        first_code_line = i + 1;
        pragma_first = trimmed == "#pragmaonce";
        break;
    }
    if (saw_code && !pragma_first) {
        emit(out, path, first_code_line, "ZD008",
             "header does not start with #pragma once",
             "make #pragma once the first code line (comments above it are fine)", lines);
    }
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (has_token(lines[i].code, "using") && has_token(lines[i].code, "namespace") &&
            lines[i].code.find("using") < lines[i].code.find("namespace")) {
            emit(out, path, i + 1, "ZD009", "using namespace in a header leaks into every includer",
                 "qualify names or scope the using-declaration inside a function body", lines);
        }
    }
}

void check_nodiscard_error_code(std::vector<Diagnostic>& out, std::string_view path,
                                const std::vector<Line>& lines) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        for (std::size_t pos = find_token(code, "ErrorCode"); pos != std::string::npos;
             pos = find_token(code, "ErrorCode", pos + 1)) {
            // Must look like a return type: `ErrorCode name(`.
            std::size_t j = pos + 9;
            while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j])) != 0) ++j;
            std::size_t name_start = j;
            while (j < code.size() && is_ident_char(code[j])) ++j;
            if (j == name_start) continue;
            std::size_t k = j;
            while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
            if (k >= code.size() || code[k] != '(') continue;
            // Exclude parameters/templates: previous meaningful char of `(,<`
            // and the `enum class ErrorCode` declaration itself.
            std::size_t b = pos;
            while (b > 0 && (std::isspace(static_cast<unsigned char>(code[b - 1])) != 0 ||
                             code[b - 1] == ':'))
                --b;
            if (b > 0 && (code[b - 1] == '(' || code[b - 1] == ',' || code[b - 1] == '<')) continue;
            const std::string before = code.substr(0, pos);
            const std::string prev = i > 0 ? lines[i - 1].code : std::string();
            if (before.find("[[nodiscard]]") != std::string::npos ||
                prev.find("[[nodiscard]]") != std::string::npos)
                continue;
            if (has_token(before, "enum") || has_token(before, "class")) continue;
            emit(out, path, i + 1, "ZD010",
                 "function returning ErrorCode should be [[nodiscard]]",
                 "a dropped ErrorCode silently swallows a failure; mark the declaration "
                 "[[nodiscard]]",
                 lines);
        }
    }
}

/// ZD011: `Derived operator+(...)` and friends in headers.  Dropping the
/// result of unit/time arithmetic is always a bug (the operand is untouched),
/// so the whole strong-types layer marks these [[nodiscard]]; this keeps new
/// operators honest.  Reference-returning operators (compound assignment,
/// dereference) are exempt.
void check_nodiscard_operators(std::vector<Diagnostic>& out, std::string_view path,
                               const std::vector<Line>& lines, const PathTraits& traits) {
    if (!traits.is_header) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        const std::size_t pos = find_token(code, "operator");
        if (pos == std::string::npos) continue;
        const std::size_t j = pos + 8;
        if (j + 1 >= code.size()) continue;
        const char op = code[j];
        if (op != '+' && op != '-' && op != '*' && op != '/') continue;
        if (code[j + 1] != '(') continue;  // skips +=, ->, <=>, etc.
        const std::string before = code.substr(0, pos);
        if (before.find('&') != std::string::npos) continue;  // returns a reference
        const std::string prev = i > 0 ? lines[i - 1].code : std::string();
        if (before.find("[[nodiscard]]") != std::string::npos ||
            prev.find("[[nodiscard]]") != std::string::npos)
            continue;
        emit(out, path, i + 1, "ZD011",
             "value-returning operator" + std::string(1, op) + " should be [[nodiscard]]",
             "discarding the result of unit/time arithmetic is always a bug; mark the "
             "operator [[nodiscard]]",
             lines);
    }
}

}  // namespace

const std::vector<CheckInfo>& known_checks() {
    static const std::vector<CheckInfo> checks(kChecks.begin(), kChecks.end());
    return checks;
}

bool is_known_check(std::string_view id) {
    for (const CheckInfo& c : kChecks)
        if (c.id == id) return true;
    return false;
}

bool is_project_check(std::string_view id) {
    return id == "ZD015" || id == "ZD016" || id == "ZD017" || id == "ZD018";
}

bool is_baselinable_check(std::string_view id) {
    return id != "ZD097" && id != "ZD098" && id != "ZD099";
}

std::vector<Diagnostic> lint_source(std::string_view path, std::string_view content) {
    const std::vector<Line> lines = lex(content).lines;
    const PathTraits traits = classify(path);

    std::vector<Diagnostic> all;
    check_banned_tokens(all, path, lines, traits);
    check_raw_ipc(all, path, lines, traits);
    check_durable_writer_seam(all, path, lines, traits);
    check_unordered_iteration(all, path, lines);
    check_header_hygiene(all, path, lines, traits);
    check_nodiscard_error_code(all, path, lines);
    check_nodiscard_operators(all, path, lines, traits);

    // Apply suppressions, and lint the suppressions themselves.
    const std::vector<Suppression> sups = parse_suppressions(lines);
    std::vector<Diagnostic> out;
    for (Diagnostic& d : all) {
        bool suppressed = false;
        for (const Suppression& s : sups) {
            if (s.target_line != d.line || !s.has_reason) continue;
            if (std::find(s.ids.begin(), s.ids.end(), d.id) != s.ids.end()) suppressed = true;
        }
        if (!suppressed) out.push_back(std::move(d));
    }
    for (const Suppression& s : sups) {
        if (!s.has_reason) {
            emit(out, path, s.comment_line, "ZD098",
                 "suppression has no reason text",
                 "write `// zerodeg-lint: allow(ZDxxx): <why this site is safe>`", lines);
        }
        for (const std::string& id : s.ids) {
            if (!is_known_check(id)) {
                emit(out, path, s.comment_line, "ZD099",
                     "suppression names unknown check id '" + id + "'",
                     "run zerodeg_lint --list-checks for the valid ids", lines);
                continue;
            }
            // ZD097: a reasoned allowance for a per-file check that its
            // target line no longer triggers is a stale waiver.  Project-mode
            // ids (ZD015-ZD018) are judged by the project analyzer, which is
            // the only pass that can see whether they fire.
            if (!s.has_reason || is_project_check(id)) continue;
            const bool used = std::any_of(all.begin(), all.end(), [&](const Diagnostic& d) {
                return d.line == s.target_line && d.id == id;
            });
            if (!used) {
                emit(out, path, s.comment_line, "ZD097",
                     "suppression allows " + id + " but its line no longer triggers that check",
                     "delete the stale `allow(" + id + ")` (or re-point it at the offending "
                     "line) so waivers cannot outlive the code they excused",
                     lines);
            }
        }
    }
    std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
        if (a.line != b.line) return a.line < b.line;
        return a.id < b.id;
    });
    return out;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

namespace {
[[nodiscard]] std::string hex16(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return s;
}

[[nodiscard]] std::string baseline_key(const Diagnostic& d) {
    return d.id + " " + hex16(d.fingerprint) + " " + d.file;
}
}  // namespace

Baseline Baseline::parse(std::string_view text) {
    Baseline b;
    std::size_t line_no = 0;
    std::stringstream ss{std::string(text)};
    std::string line;
    while (std::getline(ss, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line[0] == '#') continue;
        std::stringstream fields(line);
        std::string id, fp, file;
        if (!(fields >> id >> fp >> file) || !is_known_check(id) || fp.size() != 16) {
            throw core::ParseError("malformed baseline entry '" + line + "'", line_no);
        }
        b.entries_.push_back(id + " " + fp + " " + file);
    }
    std::sort(b.entries_.begin(), b.entries_.end());
    b.entries_.erase(std::unique(b.entries_.begin(), b.entries_.end()), b.entries_.end());
    return b;
}

void Baseline::add(const Diagnostic& d) {
    const std::string key = baseline_key(d);
    const auto it = std::lower_bound(entries_.begin(), entries_.end(), key);
    if (it == entries_.end() || *it != key) entries_.insert(it, key);
}

bool Baseline::contains(const Diagnostic& d) const {
    return std::binary_search(entries_.begin(), entries_.end(), baseline_key(d));
}

std::string Baseline::serialize() const {
    std::string out =
        "# zerodeg_lint baseline: accepted pre-existing findings.\n"
        "# Format: <check-id> <line-fingerprint> <file>.  Regenerate with\n"
        "# `zerodeg_lint --write-baseline` after deliberate, reviewed changes.\n";
    for (const std::string& e : entries_) {
        out += e;
        out += '\n';
    }
    return out;
}

std::string format_diagnostic(const Diagnostic& d) {
    std::string out = d.file + ":" + std::to_string(d.line) + ": [" + d.id + "][" +
                      to_string(d.severity) + "] " + d.message;
    if (!d.hint.empty()) out += "\n    hint: " + d.hint;
    return out;
}

namespace {
[[nodiscard]] std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* digits = "0123456789abcdef";
                    out += "\\u00";
                    out += digits[(c >> 4) & 0xF];
                    out += digits[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    return out;
}
}  // namespace

std::string format_diagnostic_json(const Diagnostic& d) {
    std::string out = "{\"file\":\"" + json_escape(d.file) + "\",";
    out += "\"line\":" + std::to_string(d.line) + ",";
    out += "\"id\":\"" + json_escape(d.id) + "\",";
    out += "\"severity\":\"" + std::string(to_string(d.severity)) + "\",";
    out += "\"message\":\"" + json_escape(d.message) + "\"";
    if (!d.hint.empty()) out += ",\"hint\":\"" + json_escape(d.hint) + "\"";
    out += "}";
    return out;
}

}  // namespace zerodeg::lint
