#include "lint/project.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>

#include "core/error.hpp"

namespace fs = std::filesystem;

namespace zerodeg::lint {
namespace {

// ---------------------------------------------------------------------------
// Flattened code view: the code channels joined by '\n', with a map back to
// 1-based line numbers.  Multi-line constructs (a RngStream{...} spanning two
// lines, a statement wrapped by clang-format) become contiguous text.
// ---------------------------------------------------------------------------

struct FlatCode {
    std::string text;
    std::vector<std::size_t> line_of;      ///< text index -> 1-based line
    std::vector<std::size_t> line_start;   ///< 1-based line -> text index of col 0
};

[[nodiscard]] FlatCode flatten(const std::vector<Line>& lines) {
    FlatCode flat;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        flat.line_start.push_back(flat.text.size());
        for (const char c : lines[i].code) {
            flat.text += c;
            flat.line_of.push_back(i + 1);
        }
        flat.text += '\n';
        flat.line_of.push_back(i + 1);
    }
    return flat;
}

[[nodiscard]] std::size_t skip_ws(std::string_view s, std::size_t i) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    return i;
}

/// End index (exclusive) of the balanced (paren + brace) span opened at
/// `open` (s[open] must be '(' or '{').  Returns npos if unbalanced.
[[nodiscard]] std::size_t balanced_end(std::string_view s, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(' || c == '{') ++depth;
        if (c == ')' || c == '}') {
            if (--depth == 0) return i + 1;
        }
    }
    return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Pass-1 extractors
// ---------------------------------------------------------------------------

void extract_includes(FileScan& out, const std::vector<Line>& lines,
                      const std::vector<StringLiteral>& literals) {
    // The lexer blanks literal interiors out of the code channel, so the
    // include target is read back from the recorded literal on that line.
    // Angle-bracket includes carry no literal and are deliberately skipped:
    // the DAG constrains the project's own headers, not the standard library.
    std::map<std::size_t, const StringLiteral*> first_literal_on_line;
    for (const StringLiteral& lit : literals) first_literal_on_line.try_emplace(lit.line, &lit);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string stripped = strip_ws(lines[i].code);
        if (stripped.rfind("#include", 0) != 0) continue;
        const auto it = first_literal_on_line.find(i + 1);
        if (it == first_literal_on_line.end() || it->second->text.empty()) continue;
        out.includes.push_back({i + 1, it->second->text, std::string()});
    }
}

void extract_streams(FileScan& out, const FlatCode& flat,
                     const std::vector<StringLiteral>& literals) {
    // core::RngStream{seed, "name"} / RngStream(seed, "name") /
    // RngStream var(seed, "name") — any construction whose balanced argument
    // span contains a string literal keys that stream name.  Constructions
    // fed a variable name carry no literal and are invisible here, which is
    // why helpers that forward a name parameter must be inlined (the literal
    // has to be spelled at the construction site to be auditable).
    std::vector<std::size_t> literal_pos;  // flat index of each literal's body
    for (const StringLiteral& lit : literals) {
        literal_pos.push_back(flat.line_start[lit.line - 1] + lit.col);
    }
    const std::string_view text = flat.text;
    for (std::size_t pos = find_token(text, "RngStream"); pos != std::string_view::npos;
         pos = find_token(text, "RngStream", pos + 1)) {
        std::size_t i = skip_ws(text, pos + 9);
        if (i < text.size() && is_ident_char(text[i])) {
            // `RngStream var(seed, "name")` declarator form: skip the name.
            while (i < text.size() && is_ident_char(text[i])) ++i;
            i = skip_ws(text, i);
        }
        if (i >= text.size() || (text[i] != '(' && text[i] != '{')) continue;
        const std::size_t end = balanced_end(text, i);
        if (end == std::string_view::npos) continue;
        for (std::size_t k = 0; k < literal_pos.size(); ++k) {
            if (literal_pos[k] > i && literal_pos[k] < end) {
                out.streams.push_back({literals[k].line, literals[k].text});
                break;  // the first literal in the span is the stream name
            }
        }
    }
}

void extract_error_fns(FileScan& out, const std::vector<Line>& lines) {
    // `ErrorCode name(` at declaration position — same shape test as the
    // per-file ZD010 check, but collecting names instead of judging
    // [[nodiscard]].
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        for (std::size_t pos = find_token(code, "ErrorCode"); pos != std::string::npos;
             pos = find_token(code, "ErrorCode", pos + 1)) {
            std::size_t j = pos + 9;
            while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j])) != 0) ++j;
            const std::size_t name_start = j;
            while (j < code.size() && is_ident_char(code[j])) ++j;
            if (j == name_start) continue;
            std::size_t k = j;
            while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k])) != 0) ++k;
            if (k >= code.size() || code[k] != '(') continue;
            std::size_t b = pos;
            while (b > 0 && (std::isspace(static_cast<unsigned char>(code[b - 1])) != 0 ||
                             code[b - 1] == ':'))
                --b;
            if (b > 0 && (code[b - 1] == '(' || code[b - 1] == ',' || code[b - 1] == '<')) continue;
            const std::string before = code.substr(0, pos);
            if (has_token(before, "enum") || has_token(before, "class")) continue;
            out.error_fns.push_back({i + 1, code.substr(name_start, j - name_start)});
        }
    }
}

void extract_bare_calls(FileScan& out, const FlatCode& flat) {
    // Statements are the maximal spans between `;`/`{`/`}` at paren depth 0;
    // only the `;`-terminated ones can be expression statements.  A statement
    // that is exactly `ident((::|.|->)ident)* ( args )` is a call whose value
    // hits the floor — `return f()`, `x = f()`, `(void)f()` and `if (...)`
    // all fail the shape test by construction.
    const std::string_view text = flat.text;
    const auto analyze = [&](std::size_t begin, std::size_t stmt_end) {
        std::size_t i = skip_ws(text, begin);
        // Preprocessor directives are not statements; drop any leading ones
        // so `#endif` glued to the next real statement doesn't mask it.
        while (i < stmt_end && text[i] == '#') {
            while (i < stmt_end && text[i] != '\n') ++i;
            i = skip_ws(text, i);
        }
        std::size_t ident_start = i;
        while (i < stmt_end && is_ident_char(text[i])) ++i;
        if (i == ident_start) return;
        std::string callee(text.substr(ident_start, i - ident_start));
        while (true) {
            i = skip_ws(text, i);
            if (i >= stmt_end) return;
            if (text.compare(i, 2, "::") == 0 || text.compare(i, 2, "->") == 0) {
                i += 2;
            } else if (text[i] == '.') {
                i += 1;
            } else if (text[i] == '(') {
                const std::size_t end = balanced_end(text, i);
                if (end == std::string_view::npos || end > stmt_end) return;
                if (skip_ws(text, end) != stmt_end) return;  // trailing tokens
                out.bare_calls.push_back({flat.line_of[ident_start], std::move(callee)});
                return;
            } else {
                return;
            }
            i = skip_ws(text, i);
            ident_start = i;
            while (i < stmt_end && is_ident_char(text[i])) ++i;
            if (i == ident_start) return;
            callee.assign(text.substr(ident_start, i - ident_start));
        }
    };
    std::size_t stmt_start = 0;
    int pdepth = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(') ++pdepth;
        if (c == ')') --pdepth;
        if (pdepth != 0 || (c != ';' && c != '{' && c != '}')) continue;
        if (c == ';') analyze(stmt_start, i);
        stmt_start = i + 1;
    }
}

void extract_reductions(FileScan& out, const FlatCode& flat) {
    const std::string_view text = flat.text;
    for (const std::string_view spelling : {"std::accumulate", "std::reduce"}) {
        for (std::size_t pos = text.find(spelling); pos != std::string_view::npos;
             pos = text.find(spelling, pos + 1)) {
            if (pos > 0 && (is_ident_char(text[pos - 1]) || text[pos - 1] == ':')) continue;
            const std::size_t after = pos + spelling.size();
            if (after < text.size() && is_ident_char(text[after])) continue;
            const std::size_t open = skip_ws(text, after);
            if (open >= text.size() || text[open] != '(') continue;
            const std::size_t end = balanced_end(text, open);
            if (end == std::string_view::npos) continue;
            const std::string_view span = text.substr(open, end - open);
            bool floaty = has_token(span, "float") || has_token(span, "double");
            for (std::size_t k = 0; !floaty && k + 1 < span.size(); ++k) {
                floaty = std::isdigit(static_cast<unsigned char>(span[k])) != 0 &&
                         span[k + 1] == '.';
            }
            if (!floaty) continue;
            out.reductions.push_back({flat.line_of[pos], std::string(spelling)});
        }
    }
    std::sort(out.reductions.begin(), out.reductions.end(),
              [](const FloatReduction& a, const FloatReduction& b) { return a.line < b.line; });
}

// ---------------------------------------------------------------------------
// Pass 2 helpers
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_src_module(const std::string& module) {
    return !module.empty() && module != "tools" && module != "bench" && module != "tests";
}

void emit(std::vector<Diagnostic>& out, const FileScan& file, std::size_t line,
          std::string_view id, std::string message, std::string hint) {
    Diagnostic d;
    d.file = file.path;
    d.line = line;
    d.id = std::string(id);
    for (const CheckInfo& c : known_checks())
        if (c.id == id) d.severity = c.severity;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.fingerprint =
        line >= 1 && line <= file.fingerprints.size() ? file.fingerprints[line - 1] : 0;
    out.push_back(std::move(d));
}

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (const std::string& p : parts) {
        if (!out.empty()) out += sep;
        out += p;
    }
    return out;
}

/// All elementary include cycles reachable in the file graph, found by DFS
/// back-edge extraction and deduplicated after rotating each cycle so its
/// lexicographically smallest file comes first.
[[nodiscard]] std::vector<std::vector<std::string>> find_cycles(
    const std::map<std::string, std::vector<std::string>>& graph) {
    std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::string> seen_keys;
    std::vector<std::vector<std::string>> cycles;

    const std::function<void(const std::string&)> dfs = [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
            for (const std::string& next : it->second) {
                const int c = color[next];
                if (c == 1) {
                    const auto first = std::find(stack.begin(), stack.end(), next);
                    std::vector<std::string> cycle(first, stack.end());
                    const auto smallest = std::min_element(cycle.begin(), cycle.end());
                    std::rotate(cycle.begin(), smallest, cycle.end());
                    if (seen_keys.insert(join(cycle, "\n")).second) cycles.push_back(cycle);
                } else if (c == 0) {
                    dfs(next);
                }
            }
        }
        stack.pop_back();
        color[node] = 2;
    };
    for (const auto& [node, targets] : graph) {
        (void)targets;
        if (color[node] == 0) dfs(node);
    }
    return cycles;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1
// ---------------------------------------------------------------------------

std::string module_of(std::string_view path) {
    if (path.rfind("src/", 0) == 0) {
        const std::size_t slash = path.find('/', 4);
        if (slash != std::string_view::npos) return std::string(path.substr(4, slash - 4));
        return std::string();
    }
    for (const std::string_view top : {"tools", "bench", "tests"}) {
        if (path.rfind(std::string(top) + "/", 0) == 0) return std::string(top);
    }
    return std::string();
}

FileScan scan_file(std::string path, std::string_view content) {
    FileScan out;
    out.path = std::move(path);
    out.module = module_of(out.path);
    const LexedSource lexed = lex(content);
    const FlatCode flat = flatten(lexed.lines);
    out.fingerprints.reserve(lexed.lines.size());
    for (std::size_t i = 0; i < lexed.lines.size(); ++i) {
        out.fingerprints.push_back(line_fingerprint(lexed.lines, i + 1));
    }
    extract_includes(out, lexed.lines, lexed.literals);
    extract_streams(out, flat, lexed.literals);
    const bool is_header = out.path.ends_with(".hpp") || out.path.ends_with(".h");
    if (is_header) extract_error_fns(out, lexed.lines);
    extract_bare_calls(out, flat);
    extract_reductions(out, flat);
    out.suppressions = parse_suppressions(lexed.lines);
    return out;
}

void resolve_includes(ProjectModel& model) {
    std::set<std::string> paths;
    for (const FileScan& f : model.files) paths.insert(f.path);
    for (FileScan& f : model.files) {
        const fs::path dir = fs::path(f.path).parent_path();
        for (IncludeEdge& inc : f.includes) {
            const std::vector<fs::path> candidates = {
                dir / inc.target,          fs::path("src") / inc.target,
                fs::path("tools") / inc.target, fs::path("bench") / inc.target,
                fs::path("tests") / inc.target, fs::path(inc.target),
            };
            for (const fs::path& cand : candidates) {
                const std::string normal = cand.lexically_normal().generic_string();
                if (paths.count(normal) != 0) {
                    inc.resolved = normal;
                    break;
                }
            }
        }
    }
}

ProjectModel build_project_model(const fs::path& root, const std::vector<std::string>& scan_roots) {
    std::vector<std::string> files;
    for (const std::string& sub : scan_roots) {
        const fs::path dir = root / sub;
        if (!fs::is_directory(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file()) continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cpp" && ext != ".cc" && ext != ".hpp" && ext != ".h") continue;
            files.push_back(fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    ProjectModel model;
    for (const std::string& file : files) {
        std::ifstream in(root / file, std::ios::binary);
        if (!in) throw zerodeg::IoError("cannot open " + (root / file).string());
        std::ostringstream ss;
        ss << in.rdbuf();
        model.files.push_back(scan_file(file, ss.str()));
    }
    resolve_includes(model);
    return model;
}

// ---------------------------------------------------------------------------
// Pass 2
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& layer_dag() {
    static const std::map<std::string, std::set<std::string>> dag = {
        {"core", {}},
        {"weather", {"core"}},
        {"faults", {"core"}},
        {"thermal", {"core", "weather"}},
        {"energy", {"core", "weather"}},
        {"hardware", {"core", "thermal", "weather"}},
        {"workload", {"core", "faults"}},
        {"monitoring",
         {"core", "weather", "faults", "thermal", "energy", "hardware", "workload"}},
        {"experiment",
         {"core", "weather", "faults", "thermal", "energy", "hardware", "workload",
          "monitoring"}},
    };
    return dag;
}

ProjectReport analyze_project(const ProjectModel& model) {
    ProjectReport report;
    report.files_scanned = model.files.size();

    const auto& dag = layer_dag();
    std::map<std::string, const FileScan*> by_path;
    for (const FileScan& f : model.files) by_path.emplace(f.path, &f);

    std::vector<Diagnostic> found;  // pre-suppression, so ZD097 can see usage

    // --- ZD015: layer DAG + module graph ---------------------------------
    std::map<std::string, std::vector<std::string>> file_graph;
    for (const FileScan& f : model.files) {
        auto& targets = file_graph[f.path];
        for (const IncludeEdge& inc : f.includes) {
            if (inc.resolved.empty()) continue;
            targets.push_back(inc.resolved);
            const std::string target_module = module_of(inc.resolved);
            if (target_module.empty() || target_module == f.module) continue;
            report.graph.edges[f.module].insert(target_module);
            if (!is_src_module(f.module)) continue;  // tools/bench/tests see all
            const auto layer = dag.find(f.module);
            const bool module_known = layer != dag.end();
            const bool edge_allowed =
                module_known && layer->second.count(target_module) != 0;
            if (module_known && edge_allowed) continue;
            report.graph.illegal[f.module].insert(target_module);
            if (!module_known) {
                emit(found, f, inc.line, "ZD015",
                     "module '" + f.module + "' is not declared in the layer DAG",
                     "new src/ subsystems are added to the allowed-edge table in "
                     "tools/lint/project.cpp (and DESIGN.md) deliberately, not by accretion");
            } else {
                emit(found, f, inc.line, "ZD015",
                     "include of '" + inc.resolved + "' crosses a layer boundary: '" +
                         f.module + "' may not depend on '" + target_module + "'",
                     "allowed deps of '" + f.module + "': {" +
                         join(std::vector<std::string>(layer->second.begin(),
                                                       layer->second.end()),
                              ", ") +
                         "} — move the shared piece down a layer or route through an "
                         "allowed one");
            }
        }
    }
    report.graph.cycles = find_cycles(file_graph);
    for (const std::vector<std::string>& cycle : report.graph.cycles) {
        const FileScan& f = *by_path.at(cycle.front());
        const std::string& next = cycle.size() > 1 ? cycle[1] : cycle[0];
        std::size_t line = 1;
        for (const IncludeEdge& inc : f.includes) {
            if (inc.resolved == next) line = inc.line;
        }
        emit(found, f, line, "ZD015",
             "include cycle: " + join(cycle, " -> ") + " -> " + cycle.front(),
             "break the cycle with a forward declaration or by extracting the shared "
             "piece into a lower layer");
    }

    // --- ZD016: RNG stream-name collisions across src/ files -------------
    // Key: the literal spelled at the construction site.  tests/ and tools/
    // deliberately reuse short names ("m", "p") for throwaway local streams,
    // so only simulation code (src/) participates.
    std::map<std::string, std::vector<std::pair<std::string, std::size_t>>> streams;
    for (const FileScan& f : model.files) {
        if (!is_src_module(f.module)) continue;
        std::set<std::string> seen_here;  // first use per file is the anchor
        for (const StreamUse& s : f.streams) {
            if (s.name.empty() || !seen_here.insert(s.name).second) continue;
            streams[s.name].emplace_back(f.path, s.line);
        }
    }
    for (const auto& [name, uses] : streams) {
        if (uses.size() < 2) continue;
        for (const auto& [path, line] : uses) {
            std::vector<std::string> others;
            for (const auto& [other_path, other_line] : uses) {
                (void)other_line;
                if (other_path != path) others.push_back(other_path);
            }
            emit(found, *by_path.at(path), line, "ZD016",
                 "RNG stream name \"" + name + "\" is also constructed in " +
                     join(others, ", ") + " — the streams are byte-identical",
                 "stream names are global: two models drawing from the same name see "
                 "correlated randomness; rename one (e.g. prefix with the subsystem)");
        }
    }

    // --- ZD017: discarded ErrorCode calls ---------------------------------
    std::map<std::string, std::string> error_fn_origin;  // name -> declaring file
    for (const FileScan& f : model.files) {
        for (const ErrorFn& fn : f.error_fns) {
            error_fn_origin.try_emplace(fn.name, f.path + ":" + std::to_string(fn.line));
        }
    }
    for (const FileScan& f : model.files) {
        for (const BareCall& call : f.bare_calls) {
            const auto it = error_fn_origin.find(call.callee);
            if (it == error_fn_origin.end()) continue;
            emit(found, f, call.line, "ZD017",
                 "bare statement discards the ErrorCode returned by '" + call.callee +
                     "' (declared at " + it->second + ")",
                 "check the result (or cast through a named handler) — a dropped "
                 "ErrorCode silently swallows a failure");
        }
    }

    // --- ZD018: non-associative float reductions --------------------------
    for (const FileScan& f : model.files) {
        if (f.path.ends_with("core/parallel.hpp")) continue;  // the ordered seam
        for (const FloatReduction& r : f.reductions) {
            emit(found, f, r.line, "ZD018",
                 r.what + " over a floating accumulator is order-sensitive",
                 "float addition is not associative; use the ordered reduce in "
                 "core/parallel.hpp so results are byte-identical for any --jobs");
        }
    }

    // --- suppressions + ZD097 ---------------------------------------------
    std::vector<Diagnostic> kept;
    for (Diagnostic& d : found) {
        const FileScan& f = *by_path.at(d.file);
        bool suppressed = false;
        for (const Suppression& s : f.suppressions) {
            if (s.target_line != d.line || !s.has_reason) continue;
            if (std::find(s.ids.begin(), s.ids.end(), d.id) != s.ids.end()) suppressed = true;
        }
        if (!suppressed) kept.push_back(std::move(d));
    }
    for (const FileScan& f : model.files) {
        for (const Suppression& s : f.suppressions) {
            if (!s.has_reason) continue;  // already ZD098 in the per-file pass
            for (const std::string& id : s.ids) {
                if (!is_project_check(id)) continue;
                const bool used =
                    std::any_of(found.begin(), found.end(), [&](const Diagnostic& d) {
                        return d.file == f.path && d.line == s.target_line && d.id == id;
                    });
                if (used) continue;
                emit(kept, f, s.comment_line, "ZD097",
                     "suppression allows " + id +
                         " but its line no longer triggers that check",
                     "delete the stale `allow(" + id + ")` so waivers cannot outlive "
                     "the code they excused");
            }
        }
    }
    std::sort(kept.begin(), kept.end(), [](const Diagnostic& a, const Diagnostic& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        return a.id < b.id;
    });
    report.diagnostics = std::move(kept);
    return report;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string render_dot(const ModuleGraph& graph) {
    std::string out = "digraph zerodeg_layers {\n";
    out += "  rankdir=BT;\n";
    out += "  node [shape=box, fontname=\"Helvetica\"];\n";
    std::set<std::string> nodes;
    for (const auto& [from, targets] : graph.edges) {
        nodes.insert(from);
        nodes.insert(targets.begin(), targets.end());
    }
    for (const std::string& n : nodes) out += "  \"" + n + "\";\n";
    for (const auto& [from, targets] : graph.edges) {
        const auto bad = graph.illegal.find(from);
        for (const std::string& to : targets) {
            out += "  \"" + from + "\" -> \"" + to + "\"";
            if (bad != graph.illegal.end() && bad->second.count(to) != 0) {
                out += " [color=red, penwidth=2.0]";
            }
            out += ";\n";
        }
    }
    out += "}\n";
    return out;
}

std::string render_architecture_report(const ModuleGraph& graph) {
    std::map<std::string, std::size_t> fan_in;
    std::set<std::string> nodes;
    for (const auto& [from, targets] : graph.edges) {
        nodes.insert(from);
        for (const std::string& to : targets) {
            nodes.insert(to);
            fan_in[to] += 1;
        }
    }
    std::string out = "module graph (" + std::to_string(nodes.size()) + " modules):\n";
    for (const std::string& n : nodes) {
        const auto it = graph.edges.find(n);
        const std::size_t fan_out = it == graph.edges.end() ? 0 : it->second.size();
        out += "  " + n + ": fan-out=" + std::to_string(fan_out) +
               " fan-in=" + std::to_string(fan_in[n]);
        if (it != graph.edges.end() && !it->second.empty()) {
            out += " -> {" +
                   join(std::vector<std::string>(it->second.begin(), it->second.end()), ", ") +
                   "}";
        }
        out += "\n";
    }
    out += "include cycles: " + std::to_string(graph.cycles.size()) + "\n";
    for (const std::vector<std::string>& cycle : graph.cycles) {
        out += "  " + join(cycle, " -> ") + " -> " + cycle.front() + "\n";
    }
    return out;
}

}  // namespace zerodeg::lint
