#include "lint/scan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/rng.hpp"  // fnv1a — same fingerprint primitive the RNG streams use

namespace zerodeg::lint {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_token(std::string_view code, std::string_view token, std::size_t from) {
    for (std::size_t pos = code.find(token, from); pos != std::string_view::npos;
         pos = code.find(token, pos + 1)) {
        const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
        if (left_ok && right_ok) return pos;
    }
    return std::string_view::npos;
}

bool has_token(std::string_view code, std::string_view token) {
    return find_token(code, token) != std::string_view::npos;
}

std::string strip_ws(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s)
        if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
    return out;
}

std::uint64_t line_fingerprint(const std::vector<Line>& lines, std::size_t line) {
    if (line < 1 || line > lines.size()) return 0;
    return core::fnv1a(strip_ws(lines[line - 1].raw));
}

LexedSource lex(std::string_view content) {
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
    State state = State::kCode;
    std::string raw_delim;  // for raw strings: ")delim\""

    LexedSource out;
    std::string raw, code, comment;
    StringLiteral current;  // literal being accumulated (kString/kRawString)
    const auto flush = [&] {
        out.lines.push_back({raw, code, comment});
        raw.clear();
        code.clear();
        comment.clear();
    };
    const auto begin_literal = [&] {
        current.line = out.lines.size() + 1;
        current.col = raw.size();
        current.text.clear();
    };

    for (std::size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::kLineComment) state = State::kCode;
            if (state == State::kRawString) current.text += '\n';
            flush();
            continue;
        }
        raw += c;
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    code += ' ';
                    comment += ' ';
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    code += ' ';
                    comment += ' ';
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !is_ident_char(content[i - 1]))) {
                    // R"delim( ... )delim"
                    std::size_t open = content.find('(', i + 2);
                    if (open == std::string_view::npos) open = content.size();
                    raw_delim.clear();
                    raw_delim += ')';
                    raw_delim += std::string(content.substr(i + 2, open - (i + 2)));
                    raw_delim += '"';
                    state = State::kRawString;
                    raw.pop_back();  // let begin_literal see the column of 'R'
                    begin_literal();
                    raw += c;
                    code += ' ';
                    comment += ' ';
                } else if (c == '"') {
                    state = State::kString;
                    raw.pop_back();
                    begin_literal();
                    raw += c;
                    code += ' ';
                    comment += ' ';
                } else if (c == '\'' && (i == 0 || !is_ident_char(content[i - 1]))) {
                    // A quote after an identifier char is a digit separator
                    // (1'000'000), not a char literal.
                    state = State::kChar;
                    code += ' ';
                    comment += ' ';
                } else {
                    code += c;
                    comment += ' ';
                }
                break;
            case State::kLineComment:
                code += ' ';
                comment += c;
                break;
            case State::kBlockComment:
                code += ' ';
                comment += c;
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    raw += '/';
                    code += ' ';
                    comment += ' ';
                    ++i;
                }
                break;
            case State::kString:
            case State::kChar:
                code += ' ';
                comment += ' ';
                if (c == '\\' && next != '\0' && next != '\n') {
                    if (state == State::kString) {
                        current.text += c;
                        current.text += next;
                    }
                    raw += next;
                    code += ' ';
                    comment += ' ';
                    ++i;
                } else if ((state == State::kString && c == '"') ||
                           (state == State::kChar && c == '\'')) {
                    if (state == State::kString) out.literals.push_back(current);
                    state = State::kCode;
                } else if (state == State::kString) {
                    current.text += c;
                }
                break;
            case State::kRawString:
                code += ' ';
                comment += ' ';
                if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
                    for (std::size_t k = 1; k < raw_delim.size(); ++k) {
                        raw += content[i + k];
                        code += ' ';
                        comment += ' ';
                    }
                    i += raw_delim.size() - 1;
                    state = State::kCode;
                    // Trim the "delim( prefix the accumulator picked up: the
                    // body starts after the first '('.
                    const std::size_t body = current.text.find('(');
                    current.text =
                        body == std::string::npos ? std::string() : current.text.substr(body + 1);
                    out.literals.push_back(current);
                } else {
                    current.text += c;
                }
                break;
        }
    }
    flush();
    return out;
}

std::vector<Suppression> parse_suppressions(const std::vector<Line>& lines) {
    std::vector<Suppression> out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        // Only the comment channel counts (a suppression spelled inside a
        // string literal is data, not an allowance), and the marker must
        // *begin* the comment — prose that merely mentions the syntax
        // ("append `// zerodeg-lint: ...` to the line") is documentation.
        const std::string& comment = lines[i].comment;
        const std::size_t marker = comment.find("zerodeg-lint:");
        if (marker == std::string::npos) continue;
        const bool at_start = std::all_of(comment.begin(), comment.begin() + marker, [](char c) {
            return std::isspace(static_cast<unsigned char>(c)) != 0 || c == '/' || c == '*';
        });
        if (!at_start) continue;
        Suppression s;
        s.comment_line = i + 1;
        // Comment alone on its line applies to the next line; trailing
        // comment applies to its own line.
        s.target_line = strip_ws(lines[i].code).empty() ? i + 2 : i + 1;
        const std::size_t open = comment.find("allow(", marker);
        if (open == std::string::npos) continue;
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos) continue;
        std::string id_list = comment.substr(open + 6, close - (open + 6));
        std::stringstream ss(id_list);
        std::string id;
        while (std::getline(ss, id, ',')) {
            id = strip_ws(id);
            if (!id.empty()) s.ids.push_back(id);
        }
        // Mandatory reason: non-empty text after a ':' following the ')'.
        const std::size_t colon = comment.find(':', close);
        s.has_reason =
            colon != std::string::npos && !strip_ws(comment.substr(colon + 1)).empty();
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace zerodeg::lint
