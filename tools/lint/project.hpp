// Whole-project analyzer for zerodeg_lint: the cross-TU pass.
//
// The per-file checks (lint.cpp) see one translation unit at a time, which is
// exactly the wrong granularity for the three remaining determinism
// conventions: layer boundaries (an include edge is only wrong *relative to
// the declared DAG*), globally unique named RNG streams (a collision is two
// files agreeing on a string), and never-discarded ErrorCodes (the discard
// site and the declaration usually live in different TUs).  This pass scans
// every file once into a ProjectModel (pass 1) and then judges the model as
// a whole (pass 2):
//
//   ZD015  include edge violating the layer DAG, or any include cycle
//   ZD016  RNG stream-name literal constructed from two different files
//   ZD017  bare statement discarding a known ErrorCode-returning function
//   ZD018  std::accumulate/std::reduce over floats outside core/parallel.hpp
//
// plus ZD097 staleness for suppressions that name the project checks (the
// per-file pass cannot know whether those fire, so it leaves them to us).
//
// The declared layer DAG (allowed include edges between src/ modules; tools/,
// bench/ and tests/ may see everything, nothing may see them):
//
//   core        -> (nothing)
//   weather     -> core
//   faults      -> core
//   thermal     -> core, weather
//   energy      -> core, weather
//   hardware    -> core, thermal, weather
//   workload    -> core, faults
//   monitoring  -> core, weather, faults, thermal, energy, hardware, workload
//   experiment  -> all of the above + monitoring
//
// A src/ module absent from this table is itself a ZD015: new subsystems are
// added here (and in DESIGN.md) deliberately, not by accretion.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"
#include "lint/scan.hpp"

namespace zerodeg::lint {

/// One quoted `#include "..."` directive.  `target` is the spelling between
/// the quotes; `resolved` is the repo-relative path of the file it names
/// (filled by resolve_includes), or empty when it points outside the model.
struct IncludeEdge {
    std::size_t line = 0;
    std::string target;
    std::string resolved;
};

/// One `core::RngStream(seed, "name")` construction whose name is a literal.
struct StreamUse {
    std::size_t line = 0;
    std::string name;
};

/// One full-statement call `f(...);` / `obj.f(...);` — the form that
/// discards the return value.
struct BareCall {
    std::size_t line = 0;
    std::string callee;  ///< last identifier before the argument list
};

/// One `std::accumulate(...)` / `std::reduce(...)` call whose argument span
/// shows floating-point evidence (float/double tokens or a float literal).
struct FloatReduction {
    std::size_t line = 0;
    std::string what;  ///< the qualified spelling found
};

/// One function declared with an ErrorCode return type (harvested from
/// headers only — that is where the contract lives).
struct ErrorFn {
    std::size_t line = 0;
    std::string name;
};

/// Everything pass 2 needs to know about one file, extracted in one lex.
struct FileScan {
    std::string path;    ///< repo-relative, forward slashes
    std::string module;  ///< "core".."workload", "tools", "bench", "tests", or ""
    std::vector<IncludeEdge> includes;
    std::vector<StreamUse> streams;
    std::vector<ErrorFn> error_fns;
    std::vector<BareCall> bare_calls;
    std::vector<FloatReduction> reductions;
    std::vector<Suppression> suppressions;
    std::vector<std::uint64_t> fingerprints;  ///< per line, for baseline keys
};

/// Module a path belongs to: `src/<m>/...` -> `<m>`; `tools/...` -> "tools";
/// likewise bench/tests; anything else -> "".
[[nodiscard]] std::string module_of(std::string_view path);

/// Pass-1 extraction for one in-memory file.  Pure (no filesystem).
[[nodiscard]] FileScan scan_file(std::string path, std::string_view content);

struct ProjectModel {
    std::vector<FileScan> files;  ///< sorted by path
};

/// Fill every IncludeEdge::resolved against the model's own file set
/// (candidates: the includer's directory, then src/, tools/, bench/, tests/,
/// then the repo root).  Exposed separately so tests can assemble models
/// in memory from scan_file() without touching the filesystem.
void resolve_includes(ProjectModel& model);

/// Walk `root` under the given scan roots (sorted, .cpp/.cc/.hpp/.h only),
/// scan every file and resolve includes.  Throws zerodeg::IoError on
/// unreadable files.
[[nodiscard]] ProjectModel build_project_model(const std::filesystem::path& root,
                                               const std::vector<std::string>& scan_roots);

/// Module-level include graph plus the violations found on it.
struct ModuleGraph {
    std::map<std::string, std::set<std::string>> edges;    ///< module -> its deps
    std::map<std::string, std::set<std::string>> illegal;  ///< subset violating the DAG
    std::vector<std::vector<std::string>> cycles;          ///< file-level include cycles
};

struct ProjectReport {
    std::vector<Diagnostic> diagnostics;  ///< ZD015-ZD018 + project ZD097, sorted
    ModuleGraph graph;
    std::size_t files_scanned = 0;
};

/// Pass 2: judge the whole model.  Reasoned `allow(ZDxxx)` suppressions are
/// honoured; stale ones naming project checks come back as ZD097.
[[nodiscard]] ProjectReport analyze_project(const ProjectModel& model);

/// The allowed-edge table (src/ modules only), for docs and tests.
[[nodiscard]] const std::map<std::string, std::set<std::string>>& layer_dag();

/// Graphviz rendering of the module graph; illegal edges are drawn red.
[[nodiscard]] std::string render_dot(const ModuleGraph& graph);

/// Human-readable per-module fan-in/fan-out and cycle summary.
[[nodiscard]] std::string render_architecture_report(const ModuleGraph& graph);

}  // namespace zerodeg::lint
