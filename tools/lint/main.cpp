// zerodeg_lint CLI — walks the tree, runs the checks, applies the baseline.
//
// Exit codes (mirroring the zerodeg CLI convention):
//   0  clean (or report-only mode)
//   1  findings that fail the gate (--error-on-new)
//   2  usage or I/O error
//
// The walk is deterministic by construction: files are collected, sorted by
// repo-relative path, then linted in that order — the tool obeys the same
// ordering rule it enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "lint/lint.hpp"
#include "lint/project.hpp"

namespace fs = std::filesystem;
using zerodeg::lint::Baseline;
using zerodeg::lint::Diagnostic;
using zerodeg::lint::Severity;

namespace {

constexpr const char* kUsage =
    R"(usage: zerodeg_lint [options] [subdir...]

Determinism and hygiene checker for the zerodeg tree.

options:
  --root DIR         repo root to scan (default: .)
  --baseline FILE    accepted pre-existing findings (see --write-baseline)
  --error-on-new     exit 1 on error-severity findings not in the baseline
  --write-baseline   rewrite the --baseline file from current findings
  --project          also run the whole-project pass (include-graph layering
                     ZD015, RNG-stream collisions ZD016, ErrorCode discards
                     ZD017, float reductions ZD018); always scans the full
                     tree regardless of subdir arguments
  --graph-dot FILE   write the module include graph as Graphviz dot
                     (implies --project)
  --format=FMT       output format: human (default) or json
  --changed          lint only the files named on stdin, one path per line
                     (fast pre-commit mode: git diff --name-only | ... );
                     incompatible with --project
  --list-checks      print the check table and exit
  -h, --help         this text

subdirs default to: src bench tools tests
)";

struct Options {
    std::string root = ".";
    std::string baseline_path;
    std::string graph_dot_path;
    std::string format = "human";
    bool error_on_new = false;
    bool write_baseline = false;
    bool list_checks = false;
    bool project = false;
    bool changed = false;
    std::vector<std::string> subdirs;
};

[[nodiscard]] bool parse_args(int argc, char** argv, Options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "zerodeg_lint: " << flag << " requires a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--root") {
            const char* v = need_value("--root");
            if (v == nullptr) return false;
            opt.root = v;
        } else if (arg == "--baseline") {
            const char* v = need_value("--baseline");
            if (v == nullptr) return false;
            opt.baseline_path = v;
        } else if (arg == "--error-on-new") {
            opt.error_on_new = true;
        } else if (arg == "--write-baseline") {
            opt.write_baseline = true;
        } else if (arg == "--list-checks") {
            opt.list_checks = true;
        } else if (arg == "--project") {
            opt.project = true;
        } else if (arg == "--graph-dot") {
            const char* v = need_value("--graph-dot");
            if (v == nullptr) return false;
            opt.graph_dot_path = v;
            opt.project = true;
        } else if (arg == "--changed") {
            opt.changed = true;
        } else if (arg.rfind("--format=", 0) == 0) {
            opt.format = arg.substr(9);
            if (opt.format != "human" && opt.format != "json") {
                std::cerr << "zerodeg_lint: unknown format '" << opt.format
                          << "' (expected human or json)\n";
                return false;
            }
        } else if (arg == "-h" || arg == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "zerodeg_lint: unknown option '" << arg << "'\n" << kUsage;
            return false;
        } else {
            opt.subdirs.push_back(arg);
        }
    }
    if (opt.project && opt.changed) {
        std::cerr << "zerodeg_lint: --changed is a per-file fast path; the project-mode "
                     "checks only make sense over the full tree (drop one of the two)\n";
        return false;
    }
    if (opt.subdirs.empty()) opt.subdirs = {"src", "bench", "tools", "tests"};
    return true;
}

[[nodiscard]] bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Repo-relative paths of every lintable file under the requested subdirs,
/// sorted so output (and therefore the CTest gate's log) is reproducible.
[[nodiscard]] std::vector<std::string> collect_files(const Options& opt) {
    std::vector<std::string> files;
    for (const std::string& sub : opt.subdirs) {
        const fs::path dir = fs::path(opt.root) / sub;
        if (!fs::is_directory(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() || !lintable(entry.path())) continue;
            files.push_back(fs::relative(entry.path(), opt.root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

/// --changed: paths read from stdin (one per line, as printed by
/// `git diff --name-only`), filtered to lintable files that exist under the
/// root.  Vanished files (deletions in the diff) are skipped silently.
[[nodiscard]] std::vector<std::string> collect_changed_files(const Options& opt) {
    std::vector<std::string> files;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || !lintable(line)) continue;
        const std::string normal = fs::path(line).lexically_normal().generic_string();
        if (!fs::is_regular_file(fs::path(opt.root) / normal)) continue;
        files.push_back(normal);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

[[nodiscard]] std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw zerodeg::IoError("cannot open " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    if (!parse_args(argc, argv, opt)) return 2;

    if (opt.list_checks) {
        for (const auto& check : zerodeg::lint::known_checks()) {
            std::cout << check.id << "  [" << to_string(check.severity) << "]  " << check.summary
                      << "\n";
        }
        return 0;
    }

    try {
        Baseline baseline;
        if (!opt.baseline_path.empty() && !opt.write_baseline) {
            if (fs::exists(opt.baseline_path)) {
                baseline = zerodeg::core::with_context(
                    "loading baseline '" + opt.baseline_path + "'",
                    [&] { return Baseline::parse(read_file(opt.baseline_path)); });
            }
        }

        std::vector<Diagnostic> fresh;  // not covered by the baseline
        std::size_t baselined = 0;
        std::size_t files_scanned = 0;
        const auto gate = [&](Diagnostic& d) {
            // Meta findings (rotten suppressions) are never baselined: an
            // unexplained, unknown-id or stale allowance must always fail.
            if (zerodeg::lint::is_baselinable_check(d.id) && baseline.contains(d)) {
                ++baselined;
                return;
            }
            fresh.push_back(std::move(d));
        };

        const std::vector<std::string> files =
            opt.changed ? collect_changed_files(opt) : collect_files(opt);
        for (const std::string& file : files) {
            ++files_scanned;
            const std::string content =
                zerodeg::core::with_context("reading " + file,
                                            [&] { return read_file(fs::path(opt.root) / file); });
            for (Diagnostic& d : zerodeg::lint::lint_source(file, content)) gate(d);
        }

        std::string architecture_report;
        if (opt.project) {
            const zerodeg::lint::ProjectModel model = zerodeg::lint::build_project_model(
                fs::path(opt.root), {"src", "tools", "bench", "tests"});
            zerodeg::lint::ProjectReport report = zerodeg::lint::analyze_project(model);
            for (Diagnostic& d : report.diagnostics) gate(d);
            architecture_report = render_architecture_report(report.graph);
            if (!opt.graph_dot_path.empty()) {
                std::ofstream dot(opt.graph_dot_path, std::ios::binary | std::ios::trunc);
                if (!dot) throw zerodeg::IoError("cannot write " + opt.graph_dot_path);
                dot << render_dot(report.graph);
            }
        }
        std::sort(fresh.begin(), fresh.end(), [](const Diagnostic& a, const Diagnostic& b) {
            if (a.file != b.file) return a.file < b.file;
            if (a.line != b.line) return a.line < b.line;
            return a.id < b.id;
        });

        if (opt.write_baseline) {
            if (opt.baseline_path.empty()) {
                std::cerr << "zerodeg_lint: --write-baseline requires --baseline FILE\n";
                return 2;
            }
            Baseline rewritten;
            for (const Diagnostic& d : fresh) {
                if (zerodeg::lint::is_baselinable_check(d.id)) rewritten.add(d);
            }
            std::ofstream out(opt.baseline_path, std::ios::binary | std::ios::trunc);
            if (!out) throw zerodeg::IoError("cannot write " + opt.baseline_path);
            out << rewritten.serialize();
            std::cout << "zerodeg_lint: wrote " << rewritten.size() << " baseline entr"
                      << (rewritten.size() == 1 ? "y" : "ies") << " to " << opt.baseline_path
                      << "\n";
            return 0;
        }

        std::size_t errors = 0;
        std::size_t warnings = 0;
        for (const Diagnostic& d : fresh) (d.severity == Severity::kError ? errors : warnings) += 1;

        if (opt.format == "json") {
            std::cout << "{\"files_scanned\":" << files_scanned << ",\"errors\":" << errors
                      << ",\"warnings\":" << warnings << ",\"baselined\":" << baselined
                      << ",\"findings\":[";
            for (std::size_t i = 0; i < fresh.size(); ++i) {
                if (i != 0) std::cout << ",";
                std::cout << "\n  " << format_diagnostic_json(fresh[i]);
            }
            std::cout << (fresh.empty() ? "" : "\n") << "]}\n";
        } else {
            for (const Diagnostic& d : fresh) std::cout << format_diagnostic(d) << "\n";
            if (!architecture_report.empty()) std::cout << architecture_report;
            std::cout << "zerodeg_lint: " << files_scanned << " files, " << errors << " error(s), "
                      << warnings << " warning(s), " << baselined << " baselined\n";
        }
        return (opt.error_on_new && errors > 0) ? 1 : 0;
    } catch (const zerodeg::Error& e) {
        std::cerr << "zerodeg_lint: [" << to_string(e.code()) << "] " << e.what() << "\n";
        return 2;
    }
}
