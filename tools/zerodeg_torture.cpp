// zerodeg_torture — crash-consistency and hung-node torture for sweeps.
//
//   zerodeg_torture [--seeds N] [--jobs N] [--cells trivial|season]
//                   [--scratch DIR] [--skip-export] [--skip-watchdog]
//                   [--verbose]
//
// Three scenarios, all deterministic:
//
//   1. Census torture: replay a checkpointed census campaign, crashing the
//      "process" at every journal write point times every crash phase
//      (before / torn write / after / torn tail), resume each time, and
//      require output byte-identical to an uninterrupted run.  Runs for
//      --jobs 1 and --jobs 8 unless --jobs pins one value.
//   2. Export torture: crash a season's figure export at a seed-chosen
//      subset of its write operations, re-export, and require every file
//      byte-identical to an undisturbed export.
//   3. Watchdog scenario: hang each cell's first attempt on a FaultyFs
//      stall fault; the core::Watchdog must cancel it, the CellRetry budget
//      must absorb the retry, and the campaign must still produce the
//      reference output while reporting the hung nodes.
//   4. Distributed torture: shard the campaign across --workers worker
//      processes streaming cells to a coordinator over faulty transports;
//      kill each worker at every send point and the coordinator at every
//      frame (every crash phase), resume, and require the merged journal
//      and rendered census byte-identical to an uninterrupted local run.
//
// --cells trivial (default) drives the journal machinery with synthetic
// deterministic cells (milliseconds per campaign); --cells season runs
// short real seasons instead, exercising the full simulation stack.
//
// Exit codes: 0 all scenarios passed, 1 torture failure, 2 usage error.
#include <atomic>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "experiment/config.hpp"
#include "experiment/distributed.hpp"
#include "experiment/figures.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/runner.hpp"
#include "experiment/torture.hpp"

namespace {

namespace fs = std::filesystem;
using namespace zerodeg;

struct Options {
    std::size_t seeds = 3;
    std::size_t jobs = 0;  ///< 0 = run the acceptance pair {1, 8}
    std::size_t workers = 2;
    bool season_cells = false;
    bool skip_export = false;
    bool skip_watchdog = false;
    bool skip_distributed = false;
    bool verbose = false;
    fs::path scratch;
};

/// Short, cheap season (the test-suite trick): torture is about the I/O
/// bookkeeping, not season length.
experiment::ExperimentConfig cheap_season(std::uint64_t seed, int days) {
    experiment::ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = cfg.start + core::Duration::days(days);
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

experiment::CensusPlan make_plan(const Options& opt) {
    experiment::CensusPlan plan;
    plan.base_seed = 20100219;
    plan.seeds = opt.seeds;
    plan.make_config = [](std::size_t, std::uint64_t seed) { return cheap_season(seed, 7); };
    if (!opt.season_cells) plan.run_cell = experiment::synthetic_census;
    return plan;
}

bool census_torture(const Options& opt, std::size_t jobs) {
    std::cout << "== census torture (" << (opt.season_cells ? "season" : "trivial")
              << " cells, " << opt.seeds << " seeds, --jobs " << jobs << ") ==\n";
    experiment::TortureOptions topt;
    topt.jobs = jobs;
    topt.verbose = opt.verbose;
    const experiment::TortureReport report = experiment::torture_campaign(
        make_plan(opt), jobs, opt.scratch / ("census_jobs" + std::to_string(jobs) + ".journal"),
        topt, std::cout);
    std::cout << "  " << report.io_ops << " write points, " << report.crash_points
              << " crash points, " << report.resumes << " resumes ("
              << report.tail_repairs << " torn-tail repairs, " << report.journal_resets
              << " journal resets), " << report.mismatches << " mismatches -> "
              << (report.passed() ? "PASS" : "FAIL") << '\n';
    return report.passed();
}

/// Crash the figure export at a seed-chosen subset of its writes; after each
/// death re-export and require every file byte-identical to a reference.
bool export_torture(const Options& opt) {
    std::cout << "== export torture (seed-chosen crash subset) ==\n";
    experiment::ExperimentRunner run(cheap_season(20100219, 3));
    run.run();

    const fs::path ref_dir = opt.scratch / "export_ref";
    const fs::path tort_dir = opt.scratch / "export_torture";
    fs::create_directories(ref_dir);
    fs::create_directories(tort_dir);
    const std::vector<std::string> reference =
        experiment::export_figure_data(run, ref_dir.string());

    // Count the export's write operations, then pick a deterministic subset
    // of them as crash points (every op would re-render the season's series
    // dozens of times for little extra coverage — the journal torture above
    // already covers "every op" exhaustively).
    core::FaultyFs counter(core::FaultPlan{});
    (void)experiment::export_figure_data(run, tort_dir.string(), experiment::FigureFiles(), 1,
                                         &counter);
    const std::size_t ops = counter.op_count();
    std::set<std::size_t> crash_ops;
    std::uint64_t pick_state = 0xe4a027ULL;
    while (crash_ops.size() < std::min<std::size_t>(5, ops)) {
        crash_ops.insert(static_cast<std::size_t>(core::splitmix64(pick_state) % ops));
    }

    bool ok = true;
    for (const std::size_t op : crash_ops) {
        for (const core::CrashPhase phase :
             {core::CrashPhase::kBeforeOp, core::CrashPhase::kTornWrite}) {
            core::FaultPlan fault_plan;
            fault_plan.crash_at_op = op;
            fault_plan.crash_phase = phase;
            core::FaultyFs faulty(fault_plan);
            try {
                (void)experiment::export_figure_data(run, tort_dir.string(),
                                                     experiment::FigureFiles(), 1, &faulty);
            } catch (const core::SimulatedCrash&) {
                // expected: the export died mid-write
            }
            // The survivor re-runs the export against the real disk.
            const std::vector<std::string> redone =
                experiment::export_figure_data(run, tort_dir.string());
            for (std::size_t i = 0; i < reference.size(); ++i) {
                if (core::real_fs().read_file(redone[i]) !=
                    core::real_fs().read_file(reference[i])) {
                    std::cout << "  MISMATCH after crash at op " << op << " phase "
                              << core::to_string(phase) << ": " << redone[i] << '\n';
                    ok = false;
                }
            }
            if (opt.verbose) {
                std::cout << "  crash at op " << op << " phase " << core::to_string(phase)
                          << ": re-export byte-identical\n";
            }
        }
    }
    std::cout << "  " << ops << " export writes, " << crash_ops.size()
              << " crash ops x 2 phases -> " << (ok ? "PASS" : "FAIL") << '\n';
    return ok;
}

/// Hang each cell's first attempt on an injected stall; the watchdog must
/// cancel it and the retried campaign must still match the reference.
bool watchdog_torture(const Options& opt, std::size_t jobs) {
    std::cout << "== watchdog scenario (injected stalls, --jobs " << jobs << ") ==\n";
    experiment::CensusPlan plan = make_plan(opt);
    plan.run_cell = experiment::synthetic_census;  // hang injection needs fast cells
    const std::string want =
        experiment::render_census_table(experiment::ParallelCensus(plan, jobs).run(),
                                        plan.base_seed);

    // Every write through this FaultyFs stalls until cancelled (the poll cap
    // is a parachute, not the expected exit).
    core::FaultPlan stall_plan;
    stall_plan.stall_rate = 1.0;
    stall_plan.max_stall_polls = 60000;
    auto stalling = std::make_shared<core::FaultyFs>(stall_plan);

    const fs::path heartbeat_dir = opt.scratch / "heartbeats";
    fs::create_directories(heartbeat_dir);
    auto first_attempt_done = std::make_shared<std::map<std::uint64_t, std::atomic<bool>>>();
    for (std::size_t i = 0; i < plan.seeds; ++i) {
        (*first_attempt_done)[plan.base_seed + i] = false;
    }

    experiment::CensusPlan hung = plan;
    hung.cell_attempts = 3;
    hung.cell_deadline_ms = 150;
    hung.run_cell = [stalling, first_attempt_done,
                     heartbeat_dir](const experiment::ExperimentConfig& cfg) {
        std::atomic<bool>& done = first_attempt_done->at(cfg.master_seed);
        if (!done.exchange(true)) {
            // First attempt: the heartbeat write hangs on the injected stall
            // until the watchdog cancels this cell (TransientError).
            stalling->write_file(
                heartbeat_dir / ("cell_" + std::to_string(cfg.master_seed) + ".alive"), "alive\n");
        }
        return experiment::synthetic_census(cfg);
    };

    const experiment::CensusResult result = experiment::ParallelCensus(hung, jobs).run();
    const std::size_t hung_cells = result.harness.hung_cells;

    // The harness report is *supposed* to differ (it names the hung nodes);
    // the census itself must not.
    experiment::CensusResult scrubbed = result;
    scrubbed.harness = experiment::CensusHarnessStats{};
    const std::string got = experiment::render_census_table(scrubbed, plan.base_seed);

    bool ok = true;
    if (hung_cells < plan.seeds) {
        std::cout << "  FAIL: expected >= " << plan.seeds << " hung nodes, watchdog saw "
                  << hung_cells << '\n';
        ok = false;
    }
    if (got != want) {
        std::cout << "  FAIL: census after hung-node retries differs from reference\n";
        ok = false;
    }
    std::cout << "  " << hung_cells << " hung node(s) detected, cancelled and retried";
    if (!result.harness.hung_cell_labels.empty()) {
        std::cout << " (";
        for (std::size_t i = 0; i < result.harness.hung_cell_labels.size(); ++i) {
            if (i > 0) std::cout << ", ";
            std::cout << result.harness.hung_cell_labels[i];
        }
        std::cout << ')';
    }
    std::cout << " -> " << (ok ? "PASS" : "FAIL") << '\n';
    return ok;
}

/// Cross-process crash torture: kill worker and coordinator at every
/// transport operation; every resumed campaign must converge byte-identically.
bool distributed_scenario(const Options& opt) {
    std::cout << "== distributed torture (" << opt.workers << " workers, "
              << (opt.season_cells ? "season" : "trivial") << " cells) ==\n";
    experiment::DistributedTortureOptions topt;
    topt.workers = opt.workers;
    topt.jobs = 1;
    topt.verbose = opt.verbose;
    const experiment::DistributedTortureReport report = experiment::distributed_torture(
        make_plan(opt), opt.scratch / "distributed", topt, std::cout);
    std::cout << "  " << report.worker_send_points << " worker send points, "
              << report.coordinator_frames << " coordinator frames, " << report.crash_points
              << " kills (" << report.permanent_kills << " permanent, " << report.unfired_kills
              << " unfired), " << report.resumes << " resumes, " << report.quarantine_checks
              << " quarantine checks, " << report.mismatches << " mismatches -> "
              << (report.passed() ? "PASS" : "FAIL") << '\n';
    return report.passed();
}

int usage() {
    std::cerr << "usage: zerodeg_torture [--seeds N] [--jobs N] [--workers N]\n"
                 "                       [--cells trivial|season] [--scratch DIR]\n"
                 "                       [--skip-export] [--skip-watchdog]\n"
                 "                       [--skip-distributed] [--verbose]\n"
                 "  --jobs N    torture only that worker count (default: both 1 and 8)\n"
                 "  --workers N shards of the distributed scenario (default: 2)\n"
                 "  --cells     trivial = fast synthetic cells (default); season = real\n"
                 "              one-week seasons through the full simulation stack\n"
                 "exit codes: 0 all scenarios passed, 1 torture failure, 2 usage error\n";
    return 2;
}

Options parse_options(int argc, char** argv) {
    Options opt;
    opt.scratch = fs::temp_directory_path() / "zerodeg_torture";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) throw core::InvalidArgument("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--seeds") {
            opt.seeds = static_cast<std::size_t>(std::stoull(value()));
            if (opt.seeds == 0) throw core::InvalidArgument("--seeds must be positive");
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<std::size_t>(std::stoull(value()));
            if (opt.jobs == 0) throw core::InvalidArgument("--jobs must be positive");
        } else if (arg == "--cells") {
            const std::string kind = value();
            if (kind != "trivial" && kind != "season") {
                throw core::InvalidArgument("--cells wants 'trivial' or 'season', got '" + kind +
                                            "'");
            }
            opt.season_cells = (kind == "season");
        } else if (arg == "--workers") {
            opt.workers = static_cast<std::size_t>(std::stoull(value()));
            if (opt.workers == 0) throw core::InvalidArgument("--workers must be positive");
        } else if (arg == "--scratch") {
            opt.scratch = value();
        } else if (arg == "--skip-export") {
            opt.skip_export = true;
        } else if (arg == "--skip-watchdog") {
            opt.skip_watchdog = true;
        } else if (arg == "--skip-distributed") {
            opt.skip_distributed = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            throw core::InvalidArgument("unknown flag '" + arg + "'");
        }
    }
    return opt;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    try {
        opt = parse_options(argc, argv);
    } catch (const core::InvalidArgument& e) {
        std::cerr << "error: " << e.what() << '\n';
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return usage();
    }
    try {
        fs::create_directories(opt.scratch);
        const std::vector<std::size_t> jobs_list =
            opt.jobs > 0 ? std::vector<std::size_t>{opt.jobs} : std::vector<std::size_t>{1, 8};

        bool ok = true;
        for (const std::size_t jobs : jobs_list) ok = census_torture(opt, jobs) && ok;
        if (!opt.skip_export) ok = export_torture(opt) && ok;
        if (!opt.skip_watchdog) ok = watchdog_torture(opt, jobs_list.back()) && ok;
        if (!opt.skip_distributed) ok = distributed_scenario(opt) && ok;

        std::cout << (ok ? "torture: ALL SCENARIOS PASSED\n" : "torture: FAILURES (see above)\n");
        return ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
