// zerodeg — command-line front end over the library.
//
//   zerodeg weather   [--seed N] [--full-year] [--step-min M]
//                     [--from YYYY-MM-DD] [--to YYYY-MM-DD]
//       Print a synthetic weather trace as CSV (pipe to a file, feed back
//       with `season --trace`).
//
//   zerodeg season    [--seed N] [--end YYYY-MM-DD] [--trace FILE]
//                     [--export DIR] [--jobs N]
//       Run the paper's experiment season; print the census; optionally
//       export figure CSVs (written in parallel with --jobs > 1).
//
//   zerodeg census    [--seeds N] [--jobs N]
//       Monte Carlo fault census over N seeds, sharded across N worker
//       threads (--jobs 0 = one per hardware thread).  Output is
//       byte-identical for every --jobs value.
//
//   zerodeg prototype [--seed N]
//       The Feb 12-15 prototype weekend.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "experiment/census.hpp"
#include "experiment/figures.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/prototype.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "weather/trace_io.hpp"

namespace {

using namespace zerodeg;

/// --key value arguments into a map; returns false on malformed input.
bool parse_flags(int argc, char** argv, int first,
                 std::map<std::string, std::string>& flags) {
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::cerr << "unexpected argument: " << arg << '\n';
            return false;
        }
        const std::string key = arg.substr(2);
        if (key == "full-year") {  // boolean flag
            flags[key] = "1";
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "missing value for --" << key << '\n';
            return false;
        }
        flags[key] = argv[++i];
    }
    return true;
}

/// --jobs value: 0 = one worker per hardware thread; absent = serial.
std::size_t parse_jobs(const std::map<std::string, std::string>& flags) {
    if (!flags.count("jobs")) return 1;
    const long long v = std::stoll(flags.at("jobs"));
    if (v < 0) throw core::InvalidArgument("--jobs must be >= 0");
    return v == 0 ? core::TaskPool::hardware_workers() : static_cast<std::size_t>(v);
}

core::TimePoint parse_date(const std::string& s) {
    int y = 0, m = 0, d = 0;
    if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
        throw core::InvalidArgument("bad date (want YYYY-MM-DD): " + s);
    }
    return core::TimePoint::from_date(y, m, d);
}

int cmd_weather(const std::map<std::string, std::string>& flags) {
    const std::uint64_t seed =
        flags.count("seed") ? std::stoull(flags.at("seed")) : 20100219ULL;
    const bool full_year = flags.count("full-year") > 0;
    weather::WeatherConfig cfg =
        full_year ? weather::helsinki_full_year_config() : weather::helsinki_2010_config();
    const core::TimePoint from = flags.count("from")
                                     ? parse_date(flags.at("from"))
                                     : core::TimePoint::from_date(2010, 2, 12);
    const core::TimePoint to = flags.count("to") ? parse_date(flags.at("to"))
                                                 : core::TimePoint::from_date(2010, 3, 27);
    const auto step = core::Duration::minutes(
        flags.count("step-min") ? std::stoll(flags.at("step-min")) : 10);
    weather::WeatherModel model(cfg, seed);
    const auto trace = weather::generate_trace(model, from, to, step);
    weather::write_trace(std::cout, trace);
    return 0;
}

void print_census(const experiment::FaultCensus& c) {
    std::cout << "hosts: " << c.tent_hosts << " tent / " << c.basement_hosts << " basement\n"
              << "system failures: " << c.system_failures << " (" << c.transient_failures
              << " transient, " << c.permanent_failures << " permanent)\n"
              << "hosts failed: " << c.tent_hosts_failed << " tent, "
              << c.basement_hosts_failed << " basement  (fleet rate "
              << experiment::fmt_pct(c.fleet_failure_rate()) << ", paper 5.6%, Intel 4.46%)\n"
              << "sensor incidents: " << c.sensor_incidents
              << ", switch failures: " << c.switch_failures
              << ", fan faults: " << c.fan_faults << ", disk faults: " << c.disk_faults << '\n'
              << "load runs: " << c.load_runs << ", wrong hashes: " << c.wrong_hashes
              << " (tent " << c.wrong_hashes_tent << " / basement " << c.wrong_hashes_basement
              << ")\n";
    if (c.wrong_hashes > 0) {
        std::cout << "page ops per corruption: "
                  << experiment::fmt(1.0 / c.page_fault_ratio() / 1e6, 0)
                  << " million (paper: ~570 million)\n";
    }
}

int cmd_season(const std::map<std::string, std::string>& flags) {
    experiment::ExperimentConfig cfg;
    if (flags.count("seed")) cfg.master_seed = std::stoull(flags.at("seed"));
    if (flags.count("end")) cfg.end = parse_date(flags.at("end"));
    if (flags.count("trace")) {
        std::ifstream in(flags.at("trace"));
        if (!in) {
            std::cerr << "cannot open trace file " << flags.at("trace") << '\n';
            return 1;
        }
        cfg.weather_trace = weather::read_trace(in);
    }
    std::cout << "season " << cfg.start.date_string() << " .. " << cfg.end.date_string()
              << " (seed " << cfg.master_seed
              << (cfg.weather_trace.empty() ? ", synthetic weather" : ", trace-driven")
              << ")\n";
    experiment::ExperimentRunner run(cfg);
    run.run();

    print_census(experiment::take_census(run));
    std::cout << "tent envelope: "
              << experiment::fmt_pct(run.tent_envelope().fraction_within())
              << " of the season inside ASHRAE-allowable\n";

    if (flags.count("export")) {
        std::filesystem::create_directories(flags.at("export"));
        const auto written = experiment::export_figure_data(
            run, flags.at("export"), experiment::FigureFiles(), parse_jobs(flags));
        std::cout << "exported " << written.size() << " files to " << flags.at("export")
                  << '\n';
    }
    return 0;
}

int cmd_census(const std::map<std::string, std::string>& flags) {
    const int seeds = flags.count("seeds") ? std::stoi(flags.at("seeds")) : 10;
    if (seeds <= 0) {
        std::cerr << "--seeds must be positive\n";
        return 1;
    }
    experiment::CensusPlan plan;
    plan.seeds = static_cast<std::size_t>(seeds);
    const std::size_t jobs = parse_jobs(flags);
    const experiment::CensusResult result = experiment::run_census(plan, jobs);
    for (std::size_t i = 0; i < result.censuses.size(); ++i) {
        std::cout << "seed " << plan.base_seed + i << ": "
                  << result.censuses[i].system_failures << " system failure(s), "
                  << result.censuses[i].wrong_hashes << " wrong hash(es)\n";
    }
    const experiment::CensusSummary& s = result.summary;
    std::cout << "\nmean fleet failure rate: "
              << experiment::fmt_pct(s.mean_fleet_failure_rate)
              << " (paper 5.6%, Intel 4.46%)\n"
              << "mean wrong hashes/season: " << experiment::fmt(s.mean_wrong_hashes, 1)
              << " over " << experiment::fmt(s.mean_runs, 0) << " runs\n"
              << "seasons with sensor incident: "
              << experiment::fmt_pct(s.frac_runs_with_sensor_incident, 0) << '\n';
    return 0;
}

int cmd_prototype(const std::map<std::string, std::string>& flags) {
    experiment::PrototypeConfig cfg;
    if (flags.count("seed")) cfg.master_seed = std::stoull(flags.at("seed"));
    const auto r = experiment::run_prototype(cfg);
    std::cout << "prototype weekend " << cfg.start.date_string() << " .. "
              << cfg.end.date_string() << '\n'
              << "outside min/mean: " << experiment::fmt(r.outside_min.value(), 1) << " / "
              << experiment::fmt(r.outside_mean.value(), 1)
              << " degC (paper: -10.2 / -9.2)\n"
              << "coldest CPU reading: " << experiment::fmt(r.cpu_min_reported.value(), 1)
              << " degC (paper: -4)\n"
              << "survived: " << (r.survived ? "yes" : "NO")
              << ", SMART clean: " << (r.smart_ok ? "yes" : "NO") << '\n';
    return 0;
}

int usage() {
    std::cerr << "usage: zerodeg <weather|season|census|prototype> [--flags]\n"
                 "  weather   [--seed N] [--full-year] [--from D] [--to D] [--step-min M]\n"
                 "  season    [--seed N] [--end D] [--trace FILE] [--export DIR] [--jobs N]\n"
                 "  census    [--seeds N] [--jobs N]   (--jobs 0 = all hardware threads)\n"
                 "  prototype [--seed N]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    std::map<std::string, std::string> flags;
    if (!parse_flags(argc, argv, 2, flags)) return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "weather") return cmd_weather(flags);
        if (cmd == "season") return cmd_season(flags);
        if (cmd == "census") return cmd_census(flags);
        if (cmd == "prototype") return cmd_prototype(flags);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return usage();
}
