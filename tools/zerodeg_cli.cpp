// zerodeg — command-line front end over the library.
//
//   zerodeg weather   [--seed N] [--full-year] [--step-min M]
//                     [--from YYYY-MM-DD] [--to YYYY-MM-DD]
//       Print a synthetic weather trace as CSV (pipe to a file, feed back
//       with `season --trace`).
//
//   zerodeg season    [--seed N] [--end YYYY-MM-DD] [--trace FILE]
//                     [--export DIR] [--jobs N] [--checkpoint FILE] [--resume]
//                     [--collector-retries N] [--collector-buffer BYTES]
//       Run the paper's experiment season; print the census; optionally
//       export figure CSVs (written in parallel with --jobs > 1).  With
//       --checkpoint the finished census is journaled; --resume replays it
//       without re-simulating.
//
//   zerodeg census    [--seeds N] [--jobs N] [--checkpoint FILE] [--resume]
//       Monte Carlo fault census over N seeds, sharded across N worker
//       threads (--jobs 0 = one per hardware thread).  Output is
//       byte-identical for every --jobs value — including a --resume run
//       that reuses cells from a killed campaign's checkpoint journal.
//
//   zerodeg prototype [--seed N]
//       The Feb 12-15 prototype weekend.
//
// Exit codes: 0 success, 1 runtime failure (I/O, corrupt input, ...),
// 2 usage error (unknown subcommand/flag, malformed value).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "experiment/census.hpp"
#include "experiment/figures.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/prototype.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep_journal.hpp"
#include "weather/trace_io.hpp"

namespace {

using namespace zerodeg;

using FlagMap = std::map<std::string, std::string>;

/// Flags that take no value.
const std::set<std::string> kBooleanFlags = {"full-year", "resume"};

/// Flags each subcommand accepts; anything else is a usage error.
const std::map<std::string, std::set<std::string>> kAllowedFlags = {
    {"weather", {"seed", "full-year", "from", "to", "step-min"}},
    {"season",
     {"seed", "end", "trace", "export", "jobs", "checkpoint", "resume", "collector-retries",
      "collector-buffer"}},
    {"census", {"seeds", "jobs", "checkpoint", "resume"}},
    {"prototype", {"seed"}},
};

/// --key [value] arguments into a map; throws InvalidArgument on malformed
/// input or a flag the subcommand does not know.
FlagMap parse_flags(const std::string& cmd, int argc, char** argv, int first) {
    const std::set<std::string>& allowed = kAllowedFlags.at(cmd);
    FlagMap flags;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            throw core::InvalidArgument("unexpected argument '" + arg + "' (flags start with --)");
        }
        const std::string key = arg.substr(2);
        if (!allowed.contains(key)) {
            throw core::InvalidArgument("--" + key + " is not a flag of 'zerodeg " + cmd + "'");
        }
        if (kBooleanFlags.contains(key)) {
            flags[key] = "1";
            continue;
        }
        if (i + 1 >= argc) {
            throw core::InvalidArgument("missing value for --" + key);
        }
        flags[key] = argv[++i];
    }
    if (flags.contains("resume") && !flags.contains("checkpoint")) {
        throw core::InvalidArgument("--resume needs --checkpoint <file> to resume from");
    }
    return flags;
}

/// Strict nonnegative-integer flag ("--jobs -3" and "--seeds x" both die
/// with a diagnostic naming the flag, not a stoi backtrace).
std::uint64_t flag_u64(const FlagMap& flags, const std::string& name, std::uint64_t fallback) {
    const auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    try {
        return core::parse_csv_u64(it->second);
    } catch (const core::Error&) {
        throw core::InvalidArgument("--" + name + " wants a nonnegative integer, got '" +
                                    it->second + "'");
    }
}

/// --jobs value: 0 = one worker per hardware thread; absent = serial.
std::size_t parse_jobs(const FlagMap& flags) {
    const std::uint64_t v = flag_u64(flags, "jobs", 1);
    return v == 0 ? core::TaskPool::hardware_workers() : static_cast<std::size_t>(v);
}

core::TimePoint parse_date(const std::string& s) {
    int y = 0, m = 0, d = 0;
    if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
        throw core::InvalidArgument("bad date (want YYYY-MM-DD): " + s);
    }
    return core::TimePoint::from_date(y, m, d);
}

int cmd_weather(const FlagMap& flags) {
    const std::uint64_t seed = flag_u64(flags, "seed", 20100219ULL);
    const bool full_year = flags.count("full-year") > 0;
    weather::WeatherConfig cfg =
        full_year ? weather::helsinki_full_year_config() : weather::helsinki_2010_config();
    const core::TimePoint from = flags.count("from")
                                     ? parse_date(flags.at("from"))
                                     : core::TimePoint::from_date(2010, 2, 12);
    const core::TimePoint to = flags.count("to") ? parse_date(flags.at("to"))
                                                 : core::TimePoint::from_date(2010, 3, 27);
    const std::uint64_t step_min = flag_u64(flags, "step-min", 10);
    if (step_min == 0) throw core::InvalidArgument("--step-min must be positive");
    weather::WeatherModel model(cfg, seed);
    const auto trace =
        weather::generate_trace(model, from, to, core::Duration::minutes(step_min));
    weather::write_trace(std::cout, trace);
    return 0;
}

void print_census(const experiment::FaultCensus& c) {
    std::cout << "hosts: " << c.tent_hosts << " tent / " << c.basement_hosts << " basement\n"
              << "system failures: " << c.system_failures << " (" << c.transient_failures
              << " transient, " << c.permanent_failures << " permanent)\n"
              << "hosts failed: " << c.tent_hosts_failed << " tent, "
              << c.basement_hosts_failed << " basement  (fleet rate "
              << experiment::fmt_pct(c.fleet_failure_rate()) << ", paper 5.6%, Intel 4.46%)\n"
              << "sensor incidents: " << c.sensor_incidents
              << ", switch failures: " << c.switch_failures
              << ", fan faults: " << c.fan_faults << ", disk faults: " << c.disk_faults << '\n'
              << "load runs: " << c.load_runs << ", wrong hashes: " << c.wrong_hashes
              << " (tent " << c.wrong_hashes_tent << " / basement " << c.wrong_hashes_basement
              << ")\n";
    if (c.wrong_hashes > 0) {
        std::cout << "page ops per corruption: "
                  << experiment::fmt(1.0 / c.page_fault_ratio() / 1e6, 0)
                  << " million (paper: ~570 million)\n";
    }
}

int cmd_season(const FlagMap& flags) {
    experiment::ExperimentConfig cfg;
    cfg.master_seed = flag_u64(flags, "seed", cfg.master_seed);
    if (flags.count("end")) cfg.end = parse_date(flags.at("end"));
    if (flags.count("trace")) {
        std::ifstream in(flags.at("trace"));
        if (!in) {
            throw core::IoError("cannot open trace file '" + flags.at("trace") + "'");
        }
        cfg.weather_trace = core::with_context("reading --trace " + flags.at("trace"),
                                               [&in] { return weather::read_trace(in); });
    }
    const std::uint64_t retries = flag_u64(flags, "collector-retries", 1);
    if (retries == 0) throw core::InvalidArgument("--collector-retries must be >= 1");
    cfg.collector_retry.max_attempts = static_cast<int>(retries);
    cfg.collector_retry.buffer_capacity_bytes = flag_u64(flags, "collector-buffer", 0);
    experiment::validate(cfg);

    // With --checkpoint the season runs as a 1-cell campaign whose journal
    // binds this exact config; --resume replays the recorded census without
    // re-simulating (the envelope/export need a live run and are skipped).
    experiment::CensusPlan plan;
    plan.base_seed = cfg.master_seed;
    plan.seeds = 1;
    plan.make_config = [&cfg](std::size_t, std::uint64_t) { return cfg; };
    const experiment::ParallelCensus campaign(plan, 1);
    std::unique_ptr<experiment::SweepJournal> journal;
    if (flags.count("checkpoint")) {
        journal = std::make_unique<experiment::SweepJournal>(
            flags.at("checkpoint"), campaign.journal_key(), flags.count("resume") > 0);
    }

    std::cout << "season " << cfg.start.date_string() << " .. " << cfg.end.date_string()
              << " (seed " << cfg.master_seed
              << (cfg.weather_trace.empty() ? ", synthetic weather" : ", trace-driven")
              << ")\n";

    if (journal && journal->complete()) {
        std::cout << "checkpoint " << flags.at("checkpoint")
                  << " is complete; replaying the recorded census\n";
        print_census(*journal->find(0));
        std::cout << "(envelope stats and --export need a live run; delete the checkpoint to "
                     "re-simulate)\n";
        return 0;
    }

    experiment::ExperimentRunner run(cfg);
    run.run();
    const experiment::FaultCensus census = experiment::take_census(run);
    if (journal) journal->record(0, census);

    print_census(census);
    std::cout << "tent envelope: "
              << experiment::fmt_pct(run.tent_envelope().fraction_within())
              << " of the season inside ASHRAE-allowable\n";

    if (flags.count("export")) {
        std::filesystem::create_directories(flags.at("export"));
        const auto written = experiment::export_figure_data(
            run, flags.at("export"), experiment::FigureFiles(), parse_jobs(flags));
        std::cout << "exported " << written.size() << " files to " << flags.at("export")
                  << '\n';
    }
    return 0;
}

int cmd_census(const FlagMap& flags) {
    const std::uint64_t seeds = flag_u64(flags, "seeds", 10);
    if (seeds == 0) throw core::InvalidArgument("--seeds must be positive");
    experiment::CensusPlan plan;
    plan.seeds = static_cast<std::size_t>(seeds);
    const std::size_t jobs = parse_jobs(flags);
    const experiment::ParallelCensus campaign(plan, jobs);

    experiment::CensusResult result;
    if (flags.count("checkpoint")) {
        experiment::SweepJournal journal(flags.at("checkpoint"), campaign.journal_key(),
                                         flags.count("resume") > 0);
        if (journal.completed() > 0) {
            std::cout << "resuming: " << journal.completed() << "/" << plan.seeds
                      << " cells from " << flags.at("checkpoint") << '\n';
        }
        result = campaign.run(journal);
    } else {
        result = campaign.run();
    }

    for (std::size_t i = 0; i < result.censuses.size(); ++i) {
        std::cout << "seed " << plan.base_seed + i << ": "
                  << result.censuses[i].system_failures << " system failure(s), "
                  << result.censuses[i].wrong_hashes << " wrong hash(es)\n";
    }
    const experiment::CensusSummary& s = result.summary;
    std::cout << "\nmean fleet failure rate: "
              << experiment::fmt_pct(s.mean_fleet_failure_rate)
              << " (paper 5.6%, Intel 4.46%)\n"
              << "mean wrong hashes/season: " << experiment::fmt(s.mean_wrong_hashes, 1)
              << " over " << experiment::fmt(s.mean_runs, 0) << " runs\n"
              << "seasons with sensor incident: "
              << experiment::fmt_pct(s.frac_runs_with_sensor_incident, 0) << '\n';
    return 0;
}

int cmd_prototype(const FlagMap& flags) {
    experiment::PrototypeConfig cfg;
    cfg.master_seed = flag_u64(flags, "seed", cfg.master_seed);
    const auto r = experiment::run_prototype(cfg);
    std::cout << "prototype weekend " << cfg.start.date_string() << " .. "
              << cfg.end.date_string() << '\n'
              << "outside min/mean: " << experiment::fmt(r.outside_min.value(), 1) << " / "
              << experiment::fmt(r.outside_mean.value(), 1)
              << " degC (paper: -10.2 / -9.2)\n"
              << "coldest CPU reading: " << experiment::fmt(r.cpu_min_reported.value(), 1)
              << " degC (paper: -4)\n"
              << "survived: " << (r.survived ? "yes" : "NO")
              << ", SMART clean: " << (r.smart_ok ? "yes" : "NO") << '\n';
    return 0;
}

int usage() {
    std::cerr
        << "usage: zerodeg <weather|season|census|prototype> [--flags]\n"
           "  weather   [--seed N] [--full-year] [--from D] [--to D] [--step-min M]\n"
           "  season    [--seed N] [--end D] [--trace FILE] [--export DIR] [--jobs N]\n"
           "            [--checkpoint FILE] [--resume] [--collector-retries N]\n"
           "            [--collector-buffer BYTES]\n"
           "  census    [--seeds N] [--jobs N] [--checkpoint FILE] [--resume]\n"
           "            (--jobs 0 = all hardware threads)\n"
           "  prototype [--seed N]\n"
           "exit codes: 0 ok, 1 runtime failure, 2 usage error\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (!kAllowedFlags.contains(cmd)) {
        std::cerr << "error: unknown subcommand '" << cmd << "'\n";
        return usage();
    }
    try {
        const FlagMap flags = parse_flags(cmd, argc, argv, 2);
        if (cmd == "weather") return cmd_weather(flags);
        if (cmd == "season") return cmd_season(flags);
        if (cmd == "census") return cmd_census(flags);
        return cmd_prototype(flags);
    } catch (const core::InvalidArgument& e) {
        // Usage errors print one line + the synopsis and exit 2.
        std::cerr << "error: " << e.what() << '\n';
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
