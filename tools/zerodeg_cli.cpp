// zerodeg — command-line front end over the library.
//
//   zerodeg weather   [--seed N] [--full-year] [--step-min M]
//                     [--from YYYY-MM-DD] [--to YYYY-MM-DD]
//       Print a synthetic weather trace as CSV (pipe to a file, feed back
//       with `season --trace`).
//
//   zerodeg season    [--seed N] [--end YYYY-MM-DD] [--trace FILE]
//                     [--export DIR] [--jobs N] [--checkpoint FILE] [--resume]
//                     [--collector-retries N] [--collector-buffer BYTES]
//                     [--workload archive|traffic] [--clone]
//       Run the paper's experiment season; print the census; optionally
//       export figure CSVs (written in parallel with --jobs > 1).  With
//       --checkpoint the finished census is journaled; --resume replays it
//       without re-simulating.  --workload traffic swaps the archival churn
//       for the request-serving workload (utilization -> heat -> hazard);
//       --clone duplicates each request across the tent/basement split.
//
//   zerodeg census    [--seeds N] [--jobs N] [--checkpoint FILE] [--resume]
//                     [--inject-faults SEED] [--torture] [--synthetic]
//                     [--workload archive|traffic] [--end YYYY-MM-DD]
//       Monte Carlo fault census over N seeds, sharded across N worker
//       threads (--jobs 0 = one per hardware thread).  Output is
//       byte-identical for every --jobs value — including a --resume run
//       that reuses cells from a killed campaign's checkpoint journal.
//       --inject-faults routes the journal through a deterministic faulty
//       filesystem; --torture crashes the campaign at every journal write
//       point and proves each resume byte-identical (needs --checkpoint).
//
//   zerodeg sweep     --coordinator --socket PATH --checkpoint FILE
//                     [--seeds N] [--resume] [--idle-timeout-ms N]
//                     [--spawn-workers N] [...]
//   zerodeg sweep     --worker [I/K] --socket PATH --checkpoint FILE
//                     [--seeds N] [--jobs N] [--net-faults SEED] [...]
//       Distributed census: the coordinator listens on a unix socket,
//       grants pull-based leases over cell ranges, and journals cells
//       streamed by worker processes into the merged --checkpoint.  A bare
//       --worker runs in lease mode: it asks for work, simulates granted
//       cells into its own local --checkpoint (durable before any
//       networking), streams checksummed CELL frames, and resends until
//       acked.  `--worker I/K` is the compatibility spelling: the static
//       `index % K == I` shard is pre-simulated durably first, then the
//       worker follows the same lease flow (offline it degrades to
//       buffering the shard locally).  Delivery is at-least-once with
//       dedupe by cell index, and a dead worker's lease is reassigned to
//       survivors, so the merged journal — and the census the coordinator
//       prints — is byte-identical to a local `zerodeg census` run no
//       matter which process died when, as long as one worker survives.
//       A cell that kills every worker that touches it is quarantined as
//       poison and reported loudly (coordinator exits 1).
//       --spawn-workers N launches N local lease-mode workers as child
//       processes sharing the campaign flags and waits for them.
//       --net-faults injects a deterministic seed-scheduled fault plan
//       (drops, duplicates, reorders, dropped acks) into the worker's link.
//       --synthetic swaps real seasons for fast deterministic cells.
//
//   zerodeg prototype [--seed N]
//       The Feb 12-15 prototype weekend.
//
//   zerodeg help | --help
//       The synopsis plus the --resume corrupt-journal exit-code contract.
//
// Exit codes: 0 success, 1 runtime failure (I/O, corrupt input, ...),
// 2 usage error (unknown subcommand/flag, malformed value).
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/io.hpp"
#include "core/transport.hpp"
#include "experiment/census.hpp"
#include "experiment/distributed.hpp"
#include "experiment/figures.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/prototype.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"
#include "weather/trace_io.hpp"

namespace {

using namespace zerodeg;

using FlagMap = std::map<std::string, std::string>;

/// Flags that take no value.
const std::set<std::string> kBooleanFlags = {"full-year", "resume",      "torture",
                                             "clone",     "coordinator", "synthetic"};

/// Flags each subcommand accepts; anything else is a usage error.
const std::map<std::string, std::set<std::string>> kAllowedFlags = {
    {"weather", {"seed", "full-year", "from", "to", "step-min"}},
    {"season",
     {"seed", "end", "trace", "export", "jobs", "checkpoint", "resume", "collector-retries",
      "collector-buffer", "inject-faults", "workload", "clone"}},
    {"census",
     {"seeds", "jobs", "checkpoint", "resume", "inject-faults", "torture", "engine", "workload",
      "end", "synthetic"}},
    {"sweep",
     {"coordinator", "worker", "socket", "checkpoint", "seeds", "jobs", "engine", "workload",
      "end", "resume", "net-faults", "synthetic", "idle-timeout-ms", "spawn-workers"}},
    {"prototype", {"seed"}},
};

/// --key [value] arguments into a map; throws InvalidArgument on malformed
/// input or a flag the subcommand does not know.
FlagMap parse_flags(const std::string& cmd, int argc, char** argv, int first) {
    const std::set<std::string>& allowed = kAllowedFlags.at(cmd);
    FlagMap flags;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            throw core::InvalidArgument("unexpected argument '" + arg + "' (flags start with --)");
        }
        const std::string key = arg.substr(2);
        if (!allowed.contains(key)) {
            throw core::InvalidArgument("--" + key + " is not a flag of 'zerodeg " + cmd + "'");
        }
        if (kBooleanFlags.contains(key)) {
            // insert_or_assign instead of operator[]=: gcc 12's -Wrestrict
            // false-positives on the inlined char* assignment.
            flags.insert_or_assign(key, std::string("1"));
            continue;
        }
        // --worker's value is optional: bare `--worker` is lease mode, the
        // I/K value is the static-shard compatibility spelling.
        if (key == "worker" &&
            (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
            flags.insert_or_assign(key, std::string());
            continue;
        }
        if (i + 1 >= argc) {
            throw core::InvalidArgument("missing value for --" + key);
        }
        flags.insert_or_assign(key, std::string(argv[++i]));
    }
    if (flags.contains("clone") &&
        (!flags.contains("workload") || flags.at("workload") != "traffic")) {
        throw core::InvalidArgument("--clone needs --workload traffic");
    }
    if (flags.contains("resume") && !flags.contains("checkpoint")) {
        throw core::InvalidArgument("--resume needs --checkpoint <file> to resume from");
    }
    if (flags.contains("torture")) {
        if (!flags.contains("checkpoint")) {
            throw core::InvalidArgument("--torture needs --checkpoint <file> as scratch");
        }
        if (flags.contains("resume")) {
            throw core::InvalidArgument(
                "--torture and --resume are exclusive (torture manages the journal itself)");
        }
        if (flags.contains("inject-faults")) {
            throw core::InvalidArgument(
                "--torture and --inject-faults are exclusive (torture schedules its own faults)");
        }
    }
    return flags;
}

/// When --inject-faults SEED is given, build the FaultyFs the durable
/// writers go through; returns nullptr (real filesystem) otherwise.
std::unique_ptr<core::FaultyFs> make_fault_fs(const FlagMap& flags) {
    if (!flags.count("inject-faults")) return nullptr;
    core::FaultPlan plan;
    plan.seed = [&flags] {
        try {
            return core::parse_csv_u64(flags.at("inject-faults"));
        } catch (const core::Error&) {
            throw core::InvalidArgument("--inject-faults wants a nonnegative integer seed, got '" +
                                        flags.at("inject-faults") + "'");
        }
    }();
    plan.write_fault_rate = 0.15;
    plan.rename_fault_rate = 0.05;
    return std::make_unique<core::FaultyFs>(plan);
}

/// The post-run one-liner for --inject-faults: what was thrown at the
/// writers and how many bounded retries absorbed it.
void print_fault_stats(const core::FaultyFs& faulty, int retries) {
    std::cout << "fault injection: " << faulty.fault_trace().size() << " fault(s) over "
              << faulty.op_count() << " io ops; " << retries << " transient retr"
              << (retries == 1 ? "y" : "ies") << " absorbed\n";
}

/// Strict nonnegative-integer flag ("--jobs -3" and "--seeds x" both die
/// with a diagnostic naming the flag, not a stoi backtrace).
std::uint64_t flag_u64(const FlagMap& flags, const std::string& name, std::uint64_t fallback) {
    const auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    try {
        return core::parse_csv_u64(it->second);
    } catch (const core::Error&) {
        throw core::InvalidArgument("--" + name + " wants a nonnegative integer, got '" +
                                    it->second + "'");
    }
}

/// --jobs value: 0 = one worker per hardware thread; absent = serial.
std::size_t parse_jobs(const FlagMap& flags) {
    const std::uint64_t v = flag_u64(flags, "jobs", 1);
    return v == 0 ? core::TaskPool::hardware_workers() : static_cast<std::size_t>(v);
}

/// --workload value: which workload drives the season's fleet.
experiment::WorkloadKind parse_workload(const FlagMap& flags) {
    const auto it = flags.find("workload");
    if (it == flags.end()) return experiment::WorkloadKind::kArchive;
    if (it->second == "archive") return experiment::WorkloadKind::kArchive;
    if (it->second == "traffic") return experiment::WorkloadKind::kTraffic;
    throw core::InvalidArgument("--workload must be 'traffic' or 'archive', got '" + it->second +
                                "'");
}

core::TimePoint parse_date(const std::string& s) {
    int y = 0, m = 0, d = 0;
    if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
        throw core::InvalidArgument("bad date (want YYYY-MM-DD): " + s);
    }
    return core::TimePoint::from_date(y, m, d);
}

int cmd_weather(const FlagMap& flags) {
    const std::uint64_t seed = flag_u64(flags, "seed", 20100219ULL);
    const bool full_year = flags.count("full-year") > 0;
    weather::WeatherConfig cfg =
        full_year ? weather::helsinki_full_year_config() : weather::helsinki_2010_config();
    const core::TimePoint from = flags.count("from")
                                     ? parse_date(flags.at("from"))
                                     : core::TimePoint::from_date(2010, 2, 12);
    const core::TimePoint to = flags.count("to") ? parse_date(flags.at("to"))
                                                 : core::TimePoint::from_date(2010, 3, 27);
    const std::uint64_t step_min = flag_u64(flags, "step-min", 10);
    if (step_min == 0) throw core::InvalidArgument("--step-min must be positive");
    weather::WeatherModel model(cfg, seed);
    const auto trace =
        weather::generate_trace(model, from, to, core::Duration::minutes(step_min));
    weather::write_trace(std::cout, trace);
    return 0;
}

void print_census(const experiment::FaultCensus& c) {
    std::cout << "hosts: " << c.tent_hosts << " tent / " << c.basement_hosts << " basement\n"
              << "system failures: " << c.system_failures << " (" << c.transient_failures
              << " transient, " << c.permanent_failures << " permanent)\n"
              << "hosts failed: " << c.tent_hosts_failed << " tent, "
              << c.basement_hosts_failed << " basement  (fleet rate "
              << experiment::fmt_pct(c.fleet_failure_rate()) << ", paper 5.6%, Intel 4.46%)\n"
              << "sensor incidents: " << c.sensor_incidents
              << ", switch failures: " << c.switch_failures
              << ", fan faults: " << c.fan_faults << ", disk faults: " << c.disk_faults << '\n'
              << "load runs: " << c.load_runs << ", wrong hashes: " << c.wrong_hashes
              << " (tent " << c.wrong_hashes_tent << " / basement " << c.wrong_hashes_basement
              << ")\n";
    if (c.wrong_hashes > 0) {
        std::cout << "page ops per corruption: "
                  << experiment::fmt(1.0 / c.page_fault_ratio() / 1e6, 0)
                  << " million (paper: ~570 million)\n";
    }
    // Traffic lines appear only for traffic seasons, keeping archive output
    // byte-identical to earlier releases.
    if (c.requests_completed + c.requests_dropped > 0) {
        std::cout << "requests: " << c.requests_completed << " completed, " << c.requests_dropped
                  << " dropped, deadline misses " << c.deadline_misses << " ("
                  << experiment::fmt_pct(c.deadline_miss_fraction()) << ")\n"
                  << "p99 sojourn: "
                  << experiment::fmt(static_cast<double>(c.p99_sojourn_us) / 1e6, 2) << " s\n";
    }
}

int cmd_season(const FlagMap& flags) {
    experiment::ExperimentConfig cfg;
    cfg.master_seed = flag_u64(flags, "seed", cfg.master_seed);
    if (flags.count("end")) cfg.end = parse_date(flags.at("end"));
    if (flags.count("trace")) {
        std::ifstream in(flags.at("trace"));
        if (!in) {
            throw core::IoError("cannot open trace file '" + flags.at("trace") + "'");
        }
        cfg.weather_trace = core::with_context("reading --trace " + flags.at("trace"),
                                               [&in] { return weather::read_trace(in); });
    }
    const std::uint64_t retries = flag_u64(flags, "collector-retries", 1);
    if (retries == 0) throw core::InvalidArgument("--collector-retries must be >= 1");
    cfg.collector_retry.max_attempts = static_cast<int>(retries);
    cfg.collector_retry.buffer_capacity_bytes = flag_u64(flags, "collector-buffer", 0);
    cfg.workload = parse_workload(flags);
    cfg.traffic.clone_across_split = flags.count("clone") > 0;
    experiment::validate(cfg);

    // With --checkpoint the season runs as a 1-cell campaign whose journal
    // binds this exact config; --resume replays the recorded census without
    // re-simulating (the envelope/export need a live run and are skipped).
    experiment::CensusPlan plan;
    plan.base_seed = cfg.master_seed;
    plan.seeds = 1;
    plan.make_config = [&cfg](std::size_t, std::uint64_t) { return cfg; };
    const experiment::ParallelCensus campaign(plan, 1);
    const std::unique_ptr<core::FaultyFs> faulty = make_fault_fs(flags);
    std::unique_ptr<experiment::SweepJournal> journal;
    if (flags.count("checkpoint")) {
        journal = std::make_unique<experiment::SweepJournal>(
            flags.at("checkpoint"), campaign.journal_key(), flags.count("resume") > 0,
            faulty.get());
    }

    std::cout << "season " << cfg.start.date_string() << " .. " << cfg.end.date_string()
              << " (seed " << cfg.master_seed
              << (cfg.weather_trace.empty() ? ", synthetic weather" : ", trace-driven")
              << (cfg.workload == experiment::WorkloadKind::kTraffic
                      ? (cfg.traffic.clone_across_split ? ", traffic workload, cloned"
                                                        : ", traffic workload")
                      : "")
              << ")\n";

    if (journal && journal->complete()) {
        std::cout << "checkpoint " << flags.at("checkpoint")
                  << " is complete; replaying the recorded census\n";
        print_census(*journal->find(0));
        std::cout << "(envelope stats and --export need a live run; delete the checkpoint to "
                     "re-simulate)\n";
        return 0;
    }

    experiment::ExperimentRunner run(cfg);
    run.run();
    const experiment::FaultCensus census = experiment::take_census(run);
    if (journal) journal->record(0, census);

    print_census(census);
    if (run.has_traffic()) {
        std::cout << "traffic: mean utilization "
                  << experiment::fmt_pct(run.traffic().mean_utilization()) << ", mean sojourn "
                  << experiment::fmt(run.traffic().slo().mean_sojourn_seconds(), 2)
                  << " s, clones cancelled " << run.traffic().clones_cancelled() << "\n";
    }
    std::cout << "tent envelope: "
              << experiment::fmt_pct(run.tent_envelope().fraction_within())
              << " of the season inside ASHRAE-allowable\n";

    if (flags.count("export")) {
        std::filesystem::create_directories(flags.at("export"));
        const auto written = experiment::export_figure_data(
            run, flags.at("export"), experiment::FigureFiles(), parse_jobs(flags),
            faulty.get());
        std::cout << "exported " << written.size() << " files to " << flags.at("export")
                  << '\n';
    }
    if (faulty) print_fault_stats(*faulty, journal ? journal->io_retries() : 0);
    return 0;
}

/// The campaign axes `census` and `sweep` share: --seeds, --engine,
/// --workload, --end (plus sweep's --synthetic fast cells).  Both commands
/// building the plan the same way is what gives the coordinator's merged
/// journal the same campaign key a local census would use, so checkpoints
/// move freely between local and distributed runs.
experiment::CensusPlan census_plan_from_flags(const FlagMap& flags) {
    const std::uint64_t seeds = flag_u64(flags, "seeds", 10);
    if (seeds == 0) throw core::InvalidArgument("--seeds must be positive");
    experiment::CensusPlan plan;
    plan.seeds = static_cast<std::size_t>(seeds);
    // --engine selects the host-loop implementation; both produce
    // byte-identical output (the per-object path is the differential
    // reference), and the choice is invisible to checkpoint journals.
    // --workload/--end reshape every cell's season the same way.
    std::optional<experiment::TickEngine> engine;
    if (flags.count("engine")) {
        const std::string& v = flags.at("engine");
        if (v == "batched") {
            engine = experiment::TickEngine::kBatched;
        } else if (v == "per-object") {
            engine = experiment::TickEngine::kPerObject;
        } else {
            throw core::InvalidArgument("--engine must be 'batched' or 'per-object'");
        }
    }
    const experiment::WorkloadKind workload = parse_workload(flags);
    std::optional<core::TimePoint> end;
    if (flags.count("end")) end = parse_date(flags.at("end"));
    if (engine || workload != experiment::WorkloadKind::kArchive || end) {
        plan.make_config = [engine, workload, end](std::size_t, std::uint64_t seed) {
            experiment::ExperimentConfig config;
            config.master_seed = seed;
            if (engine) config.engine = *engine;
            config.workload = workload;
            if (end) config.end = *end;
            return config;
        };
    }
    // Fast deterministic cells for smoke runs; the journal's config hash
    // cannot see a run_cell override, so never mix --synthetic and real
    // checkpoints (same contract as CensusPlan::run_cell documents).
    if (flags.count("synthetic")) plan.run_cell = experiment::synthetic_census;
    return plan;
}

int cmd_census(const FlagMap& flags) {
    const experiment::CensusPlan plan = census_plan_from_flags(flags);
    const std::size_t jobs = parse_jobs(flags);

    if (flags.count("torture")) {
        // Crash the campaign at every journal write point, resume each
        // time, and require the resumed tables byte-identical to an
        // uninterrupted run.  Exit 0 only when every crash point passes.
        experiment::TortureOptions options;
        options.jobs = jobs;
        const experiment::TortureReport report = experiment::torture_campaign(
            plan, jobs, flags.at("checkpoint"), options, std::cerr);
        std::cout << "torture: " << report.io_ops << " write points, " << report.crash_points
                  << " crash points, " << report.resumes << " resumes ("
                  << report.tail_repairs << " torn-tail repairs, " << report.journal_resets
                  << " journal resets), " << report.mismatches << " mismatches -> "
                  << (report.passed() ? "PASS" : "FAIL") << '\n';
        return report.passed() ? 0 : 1;
    }

    const experiment::ParallelCensus campaign(plan, jobs);
    const std::unique_ptr<core::FaultyFs> faulty = make_fault_fs(flags);
    experiment::CensusResult result;
    int io_retries = 0;
    if (flags.count("checkpoint")) {
        experiment::SweepJournal journal(flags.at("checkpoint"), campaign.journal_key(),
                                         flags.count("resume") > 0, faulty.get());
        if (journal.recovered_tail_records() > 0) {
            std::cout << "checkpoint repair: dropped " << journal.recovered_tail_records()
                      << " torn tail record(s); those cells will be re-simulated\n";
        }
        if (journal.completed() > 0) {
            std::cout << "resuming: " << journal.completed() << "/" << plan.seeds
                      << " cells from " << flags.at("checkpoint") << '\n';
        }
        result = campaign.run(journal);
        io_retries = journal.io_retries();
    } else {
        result = campaign.run();
    }

    std::cout << experiment::render_census_table(result, plan.base_seed);
    if (faulty) print_fault_stats(*faulty, io_retries);
    return 0;
}

/// Bare "--worker" -> lease mode (ShardSpec{0, 0}); "--worker I/K" ->
/// the static shard ShardSpec{I, K}.  Validated here so a bad spec is a
/// usage error (exit 2), not a runtime failure.
experiment::ShardSpec parse_shard(const std::string& value) {
    if (value.empty()) return experiment::ShardSpec{0, 0};
    const std::size_t slash = value.find('/');
    if (slash == std::string::npos) {
        throw core::InvalidArgument("--worker wants I/K (e.g. 0/2) or no value for lease mode, "
                                    "got '" + value + "'");
    }
    experiment::ShardSpec spec;
    try {
        spec.shard = static_cast<std::size_t>(core::parse_csv_u64(value.substr(0, slash)));
        spec.of = static_cast<std::size_t>(core::parse_csv_u64(value.substr(slash + 1)));
    } catch (const core::Error&) {
        throw core::InvalidArgument("--worker wants I/K (e.g. 0/2), got '" + value + "'");
    }
    if (spec.of == 0 || spec.shard >= spec.of) {
        throw core::InvalidArgument("--worker " + value + " is not a valid shard (need I < K)");
    }
    return spec;
}

/// The argv for one spawned lease-mode worker: the campaign flags are
/// forwarded verbatim so its journal key matches the coordinator's.
std::vector<std::string> spawned_worker_argv(const FlagMap& flags, std::size_t index) {
    std::vector<std::string> argv = {"/proc/self/exe", "sweep", "--worker", "--socket",
                                     flags.at("socket"), "--checkpoint",
                                     flags.at("checkpoint") + ".worker" + std::to_string(index)};
    for (const char* forwarded :
         {"seeds", "jobs", "engine", "workload", "end", "net-faults"}) {
        const auto it = flags.find(forwarded);
        if (it == flags.end()) continue;
        argv.push_back("--" + it->first);
        argv.push_back(it->second);
    }
    if (flags.count("synthetic")) argv.push_back("--synthetic");
    return argv;
}

int cmd_sweep_coordinator(const FlagMap& flags, const experiment::CensusPlan& plan) {
    experiment::CoordinatorOptions opts;
    opts.resume = flags.count("resume") > 0;
    // --idle-timeout-ms bounds how long the coordinator waits while hearing
    // nothing at all — no fresh link, no valid frame (serve polls every ~1ms
    // when idle; any valid frame, heartbeats included, resets the budget).
    // 0 = wait until the campaign resolves or every worker is silent.
    const std::uint64_t idle_ms = flag_u64(flags, "idle-timeout-ms", 0);
    opts.idle_give_up_polls = static_cast<int>(idle_ms);
    // Lease chatter (grants, expiries, quarantines, progress/ETA) goes to
    // stderr so stdout stays the byte-stable census surface.
    opts.log = [](const std::string& line) { std::cerr << line << '\n'; };
    experiment::CoordinatorService service(plan, flags.at("checkpoint"), opts);

    const std::unique_ptr<core::Listener> listener = core::listen_unix(flags.at("socket"));
    std::cout << "coordinator: campaign of " << plan.seeds << " cells on " << flags.at("socket")
              << " (" << service.merged() << " already merged)\n";

    // --spawn-workers: launch N local lease-mode workers (via the transport
    // seam's process spawner) once the socket is listening, serve them, then
    // reap.  Each gets its own local journal next to the merged one.
    std::vector<core::SpawnedProcess> children;
    if (flags.count("spawn-workers")) {
        const std::uint64_t n = flag_u64(flags, "spawn-workers", 0);
        if (n == 0) throw core::InvalidArgument("--spawn-workers must be positive");
        for (std::uint64_t i = 0; i < n; ++i) {
            children.push_back(core::spawn_process(spawned_worker_argv(flags, i)));
        }
        std::cerr << "coordinator: spawned " << n << " local worker(s)\n";
    }

    const experiment::CoordinatorReport report = service.serve(*listener);

    int worker_failures = 0;
    for (core::SpawnedProcess& child : children) {
        if (core::wait_process(child) != 0) ++worker_failures;
    }
    if (worker_failures > 0) {
        std::cerr << "coordinator: " << worker_failures << " spawned worker(s) exited with "
                     "a failure\n";
    }

    std::cout << "coordinator: " << report.frames << " frames from " << report.links_accepted
              << " worker link(s); " << report.cells_recorded << " cells recorded, "
              << report.duplicates << " duplicate(s) deduped, " << report.acks_sent
              << " acks\n";
    if (report.leases_granted > 0) {
        std::cout << "coordinator: " << report.leases_granted << " lease(s) granted, "
                  << report.leases_expired << " expired/reassigned\n";
    }
    if (report.quarantined > 0) {
        std::cout << "POISON: " << report.quarantined << " cell(s) quarantined — every lease "
                     "over them died under " << experiment::kMaxLeaseAttempts
                  << " distinct workers; the campaign resolved but the census has holes\n";
        return 1;
    }
    if (!report.completed) {
        std::cout << "campaign incomplete: " << plan.seeds - service.merged()
                  << " cell(s) never arrived (workers still hold them in their local "
                     "journals)\n";
        return 1;
    }
    std::cout << experiment::render_census_table(service.result(), plan.base_seed);
    return worker_failures > 0 ? 1 : 0;
}

int cmd_sweep_worker(const FlagMap& flags, const experiment::CensusPlan& plan) {
    const experiment::ShardSpec spec = parse_shard(flags.at("worker"));
    const std::string socket = flags.at("socket");

    // Bounded connect-wait: the coordinator may not be listening yet (shell
    // scripts start both concurrently).  ~5s of 50ms retries, then nullptr —
    // run_worker degrades to local-journal-only mode, never fails the cells.
    const auto dial = [socket]() -> std::unique_ptr<core::Transport> {
        for (int attempt = 0; attempt < 100; ++attempt) {
            try {
                return core::connect_unix(socket);
            } catch (const core::TransportClosed&) {
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
        }
        return nullptr;
    };

    experiment::WorkerOptions opts;
    opts.jobs = parse_jobs(flags);
    opts.resume = true;  // local cells are always worth reusing
    opts.reconnect = dial;
    opts.log = [](const std::string& line) { std::cerr << line << '\n'; };

    std::unique_ptr<core::Transport> link = dial();
    if (link && flags.count("net-faults")) {
        // A deterministic lossy link: same seed, same fault schedule.  The
        // resend/ack/dedupe machinery must make it invisible in the output.
        core::TransportFaultPlan faults;
        faults.seed = flag_u64(flags, "net-faults", 1);
        faults.drop_rate = 0.1;
        faults.dup_rate = 0.1;
        faults.reorder_rate = 0.05;
        faults.ack_drop_rate = 0.05;
        link = std::make_unique<core::FaultyTransport>(
            faults, "worker." + std::to_string(spec.shard), std::move(link));
        opts.retry.max_attempts = 8;  // lossy link: a deeper resend budget
    }

    const experiment::WorkerReport report =
        run_worker(plan, spec, flags.at("checkpoint"), std::move(link), opts);
    if (report.of == 0) {
        std::cout << "worker (lease mode): " << report.leases_held << " lease(s) held, "
                  << report.cells_computed << " simulated, " << report.cells_reused
                  << " reused, " << report.acked << " acked";
    } else {
        std::cout << "worker " << report.shard << "/" << report.of << ": " << report.cells_owned
                  << " cells owned, " << report.cells_computed << " simulated, "
                  << report.cells_reused << " reused, " << report.acked << " acked";
    }
    if (report.resends + report.drops_absorbed > 0) {
        std::cout << " (" << report.drops_absorbed << " drop(s), " << report.resends
                  << " resend(s))";
    }
    std::cout << '\n';
    if (report.degraded) {
        std::cout << "worker " << report.shard << "/" << report.of
                  << ": degraded — coordinator unreachable; " << report.buffered
                  << " cell(s) buffered in " << flags.at("checkpoint")
                  << " (re-run to stream them)\n";
    }
    return 0;
}

int cmd_sweep(const FlagMap& flags) {
    const bool coordinator = flags.count("coordinator") > 0;
    const bool worker = flags.count("worker") > 0;
    if (coordinator == worker) {
        throw core::InvalidArgument(
            "zerodeg sweep needs exactly one of --coordinator or --worker [I/K]");
    }
    if (flags.count("spawn-workers") && !coordinator) {
        throw core::InvalidArgument("--spawn-workers belongs to the --coordinator side");
    }
    if (!flags.count("socket")) {
        throw core::InvalidArgument("zerodeg sweep needs --socket PATH (a unix socket)");
    }
    if (!flags.count("checkpoint")) {
        throw core::InvalidArgument(
            "zerodeg sweep needs --checkpoint FILE (merged journal for the coordinator, "
            "local journal for a worker)");
    }
    const experiment::CensusPlan plan = census_plan_from_flags(flags);
    return coordinator ? cmd_sweep_coordinator(flags, plan) : cmd_sweep_worker(flags, plan);
}

int cmd_prototype(const FlagMap& flags) {
    experiment::PrototypeConfig cfg;
    cfg.master_seed = flag_u64(flags, "seed", cfg.master_seed);
    const auto r = experiment::run_prototype(cfg);
    std::cout << "prototype weekend " << cfg.start.date_string() << " .. "
              << cfg.end.date_string() << '\n'
              << "outside min/mean: " << experiment::fmt(r.outside_min.value(), 1) << " / "
              << experiment::fmt(r.outside_mean.value(), 1)
              << " degC (paper: -10.2 / -9.2)\n"
              << "coldest CPU reading: " << experiment::fmt(r.cpu_min_reported.value(), 1)
              << " degC (paper: -4)\n"
              << "survived: " << (r.survived ? "yes" : "NO")
              << ", SMART clean: " << (r.smart_ok ? "yes" : "NO") << '\n';
    return 0;
}

void synopsis(std::ostream& out) {
    out << "usage: zerodeg <weather|season|census|sweep|prototype|help> [--flags]\n"
           "  weather   [--seed N] [--full-year] [--from D] [--to D] [--step-min M]\n"
           "  season    [--seed N] [--end D] [--trace FILE] [--export DIR] [--jobs N]\n"
           "            [--checkpoint FILE] [--resume] [--collector-retries N]\n"
           "            [--collector-buffer BYTES] [--inject-faults SEED]\n"
           "            [--workload archive|traffic] [--clone]\n"
           "  census    [--seeds N] [--jobs N] [--checkpoint FILE] [--resume]\n"
           "            [--inject-faults SEED] [--torture] [--engine batched|per-object]\n"
           "            [--workload archive|traffic] [--end D] [--synthetic]\n"
           "            (--jobs 0 = all hardware threads; engines are byte-identical,\n"
           "             per-object is the differential-test reference)\n"
           "  sweep     --coordinator --socket PATH --checkpoint FILE [--seeds N]\n"
           "            [--resume] [--idle-timeout-ms N] [--spawn-workers N]\n"
           "  sweep     --worker [I/K] --socket PATH --checkpoint FILE [--seeds N]\n"
           "            [--jobs N] [--net-faults SEED]\n"
           "            (bare --worker pulls leases; I/K is the static-shard\n"
           "             compatibility spelling)\n"
           "            (both sweep modes: [--engine batched|per-object]\n"
           "             [--workload archive|traffic] [--end D] [--synthetic])\n"
           "  prototype [--seed N]\n"
           "exit codes: 0 ok, 1 runtime failure, 2 usage error\n";
}

int usage() {
    synopsis(std::cerr);
    return 2;
}

int cmd_help() {
    synopsis(std::cout);
    std::cout
        << "\nfault injection and torture:\n"
           "  --inject-faults SEED  route the checkpoint journal (and season exports)\n"
           "                        through a deterministic faulty filesystem: short\n"
           "                        writes, ENOSPC, failed fsync/rename.  The bounded\n"
           "                        tmp+rename retries absorb them; a stats line\n"
           "                        reports what was thrown and absorbed.\n"
           "  --torture             (census) crash the campaign at every journal write\n"
           "                        point, resume each time, and require output\n"
           "                        byte-identical to an uninterrupted run.  Needs\n"
           "                        --checkpoint as scratch; exit 1 on any mismatch.\n"
           "\ndistributed sweeps (zerodeg sweep):\n"
           "  Start one --coordinator and N bare --worker processes sharing a unix\n"
           "  --socket (or let the coordinator --spawn-workers N itself).  Workers\n"
           "  pull leases: the coordinator grants cell ranges, workers simulate\n"
           "  them into their own local journal first (durable before any\n"
           "  networking), then stream checksummed cell frames; the coordinator\n"
           "  journals, acks, and dedupes replays, so the merged --checkpoint is\n"
           "  byte-identical to a local census run no matter which process died\n"
           "  when — a dead worker's lease is reassigned to the survivors\n"
           "  (liveness is counted in protocol ops, never wall clocks).  A cell\n"
           "  that kills every worker that touches it is quarantined as poison\n"
           "  and the coordinator exits 1, loudly.  `--worker I/K` keeps the old\n"
           "  static shard: it is pre-simulated durably, then the worker joins\n"
           "  the same lease flow; offline it degrades to local buffering and a\n"
           "  re-run streams the buffered cells without re-simulating.\n"
           "  --net-faults SEED makes the worker's link deterministically lossy\n"
           "  (drops, duplicates, reorders, dropped acks) — the output must not\n"
           "  change.\n"
           "\nresuming from a damaged checkpoint (--resume):\n"
           "  exit 0  a torn tail record (crash mid-append) is dropped with a warning\n"
           "          on stderr, truncated away on disk, and its cell re-simulated;\n"
           "          everything before it is reused.\n"
           "  exit 1  any other damage -- bad magic, truncated header, corruption\n"
           "          before the last record, or a journal written by a different\n"
           "          sweep/binary (stale fingerprint).  The journal is left as-is;\n"
           "          delete it to start over.\n"
           "  exit 2  usage errors (e.g. --resume without --checkpoint).\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return cmd_help();
    if (!kAllowedFlags.contains(cmd)) {
        std::cerr << "error: unknown subcommand '" << cmd << "'\n";
        return usage();
    }
    try {
        const FlagMap flags = parse_flags(cmd, argc, argv, 2);
        if (cmd == "weather") return cmd_weather(flags);
        if (cmd == "season") return cmd_season(flags);
        if (cmd == "census") return cmd_census(flags);
        if (cmd == "sweep") return cmd_sweep(flags);
        return cmd_prototype(flags);
    } catch (const core::InvalidArgument& e) {
        // Usage errors print one line + the synopsis and exit 2.
        std::cerr << "error: " << e.what() << '\n';
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
