#!/usr/bin/env bash
# One-command verification gate for the zerodeg tree.
#
# Runs, in order:
#   1. hardened build (-DZERODEG_WERROR=ON: -Wconversion -Wshadow ... -Werror)
#      + the full ctest suite, which includes the `lint` label
#      (tools/zerodeg_lint over the tree + the checker's own unit tests)
#   2. the whole-project analyzer in the WERROR tree: include-graph layering
#      (ZD015), RNG-stream collisions (ZD016), ErrorCode discards (ZD017),
#      float reductions (ZD018), stale suppressions (ZD097) — JSON findings
#      for a stable diffable failure summary, and build/include_graph.dot
#      left behind as a reviewable artifact
#   3. the `parallel` label rebuilt under ThreadSanitizer — the data-race
#      gate for the task-pool / sharded-sweep engine
#   4. the `resilience` + `chaos` labels rebuilt under ASan+UBSan — the gate
#      for the journal/retry/error paths and the fault-injection/torture
#      machinery (crash-at-every-write-point resume, watchdog cancellation,
#      transport-fault and cross-process distributed-sweep torture) — plus
#      cross-process smokes: coordinator + 2 workers over a unix socket with
#      a seeded FaultyTransport, merged journal byte-compared lossless/lossy,
#      and a lease-mode campaign where one worker is SIGKILLed permanently
#      and the survivor must absorb its lease byte-identically
#   5. a compose smoke: sanitizers + -Werror configured together must build
#      (sanitizer instrumentation must not be broken by the warning gate)
#   6. clang-tidy over the exported compile database, when clang-tidy exists
#   7. the perf gate: bench_perf_tick in a Release tree (build-bench/) with
#      fixed seeds/repeats, compared against BENCH_baseline.json by
#      scripts/compare_bench.py — any metric >25% below baseline fails; a
#      missing baseline is recorded on the first run
#
# This is the sanitizer matrix PRs 1-2 documented as manual steps, made
# executable.  Every build tree is separate (build/, build-tsan/, build-asan/,
# build-asan-werror/, build-bench/) so switching configurations never causes a full rebuild
# of another.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
run() { echo "+ $*" >&2; "$@"; }

echo "=== [1/7] hardened warnings + full test suite ===" >&2
run cmake -B build -S . -DZERODEG_WERROR=ON
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/7] whole-project analyzer (layering / streams / discards) ===" >&2
run ./build/tools/zerodeg_lint --project --root . \
    --baseline tools/lint/baseline.txt \
    --graph-dot build/include_graph.dot \
    --format=json --error-on-new
echo "project analyzer: build/include_graph.dot written (render with: dot -Tsvg)" >&2

echo "=== [3/7] parallel label under ThreadSanitizer ===" >&2
run cmake -B build-tsan -S . -DZERODEG_SANITIZE=thread
run cmake --build build-tsan -j "$JOBS"
run ctest --test-dir build-tsan -L parallel --output-on-failure -j "$JOBS"

echo "=== [4/7] resilience + chaos labels under ASan+UBSan ===" >&2
run cmake -B build-asan -S . -DZERODEG_SANITIZE=address,undefined
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan -L 'resilience|chaos' --output-on-failure -j "$JOBS"

# Distributed-torture smoke, cross-process: a real coordinator + 2 workers
# (ASan+UBSan instrumented) over a unix socket, both worker links running a
# deterministic FaultyTransport schedule.  The lossy campaign's merged
# journal must be byte-identical to a lossless one.
smoke="$(mktemp -d /tmp/zd_smoke.XXXXXX)"
trap 'rm -rf "$smoke"' EXIT
zd=./build-asan/tools/zerodeg
for mode in lossless lossy; do
    mkdir -p "$smoke/$mode"
    faults=""
    if [ "$mode" = lossy ]; then faults="--net-faults 20100219"; fi
    run "$zd" sweep --coordinator --socket "$smoke/$mode/s.sock" \
        --checkpoint "$smoke/$mode/merged.journal" --seeds 6 --synthetic \
        --idle-timeout-ms 60000 >"$smoke/$mode/coord.log" &
    coord=$!
    for w in 0 1; do
        run "$zd" sweep --worker "$w/2" --socket "$smoke/$mode/s.sock" \
            --checkpoint "$smoke/$mode/w$w.journal" --seeds 6 --synthetic $faults \
            >"$smoke/$mode/w$w.log" &
    done
    wait
    if kill -0 "$coord" 2>/dev/null; then
        echo "distributed smoke: coordinator still running" >&2
        exit 1
    fi
done
run cmp "$smoke/lossless/merged.journal" "$smoke/lossy/merged.journal"
echo "distributed smoke: lossy and lossless campaigns merged byte-identically" >&2

# Kill-a-worker smoke: two lease-mode workers, one SIGKILLed permanently
# mid-campaign.  Whatever the kill lands on (handshake, held lease, or after
# the victim already finished), the coordinator must not wedge: the orphaned
# lease is reassigned to the survivor and the merged journal is still
# byte-identical to the lossless run above.
mkdir -p "$smoke/killed"
run "$zd" sweep --coordinator --socket "$smoke/killed/s.sock" \
    --checkpoint "$smoke/killed/merged.journal" --seeds 6 --synthetic \
    --idle-timeout-ms 60000 >"$smoke/killed/coord.log" &
coord=$!
"$zd" sweep --worker --socket "$smoke/killed/s.sock" \
    --checkpoint "$smoke/killed/victim.journal" --seeds 6 --synthetic \
    >"$smoke/killed/victim.log" 2>&1 &
victim=$!
sleep 0.1
kill -KILL "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
run "$zd" sweep --worker --socket "$smoke/killed/s.sock" \
    --checkpoint "$smoke/killed/survivor.journal" --seeds 6 --synthetic \
    >"$smoke/killed/survivor.log"
wait "$coord"
run cmp "$smoke/lossless/merged.journal" "$smoke/killed/merged.journal"
echo "distributed smoke: campaign survived a SIGKILLed worker byte-identically" >&2

echo "=== [5/7] compose smoke: sanitize + werror together ===" >&2
run cmake -B build-asan-werror -S . -DZERODEG_SANITIZE=address,undefined -DZERODEG_WERROR=ON
run cmake --build build-asan-werror -j "$JOBS" --target zerodeg_core zerodeg_lint

echo "=== [6/7] clang-tidy (optional) ===" >&2
if command -v clang-tidy >/dev/null 2>&1; then
    # compile_commands.json was exported by step 1's configure.
    mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tools/**/*.cpp')
    run clang-tidy -p build --quiet "${sources[@]}"
else
    echo "clang-tidy not installed; skipping (config: .clang-tidy)" >&2
fi

echo "=== [7/7] perf gate: bench_perf_tick vs BENCH_baseline.json ===" >&2
run cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build-bench -j "$JOBS" --target bench_perf_tick
run ./build-bench/bench/bench_perf_tick --seeds 4 --repeat 3 --jobs 1 --out build-bench/BENCH_tick.json
run python3 scripts/compare_bench.py build-bench/BENCH_tick.json BENCH_baseline.json

echo "check.sh: all gates passed" >&2
