#!/usr/bin/env python3
"""Perf gate: compare a fresh BENCH_*.json against the checked-in baseline.

Usage:
    compare_bench.py CURRENT BASELINE [--threshold 0.25] [--update]

Stdlib only.  Rules:
  * BASELINE missing -> copy CURRENT over it, report "recorded", exit 0
    (the first run on a new machine records its own reference point).
  * Any metric in CURRENT below baseline * (1 - threshold) -> regression,
    exit 1.  Metrics are throughputs (bigger is better); metrics present in
    only one file are reported but never fail the gate (schema growth must
    not break old baselines).
  * --update -> overwrite BASELINE with CURRENT after the comparison and
    exit 0 regardless (the explicit "I accept the new numbers" path).

Baselines are machine-local by nature; refresh with --update after hardware
or deliberate perf-relevant changes (see EXPERIMENTS.md, "Performance").
"""

import argparse
import json
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "zerodeg-bench-tick/1":
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"error: {path}: missing or empty 'metrics' object")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", help="checked-in baseline to gate against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional drop per metric (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current run and exit 0",
    )
    args = parser.parse_args()

    current = load(args.current)

    try:
        baseline = load(args.baseline)
    except FileNotFoundError:
        shutil.copyfile(args.current, args.baseline)
        print(f"compare_bench: no baseline at {args.baseline}; recorded current run")
        return 0

    cur = current["metrics"]
    base = baseline["metrics"]
    floor = 1.0 - args.threshold
    regressions = []
    for name in sorted(set(cur) | set(base)):
        if name not in cur:
            print(f"  {name}: only in baseline (ignored)")
            continue
        if name not in base:
            print(f"  {name}: new metric, no baseline (ignored)")
            continue
        c, b = float(cur[name]), float(base[name])
        ratio = c / b if b > 0 else float("inf")
        verdict = "ok"
        if ratio < floor:
            verdict = "REGRESSION"
            regressions.append(name)
        print(f"  {name}: {c:.6g} vs baseline {b:.6g} ({ratio - 1.0:+.1%}) {verdict}")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"compare_bench: baseline {args.baseline} updated")
        return 0

    if regressions:
        print(
            f"compare_bench: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}"
        )
        print("  (refresh deliberately with: compare_bench.py CURRENT BASELINE --update)")
        return 1

    print("compare_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
