// The Section 5 condensation question: can water condense inside a case
// that breathes unconditioned outside air?  Tracks a tent host's case
// surface against the dew point over the season, and stress-tests the
// dangerous scenario the paper identifies — warm humid air arriving over a
// cold-soaked machine.
//
//   ./build/examples/condensation_study
#include <iostream>

#include "experiment/report.hpp"
#include "hardware/server.hpp"
#include "thermal/condensation.hpp"
#include "thermal/enclosure.hpp"
#include "weather/psychrometrics.hpp"
#include "weather/weather_model.hpp"

int main() {
    using namespace zerodeg;
    using core::Celsius;
    using core::Duration;
    using core::RelHumidity;
    using core::TimePoint;

    // --- season sweep: a running machine in the tent -------------------------
    weather::WeatherModel sky(weather::helsinki_2010_config(), 11);
    thermal::TentModel tent;
    tent.apply_modification(thermal::TentMod::kBottomOpened);  // worst case: most outside air
    hardware::Server pc(1, "host-01", hardware::vendor_a_spec(), 11);
    thermal::CondensationAnalyzer analyzer(Celsius{1.0});

    const TimePoint start = TimePoint::from_date(2010, 2, 19);
    const TimePoint end = TimePoint::from_date(2010, 5, 1);
    const Duration tick = Duration::minutes(10);
    pc.power_on(Celsius{-5.0});
    pc.set_cpu_load(0.3);

    for (TimePoint t = start; t <= end; t += tick) {
        const weather::WeatherSample outside = sky.advance_to(t);
        tent.set_equipment_power(pc.wall_power());
        tent.step(tick, outside);
        pc.step(tick, tent.air().temperature);
        analyzer.observe(t, pc.case_surface_temperature(), tent.air().temperature,
                         tent.air().humidity);
    }
    analyzer.finish(end);

    const auto stats = analyzer.margin_series().stats();
    std::cout << "Running machine, Feb 19 - May 1 (" << analyzer.observations()
              << " observations):\n";
    std::cout << "  dew-point margin (case surface - dew point):\n";
    std::cout << "    min " << experiment::fmt(stats.min) << " degC, mean "
              << experiment::fmt(stats.mean) << " degC\n";
    std::cout << "  condensation events (margin < 1 degC): " << analyzer.events().size() << '\n';
    std::cout << "  actual condensation (margin <= 0):     "
              << (analyzer.condensation_occurred() ? "YES" : "no") << '\n';
    std::cout << "  -> the paper's argument holds: internal dissipation keeps the case\n"
                 "     above the dew point as long as the machine is powered.\n\n";

    // --- the dangerous scenario: cold-soaked, powered-off hardware ----------
    std::cout << "Cold-soaked POWERED-OFF case meeting a warm front:\n";
    const Celsius case_temp{-15.0};  // soaked overnight at -15
    for (const double rh : {60.0, 75.0, 90.0}) {
        for (const double warm : {0.0, 5.0, 10.0}) {
            const Celsius margin = weather::condensation_margin(
                case_temp, Celsius{warm}, RelHumidity{rh});
            std::cout << "  air " << experiment::fmt(warm, 0) << " degC @ "
                      << experiment::fmt(rh, 0) << "% RH vs case -15 degC:  margin "
                      << experiment::fmt(margin.value(), 1) << " degC "
                      << (margin.value() <= 0.0 ? "-> CONDENSES" : "-> safe") << '\n';
        }
    }
    std::cout << "  -> exactly the paper's caveat: condensation requires the outside air\n"
                 "     to suddenly become warmer than the computer cases.\n";
    return 0;
}
