// Quickstart: put one server in a tent on a Helsinki roof in February 2010,
// run it for a week, and see what the cold does to it.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "core/units.hpp"
#include "hardware/server.hpp"
#include "thermal/enclosure.hpp"
#include "weather/weather_model.hpp"

int main() {
    using namespace zerodeg;
    using core::Celsius;
    using core::Duration;
    using core::TimePoint;

    // 1. Synthetic Helsinki winter weather (the SMEAR III stand-in).
    weather::WeatherModel sky(weather::helsinki_2010_config(), /*seed=*/42);

    // 2. A camping tent and one decommissioned desktop inside it.
    thermal::TentModel tent;
    hardware::Server pc(1, "host-01", hardware::vendor_a_spec(), /*seed=*/42);

    const TimePoint start = TimePoint::from_date(2010, 2, 19);
    const TimePoint end = start + Duration::days(7);
    const Duration tick = Duration::minutes(10);

    pc.power_on(Celsius{-5.0});
    pc.set_cpu_load(0.3);

    Celsius coldest_outside{100.0};
    Celsius coldest_cpu{100.0};
    for (TimePoint t = start; t <= end; t += tick) {
        const weather::WeatherSample outside = sky.advance_to(t);
        tent.set_equipment_power(pc.wall_power());
        tent.step(tick, outside);
        pc.step(tick, tent.air().temperature);

        coldest_outside = std::min(coldest_outside, outside.temperature);
        if (const auto cpu = pc.read_cpu_sensor()) {
            coldest_cpu = std::min(coldest_cpu, *cpu);
        }
        if (t.seconds_of_day() == 0) {  // midnight report
            std::cout << t.date_string() << "  outside " << core::to_string(outside.temperature)
                      << "  tent " << core::to_string(tent.air().temperature) << "  tent RH "
                      << core::to_string(tent.air().humidity) << "  CPU "
                      << core::to_string(pc.cpu_temperature()) << '\n';
        }
    }

    std::cout << "\ncoldest outside air:   " << core::to_string(coldest_outside) << '\n';
    std::cout << "coldest CPU reading:   " << core::to_string(coldest_cpu) << '\n';
    std::cout << "machine state:         " << hardware::to_string(pc.state()) << '\n';
    std::cout << "sensor chip:           " << hardware::to_string(pc.sensor_chip().state())
              << '\n';
    return 0;
}
