// Greenfield design study: what would free-air cooling save for a data
// center in this climate?  Reproduces the Section 1 bracket (Intel up to
// 67%, HP about 40%) and the Section 5 PUE arithmetic.
//
//   ./build/examples/economizer_savings
#include <iostream>

#include "energy/economizer.hpp"
#include "energy/pue.hpp"
#include "experiment/report.hpp"
#include "weather/trace_io.hpp"

int main() {
    using namespace zerodeg;
    using core::TimePoint;
    using core::Watts;

    // A year-round Helsinki-like trace (wrap the experiment's season model
    // across the calendar by reusing its anchors; the winter-heavy window
    // Feb-May is exactly when free cooling shines).
    weather::WeatherModel model(weather::helsinki_2010_config(), 7);
    auto trace = weather::generate_trace(model, TimePoint::from_date(2010, 2, 1),
                                         TimePoint::from_date(2010, 5, 31),
                                         core::Duration::minutes(30));

    const Watts it_load = Watts::from_kilowatts(75.0);
    const energy::AirEconomizer economizer;
    const auto summary = energy::compare_cooling(trace, it_load, economizer);

    std::cout << "Free-air cooling study, 75 kW IT load, Helsinki Feb-May 2010\n\n";
    std::cout << "  hours simulated:        " << experiment::fmt(summary.hours, 0) << '\n';
    std::cout << "  free-cooling hours:     " << experiment::fmt(summary.free_cooling_hours, 0)
              << "  (" << experiment::fmt_pct(summary.free_cooling_hours / summary.hours)
              << ")\n";
    std::cout << "  conventional cooling:   "
              << core::to_string(summary.conventional_energy) << '\n';
    std::cout << "  economizer cooling:     " << core::to_string(summary.economizer_energy)
              << '\n';
    std::cout << "  savings:                "
              << experiment::fmt_pct(summary.savings_fraction())
              << "  (paper cites HP ~40% .. Intel ~67%)\n\n";

    const energy::PueBreakdown optimistic = energy::helsinki_cluster_pue();
    const energy::PueBreakdown realistic = energy::helsinki_cluster_pue_with_legacy_cracs();
    std::cout << "Section 5 PUE arithmetic:\n";
    std::cout << "  IT load " << core::to_string(optimistic.it_load) << ", cooling "
              << core::to_string(optimistic.cooling) << '\n';
    std::cout << "  optimistic PUE (nameplate sum):   " << experiment::fmt(optimistic.pue)
              << "   (paper: 1.74)\n";
    std::cout << "  with legacy CRACs carrying load:  " << experiment::fmt(realistic.pue)
              << "   (paper: \"the situation is worse\")\n";
    return 0;
}
