// The full paper reproduction: 18 paired hosts (plus the #19 replacement),
// the Fig. 2 install timeline, the R/I/B/F tent modifications, the fault
// census and the wrong-hash forensics — one season in one process.
//
//   ./build/examples/tent_experiment [master_seed]
#include <cstdlib>
#include <iostream>

#include "experiment/census.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"

int main(int argc, char** argv) {
    using namespace zerodeg;

    experiment::ExperimentConfig config;
    if (argc > 1) config.master_seed = std::strtoull(argv[1], nullptr, 10);

    std::cout << "zerodeg tent experiment  (seed " << config.master_seed << ")\n"
              << "window: " << config.start.date_string() << " .. " << config.end.date_string()
              << "\n\n";

    experiment::ExperimentRunner run(config);
    run.run();

    // --- Fig. 3 / Fig. 4 style view -----------------------------------------
    std::cout << "Temperatures (outside = o, tent logger = *):\n";
    experiment::ascii_plot(std::cout, run.tent_logger().temperature_series(),
                           &run.station().temperature_series());
    std::cout << "\nRelative humidities (outside = o, tent logger = *):\n";
    experiment::ascii_plot(std::cout, run.tent_logger().humidity_series(),
                           &run.station().humidity_series());

    // --- operations log ------------------------------------------------------
    std::cout << "\nOperational event log:\n";
    run.event_log().print(std::cout);

    // --- fault census --------------------------------------------------------
    const experiment::FaultCensus census = experiment::take_census(run);
    std::cout << "\nFault census:\n"
              << "  tent hosts: " << census.tent_hosts
              << " (failed: " << census.tent_hosts_failed << ")\n"
              << "  basement hosts: " << census.basement_hosts
              << " (failed: " << census.basement_hosts_failed << ")\n"
              << "  system failures: " << census.system_failures << " ("
              << census.transient_failures << " transient, " << census.permanent_failures
              << " permanent)\n"
              << "  sensor-chip incidents: " << census.sensor_incidents << "\n"
              << "  switch failures: " << census.switch_failures << "\n"
              << "  load runs: " << census.load_runs << ", wrong hashes: "
              << census.wrong_hashes << " (tent " << census.wrong_hashes_tent << ", basement "
              << census.wrong_hashes_basement << ")\n"
              << "  tent host failure rate: "
              << experiment::fmt_pct(census.tent_failure_rate())
              << "  (paper: 5.6%, Intel economizer: 4.46%)\n";

    // --- collection health ---------------------------------------------------
    std::cout << "\nTelemetry collection failures (switch deaths show up here): "
              << run.collector().total_failures() << " failed sweep attempts\n";
    std::cout << "Tent energy metered: "
              << core::to_string(run.tent_meter().metered_energy()) << '\n';
    return 0;
}
