// Run the full paper season and export every figure series as CSV plus the
// operational/fault logs — the raw material for replotting Figs. 3 and 4
// with an external tool.
//
//   ./build/examples/export_figures [output_dir]   (default: ./figures_out)
#include <filesystem>
#include <iostream>

#include "experiment/figures.hpp"

int main(int argc, char** argv) {
    using namespace zerodeg;

    const std::string dir = argc > 1 ? argv[1] : "figures_out";
    std::filesystem::create_directories(dir);

    experiment::ExperimentConfig cfg;
    std::cout << "running the season " << cfg.start.date_string() << " .. "
              << cfg.end.date_string() << " ...\n";
    experiment::ExperimentRunner run(cfg);
    run.run();

    const auto written = experiment::export_figure_data(run, dir);
    std::cout << "wrote:\n";
    for (const std::string& path : written) std::cout << "  " << path << '\n';
    std::cout << "\nreplot e.g. with gnuplot:\n"
              << "  set datafile separator ','\n"
              << "  plot '" << dir << "/fig3_outside_temp.csv' using 0:2 with lines, \\\n"
              << "       '" << dir << "/fig3_tent_temp.csv' using 0:2 with lines\n";
    return 0;
}
