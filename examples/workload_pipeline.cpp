// The synthetic load end-to-end on real bytes: build a source-tree corpus,
// pack it (frost::Archive), compress it (frost), hash it (MD5), then flip a
// single bit the way a DRAM soft error would and watch the verify step catch
// it and the recovery utility pin down the one damaged block out of ~396.
//
//   ./build/examples/workload_pipeline
#include <iostream>

#include "core/rng.hpp"
#include "experiment/report.hpp"
#include "workload/archive.hpp"
#include "workload/compressor.hpp"
#include "workload/corpus.hpp"
#include "workload/md5.hpp"
#include "workload/recover.hpp"

int main() {
    using namespace zerodeg;
    using namespace zerodeg::workload;

    // 1. A deterministic kernel-source-like tree.
    SyntheticCorpus corpus(CorpusConfig{}, /*seed=*/2010);
    std::cout << "corpus: " << corpus.file_count() << " files, " << corpus.total_bytes()
              << " bytes\n";

    // 2. tar
    const std::vector<std::uint8_t> tarball = write_archive(corpus.files());
    std::cout << "archive: " << tarball.size() << " bytes\n";

    // 3. bzip2 (frost), sized for the paper's ~396 blocks
    CompressorConfig cc;
    cc.block_size = std::max<std::size_t>(1024, tarball.size() / 396);
    const std::vector<std::uint8_t> packed = frost_compress(tarball, cc);
    const std::size_t blocks = frost_block_directory(packed).size();
    std::cout << "compressed: " << packed.size() << " bytes in " << blocks << " blocks ("
              << experiment::fmt(100.0 * static_cast<double>(packed.size()) /
                                     static_cast<double>(tarball.size()),
                                 1)
              << "% of input)\n";

    // 4. md5sum reference
    const Md5Digest reference = md5(packed);
    std::cout << "reference md5: " << to_hex(reference) << "\n\n";

    // 5. a single DRAM bit flips mid-run
    std::vector<std::uint8_t> damaged = packed;
    core::RngStream rng(424242, "example.flip");
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(12, static_cast<std::int64_t>(damaged.size()) - 1));
    damaged[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    std::cout << "flipped one bit at byte offset " << byte << '\n';

    // 6. the verify step catches it
    const Md5Digest actual = md5(damaged);
    std::cout << "damaged md5:   " << to_hex(actual)
              << (actual == reference ? "  (MATCH?!)" : "  -> MISMATCH, tarball stored") << '\n';

    // 7. bzip2recover-style forensics
    const RecoveryReport report = frost_recover(damaged);
    std::cout << "recovery: " << report.total_blocks << " blocks scanned, "
              << report.corrupt_blocks.size() << " corrupted";
    for (const std::size_t idx : report.corrupt_blocks) std::cout << " (block #" << idx << ")";
    std::cout << "\n          " << report.salvaged_bytes << " bytes salvaged, "
              << report.lost_bytes << " bytes lost\n";
    std::cout << "\n-> the paper's Section 4.2.2 forensics, on live bytes: one flip, one\n"
                 "   bad block out of ~396, everything else recoverable.\n";

    // 8. round-trip sanity on the pristine container
    const std::vector<std::uint8_t> unpacked = frost_decompress(packed);
    const std::vector<CorpusFile> files = read_archive(unpacked);
    std::cout << "\nround-trip: " << files.size() << " files restored, "
              << (files.size() == corpus.file_count() ? "OK" : "MISMATCH") << '\n';
    return 0;
}
