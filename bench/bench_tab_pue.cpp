// TAB-PUE: the Section 5 PUE arithmetic.
//
// Paper: the new cluster runs 75 kW of IT; three CRACs draw 6.9 kW, the
// chilled-water plant 44.7 kW, the roof liquid-cooling unit 3.8 kW.  Summing
// nameplates gives "a rather efficient 1.74" -- and the paper immediately
// notes reality is worse because pre-existing CRACs carry part of the load.
#include "bench_common.hpp"
#include "energy/economizer.hpp"
#include "energy/pue.hpp"
#include "experiment/report.hpp"

namespace {

using namespace zerodeg;
using core::Watts;

void report() {
    const energy::CoolingPlant plant = energy::helsinki_cluster_plant();

    std::cout << "\nCooling chain nameplates (Section 5):\n";
    experiment::TablePrinter units(std::cout, {"unit", "power draw (kW)", "capacity (kW)"},
                                   {38, 16, 14});
    for (const energy::CoolingUnit& u : plant.units()) {
        units.row({u.name, experiment::fmt(u.power_draw.kilowatts(), 1),
                   experiment::fmt(u.cooling_capacity.kilowatts(), 1)});
    }

    const energy::PueBreakdown optimistic = energy::helsinki_cluster_pue();
    const energy::PueBreakdown realistic = energy::helsinki_cluster_pue_with_legacy_cracs();

    // What the same room would look like free-air cooled, for contrast.
    const energy::AirEconomizer eco;
    const Watts winter_cooling =
        eco.cooling_power(energy::helsinki_cluster_it_load(), core::Celsius{-5.0});
    const double eco_pue =
        (energy::helsinki_cluster_it_load() + winter_cooling) / energy::helsinki_cluster_it_load();

    experiment::print_comparison(
        std::cout, "PUE of the new 75 kW cluster",
        {
            {"IT load", "75 kW", experiment::fmt(optimistic.it_load.kilowatts(), 1) + " kW", ""},
            {"cooling power (sum of nameplates)", "55.4 kW",
             experiment::fmt(optimistic.cooling.kilowatts(), 1) + " kW",
             "6.9 + 44.7 + 3.8"},
            {"optimistic PUE", "1.74", experiment::fmt(optimistic.pue, 2),
             "\"if we could just sum those figures\""},
            {"with legacy CRACs sharing the load", "worse (no figure given)",
             experiment::fmt(realistic.pue, 2), "\"more energy is wasted\""},
            {"free-air-cooled equivalent (winter)", "(the paper's proposal)",
             experiment::fmt(eco_pue, 2), "fans only at -5 degC outside"},
        });
    std::cout << '\n';
}

void bm_pue_compute(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(energy::helsinki_cluster_pue().pue);
    }
}
BENCHMARK(bm_pue_compute);

void bm_power_to_cool(benchmark::State& state) {
    const energy::CoolingPlant plant = energy::helsinki_cluster_plant();
    for (auto _ : state) {
        benchmark::DoNotOptimize(plant.power_to_cool(Watts::from_kilowatts(60.0)).value());
    }
}
BENCHMARK(bm_power_to_cool);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "TAB-PUE: Section 5 PUE arithmetic", report);
}
