// ABL-TENT: ablation of the tent modifications (design decision 3 in
// DESIGN.md).
//
// Fig. 3's inside-temperature drops are attributed to the R/I/B/F
// interventions; this ablation isolates each modification's standalone and
// cumulative effect on the steady-state tent-minus-outside delta at a fixed
// operating point (9 hosts, -10 degC, moderate wind) and on solar pickup.
#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "thermal/enclosure.hpp"

namespace {

using namespace zerodeg;
using core::Celsius;
using core::Duration;
using core::MetersPerSecond;
using core::RelHumidity;
using core::Watts;
using core::WattsPerSquareMeter;

weather::WeatherSample operating_point(double irradiance = 0.0) {
    weather::WeatherSample s;
    s.temperature = Celsius{-10.0};
    s.humidity = RelHumidity{85.0};
    s.wind = MetersPerSecond{4.0};
    s.irradiance = WattsPerSquareMeter{irradiance};
    return s;
}

double settle_delta(std::initializer_list<thermal::TentMod> mods, double irradiance = 0.0) {
    thermal::TentModel tent(thermal::TentConfig{}, Celsius{-10.0});
    for (const auto m : mods) tent.apply_modification(m);
    tent.set_equipment_power(Watts{850.0});  // nine machines, mixed load
    const auto outside = operating_point(irradiance);
    for (int i = 0; i < 12 * 48; ++i) tent.step(Duration::minutes(10), outside);
    return tent.air().temperature.value() - outside.temperature.value();
}

void report() {
    std::cout << "\nSteady-state tent-minus-outside delta, 850 W equipment, -10 degC,\n"
                 "4 m/s wind, night (no sun):\n\n";
    experiment::TablePrinter table(std::cout, {"configuration", "dT (K)", "vs closed"},
                                   {44, 8, 10});
    const double closed = settle_delta({});
    const auto row = [&](const char* name, std::initializer_list<thermal::TentMod> mods) {
        const double d = settle_delta(mods);
        table.row({name, experiment::fmt(d, 1),
                   experiment::fmt_pct(d / closed - 1.0, 0)});
    };
    row("closed tent (baseline)", {});
    row("I only (inner tent removed)", {thermal::TentMod::kInnerTentRemoved});
    row("B only (bottom opened)", {thermal::TentMod::kBottomOpened});
    row("F only (fan installed)", {thermal::TentMod::kFanInstalled});
    row("D only (front door half-open)", {thermal::TentMod::kFrontDoorHalfOpen});
    row("I+B (paper, mid-March)",
        {thermal::TentMod::kInnerTentRemoved, thermal::TentMod::kBottomOpened});
    row("I+B+D+F (paper, end state)",
        {thermal::TentMod::kInnerTentRemoved, thermal::TentMod::kBottomOpened,
         thermal::TentMod::kFrontDoorHalfOpen, thermal::TentMod::kFanInstalled});

    std::cout << "\nSolar pickup at 450 W/m^2 (midday, scattered cloud):\n\n";
    experiment::TablePrinter sun(std::cout, {"configuration", "dT night (K)", "dT sunny (K)",
                                             "solar pickup (K)"},
                                 {34, 13, 13, 16});
    const double bare_night = settle_delta({});
    const double bare_sun = settle_delta({}, 450.0);
    const double foil_night = settle_delta({thermal::TentMod::kReflectiveFoil});
    const double foil_sun = settle_delta({thermal::TentMod::kReflectiveFoil}, 450.0);
    sun.row({"no foil", experiment::fmt(bare_night, 1), experiment::fmt(bare_sun, 1),
             experiment::fmt(bare_sun - bare_night, 1)});
    sun.row({"R (reflective foil cover)", experiment::fmt(foil_night, 1),
             experiment::fmt(foil_sun, 1), experiment::fmt(foil_sun - foil_night, 1)});

    std::cout << "\npaper shape: every ventilation modification cuts the retained heat, the\n"
                 "fan most of all; the rescue foil \"measurably decreases the internal\n"
                 "temperatures\" by cutting solar pickup roughly 3x.\n\n";
}

void bm_settle_tent(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(settle_delta({thermal::TentMod::kBottomOpened}));
    }
}
BENCHMARK(bm_settle_tent)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "ABL-TENT: tent modification ablation", report);
}
