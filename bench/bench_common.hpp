// Shared scaffolding for the bench binaries.
//
// Every bench regenerates its paper artifact (table rows / figure series)
// on stdout first, then runs its google-benchmark timings of the underlying
// computation.  This keeps `for b in build/bench/*; do $b; done` both the
// reproduction harness and the performance harness.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

namespace zerodeg::benchutil {

/// Call from main(): print the reproduction report, then run benchmarks.
template <typename ReportFn>
int run(int argc, char** argv, const char* title, ReportFn&& report) {
    std::cout << "==========================================================================\n"
              << title << '\n'
              << "==========================================================================\n";
    report();
    std::cout.flush();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace zerodeg::benchutil
