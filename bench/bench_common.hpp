// Shared scaffolding for the bench binaries.
//
// Every bench regenerates its paper artifact (table rows / figure series)
// on stdout first, then runs its google-benchmark timings of the underlying
// computation.  This keeps `for b in build/bench/*; do $b; done` both the
// reproduction harness and the performance harness.
//
// Monte-Carlo benches shard their seeds across worker threads; the
// `--jobs N` flag (or `--jobs=N`) sets the worker count for the report
// phase.  `--jobs 0` means one worker per hardware thread (the default).
// Report output is byte-identical for every jobs value — parallelism only
// changes wall clock, a property the determinism test suite pins.
//
// `--checkpoint FILE` journals each finished sweep cell so a killed bench
// resumes (`--resume`) instead of re-simulating; see
// experiment/sweep_journal.hpp.  Benches whose cells are full season
// censuses honour it; others ignore it.
//
// `--inject-faults SEED` routes the journal through a core::FaultyFs with
// deterministic seed-scheduled write/rename faults — the quickest way to
// see the bounded retry machinery absorb a flaky disk on a real sweep.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/bench_clock.hpp"
#include "core/io.hpp"
#include "core/task_pool.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/sweep_journal.hpp"

namespace zerodeg::benchutil {

namespace detail {
inline std::size_t& jobs_storage() {
    static std::size_t jobs = core::TaskPool::hardware_workers();
    return jobs;
}
inline std::string& checkpoint_storage() {
    static std::string path;
    return path;
}
inline bool& resume_storage() {
    static bool resume = false;
    return resume;
}
inline std::uint64_t& fault_seed_storage() {
    static std::uint64_t seed = 0;
    return seed;
}
}  // namespace detail

/// Worker count for the report phase (set by --jobs, default all hardware
/// threads).
[[nodiscard]] inline std::size_t jobs() { return detail::jobs_storage(); }

/// Journal path from `--checkpoint FILE`; empty when checkpointing is off.
[[nodiscard]] inline const std::string& checkpoint_path() {
    return detail::checkpoint_storage();
}

/// True when `--resume` was given (reuse cells already in the journal).
[[nodiscard]] inline bool resume() { return detail::resume_storage(); }

/// FaultyFs seed from `--inject-faults SEED`; 0 = no injection.
[[nodiscard]] inline std::uint64_t fault_seed() { return detail::fault_seed_storage(); }

/// Strip the sweep flags (`--jobs N`, `--checkpoint FILE`, `--resume`,
/// `--inject-faults SEED`) out of argv — so google-benchmark never sees
/// them — and record the values.
inline void parse_sweep_flags(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--resume") {
            detail::resume_storage() = true;
            continue;
        }
        if (arg.rfind("--checkpoint=", 0) == 0) {
            detail::checkpoint_storage() = arg.substr(13);
            continue;
        }
        if (arg == "--checkpoint" && i + 1 < argc) {
            detail::checkpoint_storage() = argv[++i];
            continue;
        }
        if (arg.rfind("--inject-faults=", 0) == 0) {
            detail::fault_seed_storage() = std::strtoull(arg.c_str() + 16, nullptr, 10);
            continue;
        }
        if (arg == "--inject-faults" && i + 1 < argc) {
            detail::fault_seed_storage() = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else if (arg == "--jobs" && i + 1 < argc) {
            value = argv[++i];
        } else {
            argv[out++] = argv[i];
            continue;
        }
        const long long v = std::atoll(value.c_str());
        detail::jobs_storage() =
            v <= 0 ? core::TaskPool::hardware_workers() : static_cast<std::size_t>(v);
    }
    argc = out;
    if (detail::resume_storage() && detail::checkpoint_storage().empty()) {
        std::cerr << "error: --resume needs --checkpoint FILE\n";
        std::exit(2);
    }
}

/// Run a census plan across jobs() workers, honouring --checkpoint/--resume:
/// with a checkpoint set, every finished cell is journalled as it completes
/// and a resumed run reuses the recorded cells instead of re-simulating.
/// The result is byte-identical with or without a journal.
[[nodiscard]] inline experiment::CensusResult run_plan(const experiment::CensusPlan& plan) {
    const experiment::ParallelCensus campaign(plan, jobs());
    if (checkpoint_path().empty()) return campaign.run();
    const experiment::SweepJournalKey key = campaign.journal_key();
    // --inject-faults: the journal writes go through a deterministic
    // FaultyFs; the journal's bounded tmp+rename retry absorbs the faults.
    std::unique_ptr<core::FaultyFs> faulty;
    if (fault_seed() != 0) {
        core::FaultPlan fault_plan;
        fault_plan.seed = fault_seed();
        fault_plan.write_fault_rate = 0.15;
        fault_plan.rename_fault_rate = 0.05;
        faulty = std::make_unique<core::FaultyFs>(fault_plan);
    }
    experiment::SweepJournal journal(checkpoint_path(), key, resume(), faulty.get());
    if (journal.completed() > 0) {
        std::cout << "checkpoint: resuming " << journal.completed() << "/" << key.cells
                  << " cells from " << checkpoint_path() << "\n";
    }
    experiment::CensusResult result = campaign.run(journal);
    if (faulty) {
        std::cout << "fault injection: " << faulty->fault_trace().size() << " fault(s) over "
                  << faulty->op_count() << " io ops; journal absorbed " << journal.io_retries()
                  << " transient retr" << (journal.io_retries() == 1 ? "y" : "ies") << "\n";
    }
    return result;
}

/// Wall-clock stopwatch for the report phase ("census: 10 seeds in 3.2 s,
/// jobs=8" lines — the number the speedup acceptance criterion reads).
/// Built on core::bench_clock, the lint-sanctioned timing seam (ZD013), so
/// no per-line suppressions are needed here or in any bench target.
class WallTimer {
public:
    WallTimer() : start_(core::bench_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return core::bench_clock::seconds_between(start_, core::bench_clock::now());
    }

private:
    core::bench_clock::time_point start_;
};

/// Call from main(): print the reproduction report, then run benchmarks.
template <typename ReportFn>
int run(int argc, char** argv, const char* title, ReportFn&& report) {
    parse_sweep_flags(argc, argv);
    std::cout << "==========================================================================\n"
              << title << '\n'
              << "==========================================================================\n";
    report();
    std::cout.flush();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace zerodeg::benchutil
