// Shared scaffolding for the bench binaries.
//
// Every bench regenerates its paper artifact (table rows / figure series)
// on stdout first, then runs its google-benchmark timings of the underlying
// computation.  This keeps `for b in build/bench/*; do $b; done` both the
// reproduction harness and the performance harness.
//
// Monte-Carlo benches shard their seeds across worker threads; the
// `--jobs N` flag (or `--jobs=N`) sets the worker count for the report
// phase.  `--jobs 0` means one worker per hardware thread (the default).
// Report output is byte-identical for every jobs value — parallelism only
// changes wall clock, a property the determinism test suite pins.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/task_pool.hpp"

namespace zerodeg::benchutil {

namespace detail {
inline std::size_t& jobs_storage() {
    static std::size_t jobs = core::TaskPool::hardware_workers();
    return jobs;
}
}  // namespace detail

/// Worker count for the report phase (set by --jobs, default all hardware
/// threads).
[[nodiscard]] inline std::size_t jobs() { return detail::jobs_storage(); }

/// Strip `--jobs N` / `--jobs=N` out of argv (so google-benchmark never
/// sees it) and record the value.
inline void parse_jobs_flag(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else if (arg == "--jobs" && i + 1 < argc) {
            value = argv[++i];
        } else {
            argv[out++] = argv[i];
            continue;
        }
        const long long v = std::atoll(value.c_str());
        detail::jobs_storage() =
            v <= 0 ? core::TaskPool::hardware_workers() : static_cast<std::size_t>(v);
    }
    argc = out;
}

/// Wall-clock stopwatch for the report phase ("census: 10 seeds in 3.2 s,
/// jobs=8" lines — the number the speedup acceptance criterion reads).
class WallTimer {
public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Call from main(): print the reproduction report, then run benchmarks.
template <typename ReportFn>
int run(int argc, char** argv, const char* title, ReportFn&& report) {
    parse_jobs_flag(argc, argv);
    std::cout << "==========================================================================\n"
              << title << '\n'
              << "==========================================================================\n";
    report();
    std::cout.flush();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace zerodeg::benchutil
