// ABL-COND: the Section 5 condensation analysis.
//
// Paper: "water has few possibilities to condense in the equipment, as this
// would require the outside air to suddenly become warmer than the computer
// cases" -- internal dissipation plus fan-driven circulation keep powered
// cases above the dew point.  This ablation sweeps the season with the
// machine powered vs. unpowered and reports the dew-point margin statistics
// and every sub-margin excursion.
#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "hardware/server.hpp"
#include "thermal/condensation.hpp"
#include "thermal/enclosure.hpp"
#include "weather/psychrometrics.hpp"
#include "weather/weather_model.hpp"

namespace {

using namespace zerodeg;
using core::Celsius;
using core::Duration;
using core::TimePoint;

struct SweepResult {
    core::SeriesStats margin;
    std::size_t events = 0;
    bool condensed = false;
};

SweepResult sweep(bool powered) {
    weather::WeatherModel sky(weather::helsinki_2010_config(), 11);
    thermal::TentModel tent;
    tent.apply_modification(thermal::TentMod::kBottomOpened);
    hardware::Server pc(1, "host-01", hardware::vendor_a_spec(), 11);
    thermal::CondensationAnalyzer analyzer(Celsius{1.0});

    const TimePoint start = TimePoint::from_date(2010, 2, 19);
    const TimePoint end = TimePoint::from_date(2010, 5, 1);
    if (powered) {
        pc.power_on(Celsius{-5.0});
        pc.set_cpu_load(0.3);
    }
    double unpowered_case = -5.0;  // cold-soaks toward tent air with a lag
    for (TimePoint t = start; t <= end; t += Duration::minutes(10)) {
        const weather::WeatherSample outside = sky.advance_to(t);
        tent.set_equipment_power(pc.wall_power());
        tent.step(Duration::minutes(10), outside);
        const thermal::EnclosureAir air = tent.air();
        Celsius surface;
        if (powered) {
            pc.step(Duration::minutes(10), air.temperature);
            surface = pc.case_surface_temperature();
        } else {
            // A dead chassis follows the air with a ~40-minute time constant
            // and no internal heat.
            unpowered_case += (air.temperature.value() - unpowered_case) *
                              (1.0 - std::exp(-600.0 / 2400.0));
            surface = Celsius{unpowered_case};
        }
        analyzer.observe(t, surface, air.temperature, air.humidity);
    }
    analyzer.finish(end);
    return {analyzer.margin_series().stats(), analyzer.events().size(),
            analyzer.condensation_occurred()};
}

void report() {
    const SweepResult on = sweep(true);
    const SweepResult off = sweep(false);

    std::cout << "\nDew-point margin (case surface minus dew point), Feb 19 - May 1,\n"
                 "ventilated tent, vendor-A tower:\n\n";
    experiment::TablePrinter table(
        std::cout,
        {"machine state", "min margin (K)", "mean margin (K)", "risk events", "condensed?"},
        {16, 15, 16, 12, 10});
    table.row({"powered, loaded", experiment::fmt(on.margin.min, 1),
               experiment::fmt(on.margin.mean, 1), std::to_string(on.events),
               on.condensed ? "YES" : "no"});
    table.row({"powered off", experiment::fmt(off.margin.min, 1),
               experiment::fmt(off.margin.mean, 1), std::to_string(off.events),
               off.condensed ? "YES" : "no"});

    std::cout << "\nThe scripted dangerous scenario (cold-soaked case, warm front):\n";
    for (const double case_t : {-15.0, -5.0}) {
        const Celsius margin = weather::condensation_margin(
            Celsius{case_t}, Celsius{6.0}, core::RelHumidity{90.0});
        std::cout << "  case at " << experiment::fmt(case_t, 0)
                  << " degC meeting +6 degC / 90% RH air: margin "
                  << experiment::fmt(margin.value(), 1) << " K "
                  << (margin.value() <= 0.0 ? "-> CONDENSES" : "-> safe") << '\n';
    }
    std::cout << "\npaper shape: a powered case never dips to the dew point (its own heat\n"
                 "is the margin); only unpowered, cold-soaked hardware hit by a sudden\n"
                 "warm, humid front condenses -- exactly Section 5's caveat.\n\n";
}

void bm_condensation_margin(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(weather::condensation_margin(core::Celsius{-3.0},
                                                              core::Celsius{-8.0},
                                                              core::RelHumidity{88.0})
                                     .value());
    }
}
BENCHMARK(bm_condensation_margin);

void bm_season_sweep(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(sweep(true).events);
    }
}
BENCHMARK(bm_season_sweep)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "ABL-COND: condensation-risk analysis", report);
}
