// ABL-ENV: time outside the certified envelope vs. the failure census.
//
// The quantitative form of the paper's Section 5 claim: "sub-zero
// temperatures or relative humidities above 80% or 90% are not a certified
// cause for server failures."  We meter how much of the season the tent
// intake spent outside the ASHRAE-style envelopes — and set it against the
// census, which barely moves.
#include "bench_common.hpp"

#include <algorithm>
#include "experiment/census.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "thermal/envelope.hpp"
#include "weather/psychrometrics.hpp"

namespace {

using namespace zerodeg;

void report() {
    experiment::ExperimentConfig cfg;
    experiment::ExperimentRunner run(cfg);

    // Track all three envelope classes against the tent truth series by
    // re-walking it (the runner itself tracks the allowable class).
    thermal::EnvelopeTracker recommended(thermal::ashrae_recommended());
    thermal::EnvelopeTracker a4(thermal::ashrae_a4_like());
    run.run();
    const auto& temps = run.tent_truth_temperature();
    const auto& rhs = run.tent_truth_humidity();
    for (std::size_t i = 0; i < temps.size() && i < rhs.size(); ++i) {
        const core::Celsius t{temps[i].value};
        const core::RelHumidity rh{rhs[i].value};
        const core::Celsius dp =
            rh.value() > 0.0 ? weather::dew_point(t, rh) : core::Celsius{-100.0};
        recommended.observe(cfg.tick, t, rh, dp);
        a4.observe(cfg.tick, t, rh, dp);
    }
    const thermal::EnvelopeTracker& allowable = run.tent_envelope();

    std::cout << "\nTent intake air vs. operating envelopes, "
              << cfg.start.date_string() << " .. " << cfg.end.date_string() << ":\n\n";
    experiment::TablePrinter table(
        std::cout,
        {"envelope", "within", "too cold", "too humid", "other out"},
        {36, 10, 10, 10, 10});
    const auto row = [&table](const thermal::EnvelopeTracker& tr) {
        const double other = std::max(0.0, tr.hours_total() - tr.hours_within() -
                                               tr.hours(thermal::EnvelopeVerdict::kTooCold) -
                                               tr.hours(thermal::EnvelopeVerdict::kTooHumid));
        table.row({tr.spec().name, experiment::fmt_pct(tr.fraction_within(), 0),
                   experiment::fmt_pct(tr.hours(thermal::EnvelopeVerdict::kTooCold) /
                                           tr.hours_total(),
                                       0),
                   experiment::fmt_pct(tr.hours(thermal::EnvelopeVerdict::kTooHumid) /
                                           tr.hours_total(),
                                       0),
                   experiment::fmt_pct(other / tr.hours_total(), 0)});
    };
    row(recommended);
    row(allowable);
    row(a4);

    const experiment::FaultCensus census = experiment::take_census(run);
    std::cout << "\n...and the census over the same season: " << census.system_failures
              << " system failure(s), " << census.tent_hosts_failed << " of "
              << census.tent_hosts << " tent hosts affected ("
              << experiment::fmt_pct(census.tent_failure_rate())
              << "; Intel's in-envelope economizer PoC saw 4.46%).\n"
              << "\npaper shape: the intake lived far outside every certified envelope for\n"
                 "most of the season, and the failure rate stayed in the same band as an\n"
                 "in-envelope deployment -- the paper's headline finding.\n\n";
}

void bm_classify(benchmark::State& state) {
    const thermal::EnvelopeSpec spec = thermal::ashrae_allowable();
    for (auto _ : state) {
        benchmark::DoNotOptimize(thermal::classify(spec, core::Celsius{-8.0},
                                                   core::RelHumidity{85.0},
                                                   core::Celsius{-10.0}));
    }
}
BENCHMARK(bm_classify);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "ABL-ENV: envelope excursions vs failure census", report);
}
