// TAB-TCO: the financial balance of Section 3 (research question 2).
//
// Paper: "If the failure rate rises only a little or not at all, replacement
// costs must be balanced with the purchase and energy costs of air
// conditioning."  This table does the balance for a 75 kW room and shows the
// break-even excess failure rate — the quantitative version of the paper's
// conclusion that the observed 5.6%-vs-4.46% failure rates are nowhere near
// enough to pay for air conditioning.
#include "bench_common.hpp"
#include "energy/cost_model.hpp"
#include "experiment/report.hpp"

namespace {

using namespace zerodeg;

void report() {
    const energy::CoolingCostModel model;
    constexpr double kItKw = 75.0;
    constexpr int kServers = 300;
    constexpr double kBaseAfr = 0.05;

    const auto crac = model.conventional(kItKw, kServers, kBaseAfr);
    // Free air at the paper's observed rate: one extra percentage point-ish.
    const auto free_paper = model.free_air(kItKw, kServers, 0.056);
    const auto free_intel = model.free_air(kItKw, kServers, 0.0446);

    std::cout << "\nAnnual cost, 75 kW room, 300 servers, "
              << experiment::fmt(model.config().electricity_eur_per_kwh * 100.0, 0)
              << " c/kWh, server replacement "
              << experiment::fmt(model.config().server_replacement_eur, 0) << " EUR:\n\n";
    experiment::TablePrinter table(
        std::cout,
        {"strategy", "energy (EUR/y)", "capex (EUR/y)", "replacements (EUR/y)",
         "total (EUR/y)"},
        {40, 15, 14, 21, 14});
    const auto row = [&table](const char* name, const energy::CoolingCostBreakdown& b) {
        table.row({name, experiment::fmt(b.energy_eur_per_year, 0),
                   experiment::fmt(b.capex_eur_per_year, 0),
                   experiment::fmt(b.replacement_eur_per_year, 0),
                   experiment::fmt(b.total(), 0)});
    };
    row("conventional CRACs, AFR 5.0%", crac);
    row("free air, AFR 5.6% (this paper's rate)", free_paper);
    row("free air, AFR 4.46% (Intel PoC rate)", free_intel);

    const double break_even = model.break_even_excess_afr(kItKw, kServers, kBaseAfr);
    std::cout << "\nBreak-even EXCESS failure rate for free cooling: +"
              << experiment::fmt_pct(break_even, 1) << " AFR per year\n"
              << "observed excess in the paper/Intel data: ~+0.6..1.1% -- an order of\n"
                 "magnitude below break-even, hence \"replacement costs must be balanced\"\n"
                 "resolves decisively in free cooling's favor.\n\n";
}

void bm_cost_breakdown(benchmark::State& state) {
    const energy::CoolingCostModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.conventional(75.0, 300, 0.05).total());
    }
}
BENCHMARK(bm_cost_breakdown);

void bm_break_even(benchmark::State& state) {
    const energy::CoolingCostModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.break_even_excess_afr(75.0, 300, 0.05));
    }
}
BENCHMARK(bm_break_even);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(
        argc, argv, "TAB-TCO: cooling-energy savings vs replacement costs", report);
}
