// ABL-ECON: air-side vs wet-side economizer (references [1] vs [2]).
//
// The paper notes with interest that "Intel's previous report [2] has argued
// convincingly against air economizers" (for wet-side ones) before Intel's
// own air-side PoC [1].  This ablation settles the question per climate:
// free-cooling hours and savings for the air-side economizer, the wet-side
// economizer, and the conventional plant.
#include "bench_common.hpp"
#include "energy/economizer.hpp"
#include "experiment/report.hpp"
#include "weather/psychrometrics.hpp"
#include "weather/trace_io.hpp"

namespace {

using namespace zerodeg;
using core::TimePoint;
using core::Watts;

std::vector<weather::WeatherSample> climate_trace(double offset_deg, double rh_shift) {
    weather::WeatherConfig cfg = weather::helsinki_full_year_config();
    for (auto& a : cfg.anchors) a.mean += core::Celsius{offset_deg};
    cfg.depression_mean += rh_shift;  // bigger depression = drier air
    if (offset_deg > 5.0) cfg.cold_snaps.clear();
    weather::WeatherModel model(cfg, 7);
    return weather::generate_trace(model, TimePoint::from_date(2010, 1, 2),
                                   TimePoint::from_date(2010, 12, 30),
                                   core::Duration::hours(2));
}

void report() {
    const Watts it = Watts::from_kilowatts(75.0);
    const energy::AirEconomizer air;
    const energy::WetSideEconomizer wet;

    std::cout << "\nFull-year comparison, 75 kW IT load:\n\n";
    experiment::TablePrinter table(
        std::cout,
        {"climate", "air-side free hrs", "air-side savings", "wet-side free hrs",
         "wet-side savings"},
        {26, 18, 17, 18, 16});

    struct Climate {
        const char* name;
        double offset;
        double dryness;
    };
    const Climate climates[] = {
        {"Helsinki (paper)", 0.0, 0.0},
        {"temperate maritime (+8)", 8.0, 0.0},
        {"hot & dry (+16, arid)", 16.0, 16.0},
        {"hot & humid (+16)", 16.0, -1.5},
    };
    for (const Climate& c : climates) {
        const auto trace = climate_trace(c.offset, c.dryness);
        const auto a = energy::compare_cooling(trace, it, air);
        const auto w = energy::compare_cooling_wet_side(trace, it, wet);
        table.row({c.name,
                   experiment::fmt(a.free_cooling_hours, 0),
                   experiment::fmt_pct(a.savings_fraction(), 0),
                   experiment::fmt(w.free_cooling_hours, 0),
                   experiment::fmt_pct(w.savings_fraction(), 0)});
    }

    std::cout << "\npaper shape: in the Nordic climate the air-side economizer wins -- fans\n"
                 "are cheaper than fans + towers when the air is already cold -- which is\n"
                 "the paper's whole premise.  In hot, dry climates the wet-bulb window\n"
                 "stays open long after the dry-bulb one closes (~1000 extra free hours\n"
                 "above), which is reference [2]'s original argument for wet-side; in\n"
                 "humid heat neither helps much.\n\n";
}

void bm_wet_bulb(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            weather::wet_bulb(core::Celsius{24.0}, core::RelHumidity{45.0}).value());
    }
}
BENCHMARK(bm_wet_bulb);

void bm_wet_side_power(benchmark::State& state) {
    const energy::WetSideEconomizer wet;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wet.cooling_power(core::Watts::from_kilowatts(75.0),
                                                   core::Celsius{18.0},
                                                   core::RelHumidity{60.0})
                                     .value());
    }
}
BENCHMARK(bm_wet_side_power);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "ABL-ECON: air-side vs wet-side economizer", report);
}
