// Tick-engine performance benchmark: the number the perf gate watches.
//
// Two measurements, both timed with core::bench_clock (the lint-sanctioned
// seam — no google-benchmark, no per-line suppressions):
//
//   1. Season sweep: run a `--seeds N` census (the default paper season,
//      5184 ticks each) `--repeat R` times and keep the best wall time.
//      Reported as cells/sec (census cells, i.e. seasons) and ticks/sec
//      (seeds x ticks-per-season / best wall).
//   2. Traffic sweep: the same census under the request-serving workload
//      (`--workload traffic` in the CLI) — the continuous-time PS queues,
//      JSQ dispatch and SLO accounting dominate instead of the archive
//      scheduler.  Reported as requests/sec (completed requests across all
//      seeds / best wall).
//   3. Hazard kernel microbench: the batched HostHazardModel evaluation
//      over a 4096-slot SoA, reported as hazard-evals/sec.
//   4. Frost codec microbench: compressing a deterministic 1 MiB corpus
//      through the bzip2 stand-in (the load-generation hot loop), reported
//      as MB/s of input compressed, with a roundtrip sanity check.
//
// Results go to stdout for humans and to `--out FILE` (default
// BENCH_tick.json) as zerodeg-bench-tick/1 JSON for scripts/compare_bench.py,
// which gates scripts/check.sh against the checked-in BENCH_baseline.json.
//
// The census output itself is byte-identical across engines and jobs values
// (pinned by tests/test_hazard_table.cpp); this binary only measures speed,
// but it still prints the summary fingerprint fields so a perf run that
// silently changed *results* is visible in the JSON diff.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bench_clock.hpp"
#include "experiment/config.hpp"
#include "experiment/parallel_census.hpp"
#include "faults/hazard.hpp"
#include "workload/compressor.hpp"

namespace {

using zerodeg::core::bench_clock;

struct Options {
    std::size_t seeds = 4;
    int repeat = 3;
    std::size_t jobs = 1;
    zerodeg::experiment::TickEngine engine = zerodeg::experiment::TickEngine::kBatched;
    std::string out = "BENCH_tick.json";
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "error: " << message << "\n"
              << "usage: bench_perf_tick [--seeds N] [--repeat N] [--jobs N]\n"
              << "                       [--engine batched|per-object] [--out FILE]\n";
    std::exit(2);
}

Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--seeds") {
            opt.seeds = static_cast<std::size_t>(std::strtoull(value("--seeds").c_str(), nullptr, 10));
            if (opt.seeds == 0) usage_error("--seeds must be >= 1");
        } else if (arg == "--repeat") {
            opt.repeat = std::atoi(value("--repeat").c_str());
            if (opt.repeat < 1) usage_error("--repeat must be >= 1");
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<std::size_t>(std::strtoull(value("--jobs").c_str(), nullptr, 10));
        } else if (arg == "--engine") {
            const std::string v = value("--engine");
            if (v == "batched") {
                opt.engine = zerodeg::experiment::TickEngine::kBatched;
            } else if (v == "per-object") {
                opt.engine = zerodeg::experiment::TickEngine::kPerObject;
            } else {
                usage_error("--engine must be 'batched' or 'per-object'");
            }
        } else if (arg == "--out") {
            opt.out = value("--out");
        } else {
            usage_error("unknown flag " + arg);
        }
    }
    return opt;
}

/// Fixed-point-free JSON number formatting: full double precision, no
/// locale surprises.
std::string num(double v) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(17);
    os << v;
    return os.str();
}

/// Batched hazard-kernel microbench: 4096 deterministic SoA slots spanning
/// the tent's operating envelope, evaluated until the repeat budget is
/// spent.  Returns evals/sec from the best repeat.
double hazard_kernel_evals_per_sec(int repeat) {
    constexpr std::size_t kSlots = 4096;
    constexpr int kItersPerRepeat = 500;
    std::vector<double> intake(kSlots), humidity(kSlots), age(kSlots), cycling(kSlots);
    std::vector<std::uint8_t> unreliable(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        // Deterministic coverage of the envelope: -25..+35 C, 30..95 %RH,
        // 0..40k hours, 0..6 K/h, every 7th host flaky.
        intake[i] = -25.0 + 60.0 * static_cast<double>(i) / kSlots;
        humidity[i] = 30.0 + 65.0 * static_cast<double>((i * 37) % kSlots) / kSlots;
        age[i] = 40000.0 * static_cast<double>((i * 101) % kSlots) / kSlots;
        cycling[i] = 6.0 * static_cast<double>((i * 13) % kSlots) / kSlots;
        unreliable[i] = (i % 7) == 0 ? 1 : 0;
    }
    const zerodeg::faults::HostHazardModel model;
    const zerodeg::faults::StressSoa soa{intake.data(), humidity.data(), age.data(),
                                         cycling.data(), unreliable.data()};
    std::vector<double> out(kSlots);
    double sink = 0.0;
    double best = 0.0;
    for (int r = 0; r < repeat; ++r) {
        const auto t0 = bench_clock::now();
        for (int it = 0; it < kItersPerRepeat; ++it) {
            model.hazard_per_hour(soa, kSlots, out.data());
            sink += out[it % kSlots];  // keep the evaluation observable
        }
        const double secs = bench_clock::seconds_between(t0, bench_clock::now());
        const double rate = static_cast<double>(kSlots) * kItersPerRepeat / secs;
        if (rate > best) best = rate;
    }
    if (sink == -1.0) std::cerr << "";  // defeat dead-code elimination
    return best;
}

/// Frost-codec microbench: a deterministic, realistically compressible
/// 1 MiB corpus (text-like alphabet with interspersed zero runs, the same
/// flavour the load jobs archive) pushed through frost_compress.  Returns
/// MB of *input* per second from the best repeat; aborts if the container
/// stops roundtripping (a fast-but-wrong codec must fail the gate, not win
/// it).
double frost_codec_mb_per_sec(int repeat) {
    namespace workload = zerodeg::workload;
    constexpr std::size_t kCorpusBytes = 1 << 20;
    constexpr int kItersPerRepeat = 4;
    std::vector<std::uint8_t> corpus(kCorpusBytes);
    for (std::size_t i = 0; i < kCorpusBytes; ++i) {
        // Knuth-hash phase picks between a 19-letter alphabet and short
        // zero runs: ~2:1 compressible, never degenerate.
        const std::uint32_t h = static_cast<std::uint32_t>(i) * 2654435761u;
        corpus[i] = (h >> 13) % 5 == 0 ? 0 : static_cast<std::uint8_t>('a' + (h >> 21) % 19);
    }
    const workload::CompressorConfig config;  // the load jobs' 16 KiB blocks
    const std::vector<std::uint8_t> check = workload::frost_decompress(
        workload::frost_compress(corpus, config));
    if (check != corpus) {
        std::cerr << "error: frost codec roundtrip failed on the bench corpus\n";
        std::exit(1);
    }
    std::size_t sink = 0;
    double best = 0.0;
    for (int r = 0; r < repeat; ++r) {
        const auto t0 = bench_clock::now();
        for (int it = 0; it < kItersPerRepeat; ++it) {
            sink += workload::frost_compress(corpus, config).size();
        }
        const double secs = bench_clock::seconds_between(t0, bench_clock::now());
        const double rate = static_cast<double>(kCorpusBytes) * kItersPerRepeat / secs / 1e6;
        if (rate > best) best = rate;
    }
    if (sink == 0) std::cerr << "";  // defeat dead-code elimination
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse(argc, argv);
    namespace experiment = zerodeg::experiment;

    experiment::CensusPlan plan;
    plan.seeds = opt.seeds;
    plan.make_config = [&](std::size_t, std::uint64_t seed) {
        experiment::ExperimentConfig config;
        config.master_seed = seed;
        config.engine = opt.engine;
        return config;
    };

    const experiment::ExperimentConfig defaults;
    const std::size_t ticks_per_season = static_cast<std::size_t>(
        (defaults.end - defaults.start).count() / defaults.tick.count());

    std::cout << "bench_perf_tick: engine=" << experiment::to_string(opt.engine)
              << " seeds=" << opt.seeds << " repeat=" << opt.repeat << " jobs=" << opt.jobs
              << " (" << ticks_per_season << " ticks/season)\n";

    double best_wall = 0.0;
    experiment::CensusResult result;
    for (int r = 0; r < opt.repeat; ++r) {
        const auto t0 = bench_clock::now();
        result = experiment::run_census(plan, opt.jobs);
        const double secs = bench_clock::seconds_between(t0, bench_clock::now());
        std::cout << "  repeat " << (r + 1) << "/" << opt.repeat << ": " << num(secs)
                  << " s\n";
        if (r == 0 || secs < best_wall) best_wall = secs;
    }

    const double cells_per_sec = static_cast<double>(opt.seeds) / best_wall;
    const double ticks_per_sec =
        static_cast<double>(opt.seeds) * static_cast<double>(ticks_per_season) / best_wall;

    // The same sweep under the traffic workload: how fast the PS-queue
    // event loop serves requests, end to end through the season coupling.
    experiment::CensusPlan traffic_plan = plan;
    traffic_plan.make_config = [&](std::size_t, std::uint64_t seed) {
        experiment::ExperimentConfig config;
        config.master_seed = seed;
        config.engine = opt.engine;
        config.workload = experiment::WorkloadKind::kTraffic;
        return config;
    };
    double traffic_best_wall = 0.0;
    experiment::CensusResult traffic_result;
    for (int r = 0; r < opt.repeat; ++r) {
        const auto t0 = bench_clock::now();
        traffic_result = experiment::run_census(traffic_plan, opt.jobs);
        const double secs = bench_clock::seconds_between(t0, bench_clock::now());
        std::cout << "  traffic repeat " << (r + 1) << "/" << opt.repeat << ": " << num(secs)
                  << " s\n";
        if (r == 0 || secs < traffic_best_wall) traffic_best_wall = secs;
    }
    double requests_completed = 0.0;
    for (const experiment::FaultCensus& c : traffic_result.censuses) {
        requests_completed += static_cast<double>(c.requests_completed);
    }
    const double requests_per_sec = requests_completed / traffic_best_wall;

    const double hazard_rate = hazard_kernel_evals_per_sec(opt.repeat);
    const double frost_rate = frost_codec_mb_per_sec(opt.repeat);

    std::cout << "  best wall:        " << num(best_wall) << " s\n"
              << "  cells/sec:        " << num(cells_per_sec) << "\n"
              << "  ticks/sec:        " << num(ticks_per_sec) << "\n"
              << "  traffic requests/sec: " << num(requests_per_sec) << "\n"
              << "  hazard evals/sec: " << num(hazard_rate) << "\n"
              << "  frost codec MB/s: " << num(frost_rate) << "\n"
              << "  mean system failures (sanity): "
              << num(result.summary.mean_system_failures) << "\n"
              << "  mean requests completed (sanity): "
              << num(traffic_result.summary.mean_requests_completed) << "\n";

    // bench output is a scratch artifact, not simulation state, so a plain
    // ofstream (not the core::io durable seam) is appropriate here.
    std::ofstream json(opt.out, std::ios::trunc);
    if (!json) {
        std::cerr << "error: cannot write " << opt.out << "\n";
        return 1;
    }
    json << "{\n"
         << "  \"schema\": \"zerodeg-bench-tick/1\",\n"
         << "  \"config\": {\n"
         << "    \"engine\": \"" << experiment::to_string(opt.engine) << "\",\n"
         << "    \"seeds\": " << opt.seeds << ",\n"
         << "    \"repeat\": " << opt.repeat << ",\n"
         << "    \"jobs\": " << opt.jobs << ",\n"
         << "    \"ticks_per_season\": " << ticks_per_season << ",\n"
         << "    \"mean_system_failures\": " << num(result.summary.mean_system_failures)
         << ",\n"
         << "    \"mean_requests_completed\": "
         << num(traffic_result.summary.mean_requests_completed) << "\n"
         << "  },\n"
         << "  \"metrics\": {\n"
         << "    \"cells_per_sec\": " << num(cells_per_sec) << ",\n"
         << "    \"ticks_per_sec\": " << num(ticks_per_sec) << ",\n"
         << "    \"traffic_requests_per_sec\": " << num(requests_per_sec) << ",\n"
         << "    \"hazard_evals_per_sec\": " << num(hazard_rate) << ",\n"
         << "    \"frost_codec_mb_per_sec\": " << num(frost_rate) << "\n"
         << "  },\n"
         << "  \"wall_seconds_best\": " << num(best_wall) << ",\n"
         << "  \"traffic_wall_seconds_best\": " << num(traffic_best_wall) << "\n"
         << "}\n";
    json.close();
    std::cout << "wrote " << opt.out << "\n";
    return 0;
}
