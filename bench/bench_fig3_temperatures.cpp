// FIG-3: "Temperatures outside and inside the tent."
//
// Regenerates the figure's two curves (outside air from the synthetic
// SMEAR III station, tent-internal from the Lascar logger with the paper's
// outlier removal applied), the R/I/B/F event markers, and the quantity
// Fig. 3 exists to show: the tent-minus-outside temperature difference
// collapsing step by step as the modifications land.
#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "monitoring/outlier_filter.hpp"

namespace {

using namespace zerodeg;
using core::Duration;
using core::TimePoint;

void report() {
    experiment::ExperimentConfig cfg;
    experiment::ExperimentRunner run(cfg);
    run.run();

    // The logger's record, cleaned the way Section 3.3 describes.
    core::TimeSeries inside = run.tent_logger().temperature_series();
    const std::size_t removed =
        monitoring::remove_readout_outliers(inside, run.tent_logger().readouts());
    const core::TimeSeries& outside = run.station().temperature_series();

    std::cout << "\nSeason " << cfg.start.date_string() << " .. " << cfg.end.date_string()
              << "; removed " << removed
              << " indoor-readout outlier samples from the logger series\n";
    std::cout << "(tent-internal data begins " << cfg.logger_start.date_string()
              << " -- the logger arrived late, as in the paper)\n\n";

    experiment::ascii_plot(std::cout, inside, &outside);

    std::cout << "\nTent modification events (Fig. 3's letter markers):\n";
    for (const auto& ev : cfg.tent_mods) {
        std::cout << "  " << thermal::short_code(ev.mod) << "  " << ev.when.to_string() << "  "
                  << thermal::to_string(ev.mod) << '\n';
    }

    // The headline shape: inside-minus-outside delta per phase.
    std::cout << "\nMean tent-minus-outside temperature by phase:\n";
    experiment::TablePrinter table(
        std::cout, {"phase", "from", "to", "mean dT (K)", "tent max (degC)"},
        {34, 12, 12, 12, 16});
    TimePoint prev = cfg.logger_start;
    std::string prev_label = "before modifications";
    auto emit_phase = [&](const std::string& label, TimePoint from, TimePoint to) {
        if (to <= from) return;
        const core::TimeSeries in_slice = run.tent_truth_temperature().slice(from, to);
        double delta_sum = 0.0;
        std::size_t n = 0;
        for (const core::Sample& s : in_slice) {
            if (const auto o = outside.interpolate(s.time)) {
                delta_sum += s.value - *o;
                ++n;
            }
        }
        if (n == 0) return;
        table.row({label, from.date_string(), to.date_string(),
                   experiment::fmt(delta_sum / static_cast<double>(n), 1),
                   experiment::fmt(in_slice.stats().max, 1)});
    };
    for (const auto& ev : cfg.tent_mods) {
        emit_phase(prev_label, prev, ev.when);
        prev = ev.when;
        prev_label = std::string("after ") + thermal::short_code(ev.mod) + " (" +
                     thermal::to_string(ev.mod) + ")";
    }
    emit_phase(prev_label, prev, cfg.end);

    std::cout << "\npaper shape: the tent retains heat until each modification opens the\n"
                 "envelope; outside minima near -22 degC; inside follows outside ever more\n"
                 "closely toward the end.  measured outside minimum: "
              << experiment::fmt(outside.stats().min, 1) << " degC\n\n";
}

void bm_one_day_of_experiment(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        experiment::ExperimentConfig cfg;
        cfg.end = cfg.start + Duration::days(2);
        cfg.load.corpus.total_bytes = 64 * 1024;
        cfg.load.target_blocks = 20;
        experiment::ExperimentRunner run(cfg);
        run.run_until(cfg.start + Duration::days(1));
        state.ResumeTiming();
        run.run_until(cfg.start + Duration::days(2));
        benchmark::DoNotOptimize(run.tent_truth_temperature().size());
    }
}
BENCHMARK(bm_one_day_of_experiment)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "FIG-3: temperatures outside and inside the tent", report);
}
