// TAB-PROTO: the prototype weekend of Section 3.1 (Feb 12-15, 2010).
//
// Paper: outside minimum -10.2 degC, average -9.2 degC; lm-sensors showed
// the CPU as cold as -4 degC; S.M.A.R.T. stayed clean; the PC survived.
#include "bench_common.hpp"
#include "experiment/prototype.hpp"
#include "experiment/report.hpp"

namespace {

using namespace zerodeg;

void report() {
    const experiment::PrototypeResult r = experiment::run_prototype();

    experiment::print_comparison(
        std::cout, "Prototype weekend, Feb 12-15 2010 (paper Section 3.1)",
        {
            {"outside minimum", "-10.2 degC", experiment::fmt(r.outside_min.value(), 1) + " degC",
             "synthetic weather, same regime"},
            {"outside average", "-9.2 degC", experiment::fmt(r.outside_mean.value(), 1) + " degC",
             "climatology anchor on Feb 13"},
            {"coldest CPU reading (lm-sensors)", "-4 degC",
             experiment::fmt(r.cpu_min_reported.value(), 1) + " degC",
             "near-idle CPU a few K above intake"},
            {"machine survived the weekend", "yes", r.survived ? "yes" : "NO", ""},
            {"S.M.A.R.T. clean", "yes", r.smart_ok ? "yes" : "NO",
             "long self-test passes afterwards"},
        });

    std::cout << "\nBox-internal minimum: " << experiment::fmt(r.box_min.value(), 1)
              << " degC (the plastic boxes \"did not really impede air flow or contain\n"
                 "any heat\" -- they only kept snow out)\n\n";
}

void bm_prototype_weekend(benchmark::State& state) {
    for (auto _ : state) {
        const experiment::PrototypeResult r = experiment::run_prototype();
        benchmark::DoNotOptimize(r.outside_min.value());
    }
}
BENCHMARK(bm_prototype_weekend)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "TAB-PROTO: the prototype weekend", report);
}
