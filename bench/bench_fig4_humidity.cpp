// FIG-4: "Relative humidities inside and outside the tent."
//
// Regenerates the two RH curves and the two properties the paper reads off
// the figure: (1) the tent retains more stable relative humidities than the
// outside air, and (2) as airflow is increased to dump heat, the inside RH
// begins to vary more intensely.
#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "monitoring/outlier_filter.hpp"
#include "weather/psychrometrics.hpp"

namespace {

using namespace zerodeg;
using core::TimePoint;

void report() {
    experiment::ExperimentConfig cfg;
    experiment::ExperimentRunner run(cfg);
    run.run();

    core::TimeSeries inside = run.tent_logger().humidity_series();
    const std::size_t removed =
        monitoring::remove_readout_outliers(inside, run.tent_logger().readouts());
    const core::TimeSeries& outside = run.station().humidity_series();

    std::cout << "\n(removed " << removed
              << " indoor-readout outliers; inside data starts "
              << cfg.logger_start.date_string() << " -- delayed logger arrival)\n\n";
    experiment::ascii_plot(std::cout, inside, &outside);

    // Stability comparison: sliding-day RH standard deviation.
    const auto windowed_stddev = [](const core::TimeSeries& s, TimePoint from, TimePoint to) {
        return s.stats_between(from, to).stddev;
    };

    // Phase 1: early, tent mostly closed (logger start .. mod B).
    const TimePoint mod_b = cfg.tent_mods[2].when;
    std::cout << "\nRH variability (standard deviation, % RH):\n";
    experiment::TablePrinter table(std::cout,
                                   {"window", "outside RH stddev", "tent RH stddev"},
                                   {42, 18, 16});
    table.row({"closed tent (" + cfg.logger_start.date_string() + " .. " +
                   mod_b.date_string() + ")",
               experiment::fmt(windowed_stddev(outside, cfg.logger_start, mod_b), 1),
               experiment::fmt(windowed_stddev(inside, cfg.logger_start, mod_b), 1)});
    table.row({"ventilated tent (" + mod_b.date_string() + " .. " + cfg.end.date_string() + ")",
               experiment::fmt(windowed_stddev(outside, mod_b, cfg.end), 1),
               experiment::fmt(windowed_stddev(inside, mod_b, cfg.end), 1)});

    std::cout << "\npaper shape: tent RH is more stable than outside while the envelope is\n"
                 "closed, and the variability grows once airflow is increased (mods B/D/F).\n"
                 "Sharp outside drops still show through, RH spans roughly 20..100%.\n\n";
}

void bm_rebase_humidity(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(weather::rebase_humidity(core::Celsius{-12.0},
                                                          core::RelHumidity{85.0},
                                                          core::Celsius{3.0})
                                     .value());
    }
}
BENCHMARK(bm_rebase_humidity);

void bm_dew_point(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            weather::dew_point(core::Celsius{-5.0}, core::RelHumidity{80.0}).value());
    }
}
BENCHMARK(bm_dew_point);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(
        argc, argv, "FIG-4: relative humidities inside and outside the tent", report);
}
