// TAB-HASHES: the wrong-hash forensics of Section 4.2.2.
//
// Paper: 5 wrong md5sums in 27,627 runs (two tent hosts x1 each, one
// basement host x3); a recovered tarball showed exactly one corrupted block
// of its 396; ~3.2 billion memory-page operations over the experiment give a
// fault ratio around one in 570 million; all affected hosts had non-ECC RAM.
#include "bench_common.hpp"
#include "experiment/census.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "workload/md5.hpp"

namespace {

using namespace zerodeg;

constexpr int kSeeds = 8;

void report() {
    double runs = 0.0, wrong = 0.0, tent_wrong = 0.0, basement_wrong = 0.0, page_ops = 0.0;
    std::size_t one_block_incidents = 0, incidents_with_forensics = 0;
    std::size_t block_count = 0;

    for (int i = 0; i < kSeeds; ++i) {
        experiment::ExperimentConfig cfg;
        cfg.master_seed = 555 + static_cast<std::uint64_t>(i);
        experiment::ExperimentRunner run(cfg);
        run.run();
        const experiment::FaultCensus c = experiment::take_census(run);
        runs += static_cast<double>(c.load_runs);
        wrong += static_cast<double>(c.wrong_hashes);
        tent_wrong += static_cast<double>(c.wrong_hashes_tent);
        basement_wrong += static_cast<double>(c.wrong_hashes_basement);
        page_ops += static_cast<double>(c.page_ops_non_ecc);
        block_count = run.load().job().block_count();
        for (const workload::WrongHashIncident& inc : run.load().incidents()) {
            if (inc.total_blocks > 0) {
                ++incidents_with_forensics;
                if (inc.corrupt_blocks == 1) ++one_block_incidents;
            }
        }
    }

    const double per_run_rate_paper = 5.0 / 27627.0;
    const double per_run_rate = wrong / runs;
    // Ops per corruption over the non-ECC hosts (the paper's denominator).
    const double page_ratio = page_ops / wrong;

    experiment::print_comparison(
        std::cout,
        "Wrong-hash census over " + std::to_string(kSeeds) + " seasons (totals below are "
        "per-season means)",
        {
            {"synthetic-load runs", "27,627", experiment::fmt(runs / kSeeds, 0),
             "longer window than the paper's census"},
            {"wrong md5 hashes", "5", experiment::fmt(wrong / kSeeds, 1),
             "scales with runs at the same rate"},
            {"wrong-hash rate per run", experiment::fmt(per_run_rate_paper * 1e4, 2) + " x1e-4",
             experiment::fmt(per_run_rate * 1e4, 2) + " x1e-4", "the transferable quantity"},
            {"memory page ops per corruption", "~570 million",
             experiment::fmt(page_ratio / 1e6, 0) + " million",
             "configured flip probability 1/570e6"},
            {"compression blocks per tarball", "396", std::to_string(block_count),
             "block size chosen for ~396"},
            {"corrupted blocks per bad tarball", "1 of 396",
             experiment::fmt(one_block_incidents == 0
                                 ? 0.0
                                 : static_cast<double>(one_block_incidents) /
                                       static_cast<double>(incidents_with_forensics),
                             2) +
                 " frac = exactly 1",
             "single-bit flip -> single block"},
            {"affected hosts had ECC", "no (all three non-ECC)",
             "vendor C (ECC) absorbed flips",
             "ECC hosts report corrected errors"},
        });

    std::cout << "\ntent vs basement wrong hashes (mean per season): "
              << experiment::fmt(tent_wrong / kSeeds, 1) << " vs "
              << experiment::fmt(basement_wrong / kSeeds, 1)
              << "   (paper: 2 vs 3 -- location-independent, as expected for DRAM\n"
                 "    soft errors; the split is Poisson luck)\n\n";
}

void bm_md5_throughput(benchmark::State& state) {
    std::vector<std::uint8_t> data(1 << 20, 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(workload::md5(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(bm_md5_throughput);

void bm_load_job_clean_run(benchmark::State& state) {
    workload::LoadJobConfig cfg;
    cfg.corpus.total_bytes = 256 * 1024;
    cfg.target_blocks = 50;
    workload::LoadJob job(cfg, 2010);
    faults::MemoryFaultModel mem(faults::MemoryFaultParams{}, core::RngStream(1, "m"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(job.run(mem, false).hash_ok);
    }
}
BENCHMARK(bm_load_job_clean_run);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "TAB-HASHES: wrong-hash forensics", report);
}
