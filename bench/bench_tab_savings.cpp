// TAB-SAVINGS: the Section 1 savings bracket.
//
// Paper: "Using outside air to cool the data center can yield energy savings
// from 40% to 67%, according to HP and Intel respectively" -- HP's figure is
// for Wynyard (North East England), Intel's for their New Mexico PoC.  The
// paper's thesis is that a Nordic climate extends the feasible region; the
// sweep below shows savings against climate, with the bracket reproduced by
// the milder climates and Helsinki at the top.
#include "bench_common.hpp"
#include "energy/economizer.hpp"
#include "experiment/report.hpp"
#include "weather/trace_io.hpp"

namespace {

using namespace zerodeg;
using core::TimePoint;
using core::Watts;

energy::SeasonCoolingSummary season_for_offset(double offset_deg, std::uint64_t seed = 7) {
    weather::WeatherConfig cfg = weather::helsinki_full_year_config();
    for (auto& a : cfg.anchors) a.mean += core::Celsius{offset_deg};
    if (offset_deg > 5.0) cfg.cold_snaps.clear();  // no Nordic fronts in warm climates
    weather::WeatherModel model(cfg, seed);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 1, 2),
                                TimePoint::from_date(2010, 12, 30), core::Duration::hours(2));
    return energy::compare_cooling(trace, Watts::from_kilowatts(75.0),
                                   energy::AirEconomizer{});
}

void report() {
    std::cout << "\nCooling-energy savings of an air economizer vs. a conventional plant,\n"
                 "75 kW IT load, full calendar year, climate = Helsinki baseline + offset:\n\n";
    experiment::TablePrinter table(
        std::cout,
        {"climate (offset)", "free-cooling hours", "savings", "paper reference"},
        {30, 20, 10, 34});

    struct Row {
        double offset;
        const char* label;
        const char* ref;
    };
    const Row rows[] = {
        {0.0, "Helsinki 2010 (+0 degC)", "this paper's climate: best case"},
        {8.0, "North-East England (+8)", "HP Wynyard: ~40% cited"},
        {14.0, "New Mexico winter (+14)", "Intel PoC: up to 67% cited"},
        {22.0, "warm temperate (+22)", "below the bracket"},
        {30.0, "hot climate (+30)", "economizer rarely engages"},
    };
    for (const Row& r : rows) {
        const auto s = season_for_offset(r.offset);
        table.row({r.label,
                   experiment::fmt(s.free_cooling_hours, 0) + " / " +
                       experiment::fmt(s.hours, 0),
                   experiment::fmt_pct(s.savings_fraction(), 0), r.ref});
    }

    std::cout << "\npaper shape: the 40%..67% HP/Intel bracket falls out of the mid-range\n"
                 "climates, and the Nordic case saturates above it -- the reason running\n"
                 "servers around zero degrees is worth the tent.\n\n";
}

void bm_compare_cooling_season(benchmark::State& state) {
    weather::WeatherModel model(weather::helsinki_2010_config(), 7);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 2, 10),
                                TimePoint::from_date(2010, 5, 20), core::Duration::hours(1));
    const energy::AirEconomizer eco;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            energy::compare_cooling(trace, Watts::from_kilowatts(75.0), eco)
                .savings_fraction());
    }
}
BENCHMARK(bm_compare_cooling_season)->Unit(benchmark::kMicrosecond);

void bm_generate_season_trace(benchmark::State& state) {
    for (auto _ : state) {
        weather::WeatherModel model(weather::helsinki_2010_config(), 7);
        const auto trace = weather::generate_trace(model, TimePoint::from_date(2010, 2, 10),
                                                   TimePoint::from_date(2010, 5, 20),
                                                   core::Duration::hours(1));
        benchmark::DoNotOptimize(trace.size());
    }
}
BENCHMARK(bm_generate_season_trace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "TAB-SAVINGS: free-air cooling savings (40%..67%)", report);
}
