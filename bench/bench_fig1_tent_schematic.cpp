// FIG-1: "Schematic for tent shielding the computer hardware from rain and
// snow."
//
// Fig. 1 is a diagram, not data; we regenerate it as an annotated ASCII
// schematic plus the tent model's actual thermal parameters in each
// modification state — the quantities the diagram's features map to.
#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "thermal/enclosure.hpp"

namespace {

using namespace zerodeg;
using core::MetersPerSecond;

void report() {
    std::cout << R"(
                   reflective rescue-foil cover (mod R)
                 ~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~
                /  outer polyester fly                  \
               /   ..............................        \
              /   :  inner tent (cut open, mod I) :       \
    front    /    :   +--------+  +--------+      :        \
    door    |     :   | tower  |  | tower  | ...  :         |   wind -->
    half-   |     :   |  PCs   |  |  2U    |      :         |   through
    open    |     :   +--------+  +--------+      :         |   floor gap
    (D)      \    :   [tabletop fan, mod F]       :        /
              \   :...............................:      /
               \    bottom tarpaulin opened (mod B)      /
                +---------------------------------------+
               elevated roof terrace (cool air underneath)
)";
    std::cout << "\nThermal-network view of the schematic (TentModel parameters):\n\n";

    const thermal::TentConfig cfg;
    experiment::TablePrinter table(
        std::cout, {"configuration", "envelope G (W/K), calm", "G at 6 m/s wind",
                    "solar aperture (m^2)"},
        {40, 24, 18, 20});

    const auto row = [&table](const char* name, std::initializer_list<thermal::TentMod> mods) {
        thermal::TentModel tent;
        for (const auto m : mods) tent.apply_modification(m);
        const bool foil = tent.has_modification(thermal::TentMod::kReflectiveFoil);
        table.row({name,
                   experiment::fmt(tent.effective_conductance(MetersPerSecond{0.0}).value(), 1),
                   experiment::fmt(tent.effective_conductance(MetersPerSecond{6.0}).value(), 1),
                   experiment::fmt(foil ? tent.config().solar_aperture_foil_m2
                                        : tent.config().solar_aperture_m2,
                                   2)});
    };
    row("as pitched (no modifications)", {});
    row("+ R: reflective foil", {thermal::TentMod::kReflectiveFoil});
    row("+ I: inner tent removed",
        {thermal::TentMod::kReflectiveFoil, thermal::TentMod::kInnerTentRemoved});
    row("+ B: bottom tarpaulin opened",
        {thermal::TentMod::kReflectiveFoil, thermal::TentMod::kInnerTentRemoved,
         thermal::TentMod::kBottomOpened});
    row("+ D: front door half-open",
        {thermal::TentMod::kReflectiveFoil, thermal::TentMod::kInnerTentRemoved,
         thermal::TentMod::kBottomOpened, thermal::TentMod::kFrontDoorHalfOpen});
    row("+ F: tabletop fan (all mods)",
        {thermal::TentMod::kReflectiveFoil, thermal::TentMod::kInnerTentRemoved,
         thermal::TentMod::kBottomOpened, thermal::TentMod::kFrontDoorHalfOpen,
         thermal::TentMod::kFanInstalled});
    std::cout << "\nheat capacity of tent air + contents: "
              << experiment::fmt(cfg.heat_capacity.value() / 1000.0, 0) << " kJ/K\n\n";
}

void bm_tent_step(benchmark::State& state) {
    thermal::TentModel tent;
    tent.set_equipment_power(core::Watts{700.0});
    weather::WeatherSample outside;
    outside.temperature = core::Celsius{-15.0};
    outside.humidity = core::RelHumidity{85.0};
    outside.wind = MetersPerSecond{4.0};
    for (auto _ : state) {
        tent.step(core::Duration::minutes(10), outside);
        benchmark::DoNotOptimize(tent.air().temperature.value());
    }
}
BENCHMARK(bm_tent_step);

void bm_effective_conductance(benchmark::State& state) {
    thermal::TentModel tent;
    tent.apply_modification(thermal::TentMod::kBottomOpened);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tent.effective_conductance(MetersPerSecond{5.0}).value());
    }
}
BENCHMARK(bm_effective_conductance);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "FIG-1: tent schematic and thermal parameters", report);
}
