// TAB-FAULTS: the fault census of Section 4 / 4.2.1.
//
// Paper: of 18 hosts, one (the known-flaky vendor-B host #15, in the tent)
// had two transient system failures and was retired indoors -- a 5.6% host
// failure rate, vs Intel's 4.46% in their air-economizer PoC; the control
// group had zero failures; one sensor chip went erratic (-111 degC) after
// extreme cold and recovered on a warm reboot; both defective loaner
// switches died of their inherent defect.
//
// One physical season is one sample; the census is regenerated as a Monte
// Carlo mean over seeds plus one narrated example season.
#include "bench_common.hpp"
#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "faults/hazard.hpp"

namespace {

using namespace zerodeg;

constexpr int kSeeds = 10;

void report() {
    // The census phase: independent seasons sharded across --jobs workers.
    // Aggregate numbers are byte-identical for every jobs value; only the
    // wall clock changes.
    experiment::CensusPlan plan;
    plan.seeds = kSeeds;
    const benchutil::WallTimer timer;
    const experiment::CensusResult result = benchutil::run_plan(plan);
    std::cout << "census phase: " << kSeeds << " seasons in "
              << experiment::fmt(timer.seconds(), 2) << " s (jobs=" << benchutil::jobs()
              << ")\n";
    const experiment::CensusSummary& s = result.summary;

    experiment::print_comparison(
        std::cout, "Fault census over " + std::to_string(kSeeds) + " simulated seasons",
        {
            {"fleet host-failure rate", "5.6% (1/18)",
             experiment::fmt_pct(s.mean_fleet_failure_rate), "mean over seeds"},
            {"Intel economizer comparator", "4.46%", "(fixed reference)", "from [1]"},
            {"tent-group host-failure rate", "11% (1/9)",
             experiment::fmt_pct(s.mean_tent_failure_rate),
             "failures concentrate in the tent"},
            {"system failures per season", "2 (both host #15)",
             experiment::fmt(s.mean_system_failures, 2), "mostly the flaky B series"},
            {"seasons with a sensor-chip incident", "1 of 1 (-111 degC episode)",
             experiment::fmt_pct(s.frac_runs_with_sensor_incident, 0),
             "longest-exposed host, deep cold"},
            {"seasons with switch failures", "1 of 1 (both loaners died)",
             experiment::fmt_pct(s.frac_runs_with_switch_failures, 0),
             "inherent defect, environment-independent"},
        });

    // One season narrated, like Section 4.2.1.
    experiment::ExperimentConfig cfg;
    experiment::ExperimentRunner run(cfg);
    run.run();
    const experiment::FaultCensus c = experiment::take_census(run);
    std::cout << "\nExample season (seed " << cfg.master_seed << "):\n"
              << "  system failures: " << c.system_failures << " (" << c.transient_failures
              << " transient / " << c.permanent_failures << " permanent), tent hosts failed: "
              << c.tent_hosts_failed << ", basement hosts failed: " << c.basement_hosts_failed
              << "\n  sensor incidents: " << c.sensor_incidents
              << ", switch failures: " << c.switch_failures << "\n\nFault log:\n";
    for (const faults::FaultRecord& r : run.fault_log().records()) {
        std::cout << "  " << r.time.to_string() << "  " << r.source << "  "
                  << faults::to_string(r.component) << " (" << faults::to_string(r.severity)
                  << ") " << (r.in_tent ? "[tent]" : "[basement]") << "  " << r.description
                  << '\n';
    }

    // Common-cause check (research question 3): nothing should cluster.
    const auto clusters = faults::CommonCauseDetector().analyze(run.fault_log());
    std::cout << "\nCommon-cause clusters (>=3 hosts, same component, 24 h window): "
              << clusters.size()
              << "   (paper found none -- no component type failed en masse)\n\n";
}

void bm_hazard_eval(benchmark::State& state) {
    const faults::HostHazardModel model;
    faults::StressState stress;
    stress.intake = core::Celsius{-15.0};
    stress.humidity = core::RelHumidity{85.0};
    stress.age_hours = 22000.0;
    stress.cycling_rate_k_per_h = 1.5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.hazard_per_hour(stress));
    }
}
BENCHMARK(bm_hazard_eval);

void bm_full_season(benchmark::State& state) {
    for (auto _ : state) {
        experiment::ExperimentConfig cfg;
        cfg.load.corpus.total_bytes = 64 * 1024;
        cfg.load.target_blocks = 20;
        experiment::ExperimentRunner run(cfg);
        run.run();
        benchmark::DoNotOptimize(run.fault_log().count());
    }
}
BENCHMARK(bm_full_season)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "TAB-FAULTS: system-failure census", report);
}
