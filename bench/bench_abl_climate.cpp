// ABL-CLIMATE: does the failure rate track the climate? (research question 1)
//
// "If we can bring the server equipment to tolerate North European
// conditions, we have shown that Intel's results from New Mexico and HP's
// from North East England can be extended to most parts of the globe."
// This ablation runs the identical experiment under shifted climates and
// reports the fleet failure census per climate: the cold end barely moves
// (Arrhenius slows chemistry even as cold-stress and cycling push back),
// which is the paper's core empirical claim.
#include <iterator>

#include "bench_common.hpp"
#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"

namespace {

using namespace zerodeg;

constexpr int kSeedsPerClimate = 4;

experiment::ExperimentConfig config_for(double offset_deg, int seed_index) {
    experiment::ExperimentConfig cfg;
    cfg.master_seed = 8100 + static_cast<std::uint64_t>(seed_index);
    for (auto& a : cfg.weather.anchors) a.mean += core::Celsius{offset_deg};
    if (offset_deg > 5.0) cfg.weather.cold_snaps.clear();
    // Keep the load cheap; the census is about failures.
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

void report() {
    std::cout << "\nFleet failure census vs climate (same fleet, same season, same seeds;\n"
              << kSeedsPerClimate << " seeds per climate):\n\n";

    struct Row {
        double offset;
        const char* name;
    };
    const Row rows[] = {
        {-8.0, "arctic (-8 degC)"},
        {0.0, "Helsinki 2010 (paper)"},
        {8.0, "NE England (+8)"},
        {16.0, "New Mexico-ish (+16)"},
        {26.0, "tropical (+26)"},
    };
    constexpr std::size_t kClimates = std::size(rows);

    // Flatten (climate x seed) into one census plan so every cell shards
    // across --jobs workers and the sweep can journal (--checkpoint /
    // --resume); reduce per climate in row order afterwards.
    const benchutil::WallTimer timer;
    experiment::CensusPlan plan;
    plan.base_seed = 8100;
    plan.seeds = kClimates * kSeedsPerClimate;
    plan.make_config = [&rows](std::size_t cell, std::uint64_t /*seed*/) {
        const std::size_t climate = cell / kSeedsPerClimate;
        const int seed_index = static_cast<int>(cell % kSeedsPerClimate);
        return config_for(rows[climate].offset, seed_index);
    };
    const std::vector<experiment::FaultCensus> cells = benchutil::run_plan(plan).censuses;
    std::cout << "sweep: " << cells.size() << " seasons in "
              << experiment::fmt(timer.seconds(), 2) << " s (jobs=" << benchutil::jobs()
              << ")\n\n";

    experiment::TablePrinter table(
        std::cout,
        {"climate (offset)", "fleet failure rate", "system failures/season",
         "vs Intel 4.46%"},
        {28, 19, 23, 15});
    for (std::size_t climate = 0; climate < kClimates; ++climate) {
        const std::vector<experiment::FaultCensus> group(
            cells.begin() + static_cast<std::ptrdiff_t>(climate * kSeedsPerClimate),
            cells.begin() + static_cast<std::ptrdiff_t>((climate + 1) * kSeedsPerClimate));
        const experiment::CensusSummary s = experiment::summarize(group);
        table.row({rows[climate].name, experiment::fmt_pct(s.mean_fleet_failure_rate),
                   experiment::fmt(s.mean_system_failures, 2),
                   s.mean_fleet_failure_rate <= 0.0446 * 1.6 ? "same band" : "elevated"});
    }

    std::cout << "\npaper shape: the cold end of the sweep does NOT produce a failure\n"
                 "wave -- Arrhenius slows electronics wear roughly as fast as cold stress\n"
                 "and thermal cycling add it back -- so the feasible region for free-air\n"
                 "cooling extends across the cold half of the globe, the paper's thesis.\n"
                 "Heat is the direction that hurts.\n\n";
}

void bm_census_one_season(benchmark::State& state) {
    for (auto _ : state) {
        experiment::ExperimentConfig cfg;
        cfg.end = cfg.start + core::Duration::days(5);
        cfg.load.corpus.total_bytes = 64 * 1024;
        cfg.load.target_blocks = 20;
        experiment::ExperimentRunner run(cfg);
        run.run();
        benchmark::DoNotOptimize(experiment::take_census(run).system_failures);
    }
}
BENCHMARK(bm_census_one_season)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv,
                                   "ABL-CLIMATE: failure census across climates", report);
}
