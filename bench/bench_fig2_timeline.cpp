// FIG-2: "Dates of when servers were installed."
//
// Regenerates the installation timeline of Fig. 2 — the tent hosts' Fig.-2
// numbering, their basement twins, the prototype marker, and the #15 -> #19
// replacement — from the machine-readable install plan.
#include "bench_common.hpp"
#include "experiment/config.hpp"
#include "experiment/report.hpp"
#include "hardware/fleet.hpp"

namespace {

using namespace zerodeg;

void report() {
    std::cout << "\nFirst prototype: 2010-02-12 (generic PC between two plastic boxes)\n";
    std::cout << "Start of testing: 2010-02-19\n\n";

    experiment::TablePrinter table(std::cout,
                                   {"date", "tent host", "vendor", "basement twin"},
                                   {12, 10, 26, 14});
    for (const hardware::InstallEvent& ev : hardware::paper_install_plan()) {
        if (ev.placement != hardware::Placement::kTent) continue;
        table.row({ev.date.date_string(), "#" + std::to_string(ev.host_id),
                   hardware::to_string(ev.vendor), "#" + std::to_string(ev.pair_id)});
    }
    std::cout << "\nReplacement of machine #15: retired ~2010-03-17 after its second\n"
                 "failure; replacement host #19 (same vendor-B series) installed\n"
                 "~2010-03-26 (paper Fig. 2's final mark).\n";

    const hardware::Fleet fleet = hardware::make_paper_fleet(1);
    std::cout << "\nFleet check: " << fleet.size() << " hosts installed initially ("
              << fleet.count_vendor(hardware::Vendor::kA) << " vendor A, "
              << fleet.count_vendor(hardware::Vendor::kB) << " vendor B, "
              << fleet.count_vendor(hardware::Vendor::kC) << " vendor C; "
              << fleet.count(hardware::Placement::kTent) << " tent / "
              << fleet.count(hardware::Placement::kBasement) << " basement)\n"
              << "paper: 10 A + 4 B + 4 C, nine per group, 19 computers in total\n\n";
}

void bm_build_fleet(benchmark::State& state) {
    for (auto _ : state) {
        hardware::Fleet fleet = hardware::make_paper_fleet(1);
        benchmark::DoNotOptimize(fleet.size());
    }
}
BENCHMARK(bm_build_fleet);

void bm_install_plan(benchmark::State& state) {
    for (auto _ : state) {
        auto plan = hardware::paper_install_plan();
        benchmark::DoNotOptimize(plan.data());
    }
}
BENCHMARK(bm_install_plan);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "FIG-2: server installation timeline", report);
}
