// ABL-ECC: ablation of error-correcting memory (design decision 4).
//
// Section 4.2.2's punchline is that every wrong-hash host ran non-ECC RAM.
// This ablation runs the same load stream against both memory types and
// sweeps the soft-error rate, showing the wrong-hash census the experiment
// *would* have produced had the department's recycled desktops carried ECC.
#include <iterator>

#include "bench_common.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/report.hpp"
#include "faults/memory_faults.hpp"
#include "workload/load_job.hpp"

namespace {

using namespace zerodeg;

void report() {
    workload::LoadJobConfig job_cfg;
    job_cfg.corpus.total_bytes = 256 * 1024;
    job_cfg.target_blocks = 50;
    workload::LoadJob job(job_cfg, 2010);

    constexpr int kRuns = 30000;  // ~ a 10-host season of 10-minute cycles
    constexpr double kScales[] = {0.25, 1.0, 4.0, 16.0};

    std::cout << "\nWrong hashes over " << kRuns
              << " load runs per cell (flip probability swept around the paper's\n"
                 "1-in-570M; page ops per run: "
              << job.page_ops_per_run() << "):\n\n";

    // Each scale cell derives its own RNG streams, so cells shard across
    // --jobs workers; rows come back in sweep order either way.
    struct Cell {
        std::uint64_t plain_wrong = 0, ecc_wrong = 0, corrected = 0;
    };
    const std::uint64_t page_ops = job.page_ops_per_run();
    const experiment::SweepRunner sweep(benchutil::jobs());
    const std::vector<Cell> cells =
        sweep.map(std::size(kScales), [page_ops, &kScales](std::size_t idx) {
            faults::MemoryFaultParams params;
            params.flip_probability_per_page_op = kScales[idx] / 570e6;
            faults::MemoryFaultModel plain(params, core::RngStream(1, "plain"));
            faults::MemoryFaultModel ecc(params, core::RngStream(1, "ecc"));

            Cell cell;
            for (int i = 0; i < kRuns; ++i) {
                // The census only needs the corruption outcome; use the fault
                // model directly (the full pipeline is exercised in TAB-HASHES).
                cell.plain_wrong += plain.run(page_ops, false).corrupting_flips > 0;
                const auto e = ecc.run(page_ops, true);
                cell.ecc_wrong += e.corrupting_flips > 0;
                cell.corrected += e.corrected;
            }
            return cell;
        });

    experiment::TablePrinter table(
        std::cout,
        {"flip prob (per page op)", "non-ECC wrong hashes", "ECC wrong hashes",
         "ECC corrected"},
        {24, 21, 17, 14});

    for (std::size_t idx = 0; idx < std::size(kScales); ++idx) {
        char label[48];
        std::snprintf(label, sizeof label, "%.2g x paper rate", kScales[idx]);
        table.row({label, std::to_string(cells[idx].plain_wrong),
                   std::to_string(cells[idx].ecc_wrong),
                   std::to_string(cells[idx].corrected)});
    }

    std::cout << "\npaper shape: at the observed rate a non-ECC fleet shows a handful of\n"
                 "wrong hashes per season while ECC absorbs essentially all of them --\n"
                 "consistent with all three affected hosts lacking \"error-correcting\n"
                 "parities\" and the ECC'd 2U servers reporting nothing.\n\n";
}

void bm_memory_fault_run(benchmark::State& state) {
    faults::MemoryFaultModel m(faults::MemoryFaultParams{}, core::RngStream(1, "m"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.run(116'000, false).corrupting_flips);
    }
}
BENCHMARK(bm_memory_fault_run);

}  // namespace

int main(int argc, char** argv) {
    return zerodeg::benchutil::run(argc, argv, "ABL-ECC: ECC vs non-ECC wrong-hash census",
                                   report);
}
