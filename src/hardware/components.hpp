// Component models: CPU, memory modules, hard drives, PSU, fans, and the
// RAID arrangements of Section 3.4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "hardware/smart.hpp"

namespace zerodeg::hardware {

using core::Celsius;
using core::Duration;
using core::Watts;

/// CPU power model: idle floor plus a load-proportional span.
class Cpu {
public:
    Cpu(std::string model, Watts idle, Watts max);

    /// Load in [0, 1].
    void set_load(double load);
    [[nodiscard]] double load() const { return load_; }
    [[nodiscard]] Watts power() const;
    [[nodiscard]] const std::string& model() const { return model_; }

private:
    std::string model_;
    Watts idle_;
    Watts max_;
    double load_ = 0.0;
};

/// A DIMM.  ECC is the property Section 4.2.2 turns on: "all three hosts
/// that have reported faulty hashes contain memory chips without
/// error-correcting parities".
class MemoryModule {
public:
    MemoryModule(std::size_t megabytes, bool ecc) : megabytes_(megabytes), ecc_(ecc) {}

    [[nodiscard]] std::size_t megabytes() const { return megabytes_; }
    [[nodiscard]] bool has_ecc() const { return ecc_; }

private:
    std::size_t megabytes_;
    bool ecc_;
};

/// A hard drive: SMART state plus an operational flag the fault engine and
/// RAID layer manipulate.
class HardDrive {
public:
    explicit HardDrive(std::string model);

    void accrue(Duration dt, Celsius temperature) { smart_.accrue(dt, temperature); }
    void power_cycle() { smart_.power_cycle(); }

    void fail() { failed_ = true; }
    [[nodiscard]] bool failed() const { return failed_; }

    [[nodiscard]] SmartData& smart() { return smart_; }
    [[nodiscard]] const SmartData& smart() const { return smart_; }
    [[nodiscard]] const std::string& model() const { return model_; }
    [[nodiscard]] Watts power() const { return failed_ ? Watts{0.0} : Watts{7.0}; }

private:
    std::string model_;
    SmartData smart_;
    bool failed_ = false;
};

/// RAID layouts from Section 3.4.
enum class RaidLayout {
    kNone,            ///< vendor B: single drive, no redundancy
    kSoftwareMirror,  ///< vendor A: Linux md RAID-1 over two drives
    kMirrorPlusParity ///< vendor C: HW mirror (2) + parity stripe (3)
};

[[nodiscard]] const char* to_string(RaidLayout layout);

/// Redundancy calculator over a drive set.
class RaidArray {
public:
    RaidArray(RaidLayout layout, std::vector<HardDrive> drives);

    /// Data still accessible given the current per-drive failure states?
    [[nodiscard]] bool data_available() const;
    /// Would one more (worst-placed) drive failure lose data?
    [[nodiscard]] bool degraded() const;
    [[nodiscard]] std::size_t failed_drives() const;

    [[nodiscard]] RaidLayout layout() const { return layout_; }
    [[nodiscard]] std::vector<HardDrive>& drives() { return drives_; }
    [[nodiscard]] const std::vector<HardDrive>& drives() const { return drives_; }
    [[nodiscard]] Watts power() const;

private:
    RaidLayout layout_;
    std::vector<HardDrive> drives_;
};

/// Power supply with a simple efficiency curve; its loss is heat the
/// enclosure must reject (and part of the power-meter reading).
class PowerSupply {
public:
    PowerSupply(Watts rating, double efficiency_at_half_load);

    /// Wall power drawn to deliver `dc_load` to the components.
    [[nodiscard]] Watts input_for(Watts dc_load) const;
    [[nodiscard]] Watts rating() const { return rating_; }

private:
    Watts rating_;
    double efficiency_;
};

/// Case fan: moves air, draws a little power; the fault engine can seize it.
class FanUnit {
public:
    explicit FanUnit(int nominal_rpm) : nominal_rpm_(nominal_rpm) {}

    void seize() { seized_ = true; }
    [[nodiscard]] bool seized() const { return seized_; }
    [[nodiscard]] int rpm() const { return seized_ ? 0 : nominal_rpm_; }
    [[nodiscard]] Watts power() const { return seized_ ? Watts{0.0} : Watts{2.5}; }
    /// Relative airflow contribution (1.0 nominal, 0 when seized).
    [[nodiscard]] double airflow() const { return seized_ ? 0.0 : 1.0; }

private:
    int nominal_rpm_;
    bool seized_ = false;
};

}  // namespace zerodeg::hardware
