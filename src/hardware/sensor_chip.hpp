// Motherboard sensor chip (lm-sensors) emulation.
//
// Section 4.2.1 describes a specific incident on the longest-running host:
// after an initial period below -20 degC outside, the chip first reported a
// plausible sub-zero CPU temperature (below -4 degC), then clearly erroneous
// -111 degC readings; a bus re-detect made the chip vanish entirely, and only
// a warm reboot a week later brought it back.  This class is that state
// machine, with a cold-exposure accumulator deciding when the glitch arms.
#pragma once

#include <optional>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::hardware {

enum class SensorChipState {
    kHealthy,
    kErratic,     ///< emits garbage like -111 degC
    kUndetected,  ///< vanished from the bus after a re-detect attempt
};

[[nodiscard]] const char* to_string(SensorChipState s);

struct SensorChipConfig {
    /// Below this die temperature the chip's analog front end is out of its
    /// characterized range and damage/drift accumulates.
    core::Celsius cold_threshold{-2.0};
    /// Expected hours below threshold before the chip goes erratic (the
    /// exposure is exponential with this mean, per-chip).
    double mean_hours_to_glitch = 22.0;
    /// The bogus value the erratic state reports (from the paper).
    core::Celsius erratic_reading{-111.0};
    /// Gaussian measurement noise when healthy.
    core::Celsius noise_sigma{0.5};
};

class SensorChip {
public:
    SensorChip(SensorChipConfig config, core::RngStream rng);

    /// Advance exposure accounting; `die_temp` is the true CPU temperature.
    void step(core::Duration dt, core::Celsius die_temp);

    /// A read through lm-sensors: noisy truth when healthy, the -111 degC
    /// garbage when erratic, nullopt when the chip is off the bus.
    [[nodiscard]] std::optional<core::Celsius> read(core::Celsius die_temp);

    /// The operator's "redetect the sensor chip" attempt: on an erratic chip
    /// this is what knocked it off the bus in the paper.
    void attempt_redetect();

    /// A warm reboot re-initializes the chip; in the paper this restored it.
    void warm_reboot();

    [[nodiscard]] SensorChipState state() const { return state_; }
    [[nodiscard]] double cold_exposure_hours() const { return cold_hours_; }
    /// Coldest value ever reported over the bus (the paper quotes "below
    /// -4 degC" from the prototype run).
    [[nodiscard]] std::optional<core::Celsius> coldest_reported() const {
        return coldest_reported_;
    }

private:
    SensorChipConfig config_;
    core::RngStream rng_;
    SensorChipState state_ = SensorChipState::kHealthy;
    double cold_hours_ = 0.0;
    double glitch_at_hours_;  ///< sampled exposure budget
    std::optional<core::Celsius> coldest_reported_;
};

}  // namespace zerodeg::hardware
