// A simulated machine: one of the 19 computers of Section 3.4.
//
// Three builds are modeled, matching the paper's vendors:
//   A - small local vendor, COTS "clone" desktops, medium tower, two-drive
//       Linux software mirror;
//   B - large vendor, mass-manufactured small-form-factor workstation,
//       single drive (the series with known airflow problems);
//   C - large vendor, heavy-duty 2U rack server, five drives (HW mirror +
//       parity stripe), ECC memory.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "hardware/components.hpp"
#include "hardware/sensor_chip.hpp"
#include "thermal/server_thermal.hpp"

namespace zerodeg::hardware {

enum class Vendor { kA, kB, kC };
enum class FormFactor { kMediumTower, kSmallFormFactor, kRack2U };

[[nodiscard]] const char* to_string(Vendor v);
[[nodiscard]] const char* to_string(FormFactor f);

struct ServerSpec {
    Vendor vendor = Vendor::kA;
    FormFactor form_factor = FormFactor::kMediumTower;
    std::string cpu_model = "COTS x86";
    core::Watts cpu_idle{12.0};
    core::Watts cpu_max{65.0};
    /// Chipset + mainboard + NIC floor, excluding CPU/drives/fans.
    core::Watts base_power{28.0};
    std::size_t memory_mb = 2048;
    bool ecc_memory = false;
    RaidLayout raid = RaidLayout::kSoftwareMirror;
    core::Watts psu_rating{350.0};
    double psu_efficiency = 0.82;
    int fans = 2;
    /// The vendor-B series the department already knew to be flaky.
    bool known_unreliable = false;
};

[[nodiscard]] ServerSpec vendor_a_spec();
[[nodiscard]] ServerSpec vendor_b_spec();
[[nodiscard]] ServerSpec vendor_c_spec();
[[nodiscard]] ServerSpec spec_for(Vendor v);

enum class RunState {
    kRunning,
    kCrashed,    ///< a system failure; needs an operator reset
    kPoweredOff, ///< not yet installed, or retired
};

[[nodiscard]] const char* to_string(RunState s);

class Server {
public:
    Server(int id, std::string name, ServerSpec spec, std::uint64_t master_seed);

    // --- identity ----------------------------------------------------------
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const ServerSpec& spec() const { return spec_; }

    // --- lifecycle ---------------------------------------------------------
    void power_on(core::Celsius intake);
    void power_off();
    /// A transient or permanent system failure (from the fault engine).
    void crash(const std::string& reason);
    /// Operator reset after a crash; returns false if the machine is not in
    /// a resettable state.
    bool reset();
    [[nodiscard]] RunState state() const { return state_; }
    [[nodiscard]] bool operational() const { return state_ == RunState::kRunning; }
    [[nodiscard]] int crash_count() const { return crash_count_; }
    [[nodiscard]] const std::string& last_crash_reason() const { return last_crash_reason_; }

    // --- load & power ------------------------------------------------------
    void set_cpu_load(double load);
    /// DC power delivered by the PSU to all components right now.
    [[nodiscard]] core::Watts dc_power() const;
    /// Wall power (what the Technoline meter would see).
    [[nodiscard]] core::Watts wall_power() const;

    // --- simulation step ---------------------------------------------------
    /// Advance thermals and wear.  `airflow` is relative to nominal case
    /// airflow (wind through an opened tent raises it above 1).
    void step(core::Duration dt, core::Celsius intake, double airflow = 1.0);

    // --- sensors & components ----------------------------------------------
    /// lm-sensors CPU temperature read (may be garbage or absent; see
    /// SensorChip).
    [[nodiscard]] std::optional<core::Celsius> read_cpu_sensor();
    [[nodiscard]] SensorChip& sensor_chip() { return sensor_chip_; }
    [[nodiscard]] Cpu& cpu() { return cpu_; }
    [[nodiscard]] const Cpu& cpu() const { return cpu_; }
    [[nodiscard]] MemoryModule& memory() { return memory_; }
    [[nodiscard]] const MemoryModule& memory() const { return memory_; }
    [[nodiscard]] RaidArray& storage() { return storage_; }
    [[nodiscard]] const RaidArray& storage() const { return storage_; }
    [[nodiscard]] std::vector<FanUnit>& fans() { return fans_; }
    [[nodiscard]] const thermal::ServerThermalModel& thermals() const { return thermals_; }

    [[nodiscard]] core::Celsius cpu_temperature() const { return thermals_.cpu_temperature(); }
    [[nodiscard]] core::Celsius hdd_temperature() const { return thermals_.hdd_temperature(); }
    [[nodiscard]] core::Celsius case_surface_temperature() const {
        return thermals_.case_surface_temperature(last_intake_);
    }

    // --- exposure bookkeeping (for the fault engine & reports) -------------
    [[nodiscard]] double uptime_hours() const { return uptime_seconds_ / 3600.0; }
    [[nodiscard]] core::Celsius min_intake_seen() const { return min_intake_; }
    [[nodiscard]] core::Celsius max_intake_seen() const { return max_intake_; }

private:
    int id_;
    std::string name_;
    ServerSpec spec_;
    Cpu cpu_;
    MemoryModule memory_;
    RaidArray storage_;
    PowerSupply psu_;
    std::vector<FanUnit> fans_;
    SensorChip sensor_chip_;
    thermal::ServerThermalModel thermals_;

    RunState state_ = RunState::kPoweredOff;
    int crash_count_ = 0;
    std::string last_crash_reason_;
    double uptime_seconds_ = 0.0;
    core::Celsius last_intake_{20.0};
    core::Celsius min_intake_{1000.0};
    core::Celsius max_intake_{-1000.0};

    [[nodiscard]] static RaidArray make_storage(const ServerSpec& spec);
    [[nodiscard]] double fan_airflow() const;
};

}  // namespace zerodeg::hardware
