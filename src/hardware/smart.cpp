#include "hardware/smart.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::hardware {

const char* to_string(SmartId id) {
    switch (id) {
        case SmartId::kReallocatedSectors: return "Reallocated_Sector_Ct";
        case SmartId::kPowerOnHours: return "Power_On_Hours";
        case SmartId::kPowerCycles: return "Power_Cycle_Count";
        case SmartId::kAirflowTemperature: return "Airflow_Temperature_Cel";
        case SmartId::kTemperature: return "Temperature_Celsius";
        case SmartId::kPendingSectors: return "Current_Pending_Sector";
        case SmartId::kUncorrectableSectors: return "Offline_Uncorrectable";
    }
    return "Unknown_Attribute";
}

const char* to_string(SelfTestResult r) {
    switch (r) {
        case SelfTestResult::kPassed: return "Completed without error";
        case SelfTestResult::kFailedReadElement: return "Completed: read failure";
        case SelfTestResult::kFailedServo: return "Completed: servo/seek failure";
        case SelfTestResult::kAborted: return "Aborted by host";
    }
    return "?";
}

SmartData::SmartData() {
    attrs_ = {
        {SmartId::kReallocatedSectors, 100, 100, 36, 0},
        {SmartId::kPowerOnHours, 100, 100, 0, 0},
        {SmartId::kPowerCycles, 100, 100, 20, 0},
        {SmartId::kAirflowTemperature, 100, 100, 45, 0},
        {SmartId::kTemperature, 100, 100, 0, 0},
        {SmartId::kPendingSectors, 100, 100, 0, 0},
        {SmartId::kUncorrectableSectors, 100, 100, 0, 0},
    };
}

SmartAttribute& SmartData::attr(SmartId id) {
    for (SmartAttribute& a : attrs_) {
        if (a.id == id) return a;
    }
    throw core::InvalidArgument("SmartData: unknown attribute");
}

const SmartAttribute& SmartData::attribute(SmartId id) const {
    return const_cast<SmartData*>(this)->attr(id);
}

void SmartData::accrue(core::Duration dt, core::Celsius t) {
    poh_seconds_ += static_cast<double>(dt.count());
    min_temp_ = std::min(min_temp_, t);
    max_temp_ = std::max(max_temp_, t);

    attr(SmartId::kPowerOnHours).raw = static_cast<std::int64_t>(poh_seconds_ / 3600.0);
    // Normalized POH decays one point per ~600 h, floor 1 — vendor-style.
    attr(SmartId::kPowerOnHours).value =
        std::max(1, 100 - static_cast<int>(poh_seconds_ / 3600.0 / 600.0));

    auto& temp = attr(SmartId::kTemperature);
    temp.raw = static_cast<std::int64_t>(t.value());
    auto& airflow = attr(SmartId::kAirflowTemperature);
    airflow.raw = static_cast<std::int64_t>(t.value());
    // Airflow temperature's normalized value is 100 - raw (capped), as many
    // vendors report it.
    airflow.value = std::clamp(100 - static_cast<int>(t.value()), 1, 253);
    airflow.worst = std::min(airflow.worst, airflow.value);
}

void SmartData::power_cycle() {
    auto& a = attr(SmartId::kPowerCycles);
    ++a.raw;
    a.value = std::max(1, 100 - static_cast<int>(a.raw / 100));
    a.worst = std::min(a.worst, a.value);
}

void SmartData::add_reallocated_sectors(int n) {
    if (n < 0) throw core::InvalidArgument("add_reallocated_sectors: negative count");
    auto& a = attr(SmartId::kReallocatedSectors);
    a.raw += n;
    a.value = std::max(1, 100 - static_cast<int>(a.raw / 8));
    a.worst = std::min(a.worst, a.value);
}

void SmartData::add_pending_sectors(int n) {
    if (n < 0) throw core::InvalidArgument("add_pending_sectors: negative count");
    auto& a = attr(SmartId::kPendingSectors);
    a.raw += n;
    a.value = std::max(1, 100 - static_cast<int>(a.raw / 4));
    a.worst = std::min(a.worst, a.value);
}

SelfTestResult SmartData::run_long_test() {
    auto& pending = attr(SmartId::kPendingSectors);
    if (pending.raw > 0) {
        // The surface scan resolves pending sectors: they either read fine
        // (dropped from the list) or get reallocated.  We credit half each
        // way, which is the common field outcome.
        const std::int64_t realloc = pending.raw / 2;
        add_reallocated_sectors(static_cast<int>(realloc));
        pending.raw = 0;
        pending.value = 100;
    }
    auto& uncorrectable = attr(SmartId::kUncorrectableSectors);
    if (uncorrectable.raw > 0) return SelfTestResult::kFailedReadElement;
    if (attr(SmartId::kReallocatedSectors).failed_threshold()) {
        return SelfTestResult::kFailedServo;
    }
    return SelfTestResult::kPassed;
}

bool SmartData::overall_health_ok() const {
    return std::none_of(attrs_.begin(), attrs_.end(),
                        [](const SmartAttribute& a) { return a.failed_threshold(); });
}

}  // namespace zerodeg::hardware
