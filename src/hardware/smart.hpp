// S.M.A.R.T. attribute emulation for the simulated hard drives.
//
// Section 3.1 of the paper monitors drives through S.M.A.R.T. during the
// prototype, and Section 4.2.2 rules the drives out as the wrong-hash cause
// because they "passed their S.M.A.R.T. long test runs".  We model the
// attributes that matter for that argument: temperature, reallocated and
// pending sectors, power-on hours, and start/stop counts, plus the long
// self-test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::hardware {

/// Well-known attribute ids (the subset we emulate).
enum class SmartId : std::uint8_t {
    kReallocatedSectors = 5,
    kPowerOnHours = 9,
    kPowerCycles = 12,
    kAirflowTemperature = 190,
    kTemperature = 194,
    kPendingSectors = 197,
    kUncorrectableSectors = 198,
};

[[nodiscard]] const char* to_string(SmartId id);

struct SmartAttribute {
    SmartId id;
    /// Normalized value 1..253 (higher is healthier), vendor-style.
    int value = 100;
    int worst = 100;
    int threshold = 0;
    /// Raw counter (sectors, hours, degrees...).
    std::int64_t raw = 0;

    [[nodiscard]] bool failed_threshold() const { return threshold > 0 && value <= threshold; }
};

enum class SelfTestResult { kPassed, kFailedReadElement, kFailedServo, kAborted };

[[nodiscard]] const char* to_string(SelfTestResult r);

/// One drive's SMART state.
class SmartData {
public:
    SmartData();

    /// Account `dt` of spinning at drive temperature `t`.
    void accrue(core::Duration dt, core::Celsius t);

    /// Register a power cycle (start/stop).
    void power_cycle();

    /// Grow the defect lists (called by the fault engine on media wear).
    void add_reallocated_sectors(int n);
    void add_pending_sectors(int n);

    /// Run the SMART extended self-test: scans the media; pending sectors
    /// found unreadable become reallocated; fails if uncorrectables remain.
    SelfTestResult run_long_test();

    [[nodiscard]] const SmartAttribute& attribute(SmartId id) const;
    [[nodiscard]] const std::vector<SmartAttribute>& attributes() const { return attrs_; }
    [[nodiscard]] bool overall_health_ok() const;
    [[nodiscard]] double power_on_hours() const { return poh_seconds_ / 3600.0; }
    [[nodiscard]] core::Celsius min_temperature_seen() const { return min_temp_; }
    [[nodiscard]] core::Celsius max_temperature_seen() const { return max_temp_; }

private:
    std::vector<SmartAttribute> attrs_;
    double poh_seconds_ = 0.0;
    core::Celsius min_temp_{1000.0};
    core::Celsius max_temp_{-1000.0};

    SmartAttribute& attr(SmartId id);
};

}  // namespace zerodeg::hardware
