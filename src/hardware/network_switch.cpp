#include "hardware/network_switch.hpp"

#include <limits>

#include "core/error.hpp"

namespace zerodeg::hardware {

NetworkSwitch::NetworkSwitch(std::string name, SwitchConfig config, core::RngStream rng)
    : name_(std::move(name)), config_(config) {
    fail_at_hours_ = config_.inherent_defect
                         ? rng.exponential(1.0 / config_.defect_mean_hours_to_failure)
                         : std::numeric_limits<double>::infinity();
}

void NetworkSwitch::step(core::Duration dt) {
    if (dt.count() < 0) throw core::InvalidArgument("NetworkSwitch::step: negative dt");
    if (failed_) return;
    hours_ += static_cast<double>(dt.count()) / 3600.0;
    if (hours_ >= fail_at_hours_) failed_ = true;
}

}  // namespace zerodeg::hardware
