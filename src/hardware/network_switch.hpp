// The 8-port network switches of Section 4.2.1.
//
// The department loaned two switches "known to contain cosmetic errors, i.e.,
// an annoying whining sound"; both failed after about a week in the tent, and
// a third identical unit that never left the building then failed the same
// way — proving the defect inherent, not weather-induced.  We model that as a
// per-unit latent defect with an operating-hours budget that is independent
// of environment.
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.hpp"
#include "core/sim_time.hpp"

namespace zerodeg::hardware {

struct SwitchConfig {
    int ports = 8;
    /// Latent defect present at manufacture?
    bool inherent_defect = false;
    /// Mean operating hours to failure for a defective unit (exponential).
    double defect_mean_hours_to_failure = 170.0;
};

class NetworkSwitch {
public:
    NetworkSwitch(std::string name, SwitchConfig config, core::RngStream rng);

    /// Advance operating time.  Environment is deliberately NOT an input:
    /// the paper's conclusion is that these failures were inherent.
    void step(core::Duration dt);

    [[nodiscard]] bool operational() const { return !failed_; }
    [[nodiscard]] bool whining() const { return config_.inherent_defect && !failed_; }
    [[nodiscard]] int ports() const { return config_.ports; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double operating_hours() const { return hours_; }

private:
    std::string name_;
    SwitchConfig config_;
    bool failed_ = false;
    double hours_ = 0.0;
    double fail_at_hours_;
};

}  // namespace zerodeg::hardware
