// The experiment's machine population and placement (Sections 3.4, Fig. 2).
//
// Machines are installed pairwise: for every host put in the tent, an
// identical unit goes into the basement control group.  The tent hosts carry
// the paper's Fig. 2 numbering (01, 02, 03, 06, 10, 11, 14, 15, 18, plus the
// replacement 19); their basement twins take the remaining numbers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "hardware/server.hpp"

namespace zerodeg::hardware {

enum class Placement {
    kTent,     ///< roof terrace, unconditioned outside air
    kBasement, ///< control group, office-type air conditioning
    kIndoors,  ///< pulled from the experiment, running inside (host #15's fate)
};

[[nodiscard]] const char* to_string(Placement p);

struct HostRecord {
    std::unique_ptr<Server> server;
    Placement placement = Placement::kTent;
    core::TimePoint install_date;
    /// Fig. 2 pairing: id of the identical twin in the other group (0 = none,
    /// e.g. the replacement host).
    int pair_id = 0;
    /// Set when this host replaces a failed one (host #19 replacing #15).
    int replaces_id = 0;
};

class Fleet {
public:
    Server& add_host(int id, Vendor vendor, Placement placement, core::TimePoint install_date,
                     int pair_id, std::uint64_t master_seed, int replaces_id = 0);

    [[nodiscard]] Server* find(int id);
    [[nodiscard]] const Server* find(int id) const;
    [[nodiscard]] HostRecord* record(int id);
    [[nodiscard]] const HostRecord* record(int id) const;

    [[nodiscard]] std::vector<HostRecord>& hosts() { return hosts_; }
    [[nodiscard]] const std::vector<HostRecord>& hosts() const { return hosts_; }

    [[nodiscard]] std::size_t count(Placement p) const;
    [[nodiscard]] std::size_t count_vendor(Vendor v) const;
    [[nodiscard]] std::size_t size() const { return hosts_.size(); }

    /// Sum of wall power of running hosts at a placement (what heats the
    /// enclosure and what the Technoline meter reads).
    [[nodiscard]] core::Watts wall_power(Placement p) const;

    void set_placement(int id, Placement p);

    /// Hosts whose install date has arrived and that are in placement `p`.
    [[nodiscard]] std::vector<Server*> installed_at(Placement p, core::TimePoint now);

private:
    std::vector<HostRecord> hosts_;
};

/// Build the paper's fleet: 10 vendor-A, 4 vendor-B, 4 vendor-C machines,
/// nine per group, installed on the Fig. 2 dates (the last on March 13).
/// The replacement host #19 is NOT included; the experiment runner adds it
/// when #15 is retired.
[[nodiscard]] Fleet make_paper_fleet(std::uint64_t master_seed);

/// Install dates used by make_paper_fleet, exposed for Fig. 2 regeneration.
struct InstallEvent {
    int host_id;
    Vendor vendor;
    Placement placement;
    core::TimePoint date;
    int pair_id;
};
[[nodiscard]] std::vector<InstallEvent> paper_install_plan();

}  // namespace zerodeg::hardware
