#include "hardware/server.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::hardware {

const char* to_string(Vendor v) {
    switch (v) {
        case Vendor::kA: return "A (local COTS clones)";
        case Vendor::kB: return "B (mass-market SFF)";
        case Vendor::kC: return "C (2U rack servers)";
    }
    return "?";
}

const char* to_string(FormFactor f) {
    switch (f) {
        case FormFactor::kMediumTower: return "medium tower";
        case FormFactor::kSmallFormFactor: return "small form factor";
        case FormFactor::kRack2U: return "2U rack";
    }
    return "?";
}

const char* to_string(RunState s) {
    switch (s) {
        case RunState::kRunning: return "running";
        case RunState::kCrashed: return "crashed";
        case RunState::kPoweredOff: return "powered off";
    }
    return "?";
}

ServerSpec vendor_a_spec() {
    ServerSpec s;
    s.vendor = Vendor::kA;
    s.form_factor = FormFactor::kMediumTower;
    s.cpu_model = "COTS desktop x86";
    s.cpu_idle = core::Watts{12.0};
    s.cpu_max = core::Watts{65.0};
    s.base_power = core::Watts{30.0};
    s.memory_mb = 2048;
    s.ecc_memory = false;
    s.raid = RaidLayout::kSoftwareMirror;
    s.psu_rating = core::Watts{350.0};
    s.psu_efficiency = 0.80;
    s.fans = 2;
    return s;
}

ServerSpec vendor_b_spec() {
    ServerSpec s;
    s.vendor = Vendor::kB;
    s.form_factor = FormFactor::kSmallFormFactor;
    s.cpu_model = "mobile-derived x86";
    s.cpu_idle = core::Watts{8.0};
    s.cpu_max = core::Watts{45.0};
    s.base_power = core::Watts{22.0};
    s.memory_mb = 1024;
    s.ecc_memory = false;
    s.raid = RaidLayout::kNone;
    s.psu_rating = core::Watts{220.0};
    s.psu_efficiency = 0.78;
    s.fans = 1;
    s.known_unreliable = true;  // the series with bad airflow circulation
    return s;
}

ServerSpec vendor_c_spec() {
    ServerSpec s;
    s.vendor = Vendor::kC;
    s.form_factor = FormFactor::kRack2U;
    s.cpu_model = "server x86";
    s.cpu_idle = core::Watts{25.0};
    s.cpu_max = core::Watts{95.0};
    s.base_power = core::Watts{65.0};
    s.memory_mb = 8192;
    s.ecc_memory = true;
    s.raid = RaidLayout::kMirrorPlusParity;
    s.psu_rating = core::Watts{650.0};
    s.psu_efficiency = 0.85;
    s.fans = 6;
    return s;
}

ServerSpec spec_for(Vendor v) {
    switch (v) {
        case Vendor::kA: return vendor_a_spec();
        case Vendor::kB: return vendor_b_spec();
        case Vendor::kC: return vendor_c_spec();
    }
    throw core::InvalidArgument("spec_for: unknown vendor");
}

namespace {

thermal::ServerThermalConfig thermal_config_for(FormFactor f) {
    switch (f) {
        case FormFactor::kMediumTower: return thermal::tower_thermal_config();
        case FormFactor::kSmallFormFactor: return thermal::sff_thermal_config();
        case FormFactor::kRack2U: return thermal::rack_2u_thermal_config();
    }
    throw core::InvalidArgument("thermal_config_for: unknown form factor");
}

std::string drive_model_for(Vendor v) {
    switch (v) {
        case Vendor::kA: return "SATA 3.5\" 250GB";
        case Vendor::kB: return "SATA 2.5\" 160GB";
        case Vendor::kC: return "SAS 3.5\" 300GB";
    }
    return "?";
}

}  // namespace

RaidArray Server::make_storage(const ServerSpec& spec) {
    const std::size_t count = spec.raid == RaidLayout::kNone              ? 1
                              : spec.raid == RaidLayout::kSoftwareMirror ? 2
                                                                         : 5;
    std::vector<HardDrive> drives;
    drives.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        drives.emplace_back(drive_model_for(spec.vendor));
    }
    return RaidArray{spec.raid, std::move(drives)};
}

Server::Server(int id, std::string name, ServerSpec spec, std::uint64_t master_seed)
    : id_(id),
      name_(std::move(name)),
      spec_(spec),
      cpu_(spec.cpu_model, spec.cpu_idle, spec.cpu_max),
      memory_(spec.memory_mb, spec.ecc_memory),
      storage_(make_storage(spec)),
      psu_(spec.psu_rating, spec.psu_efficiency),
      sensor_chip_(SensorChipConfig{},
                   core::RngStream{master_seed, "sensor-chip." + name_}),
      thermals_(thermal_config_for(spec.form_factor), core::Celsius{20.0}) {
    if (spec.fans < 1) throw core::InvalidArgument("Server: at least one fan required");
    for (int i = 0; i < spec.fans; ++i) fans_.emplace_back(2400);
}

void Server::power_on(core::Celsius intake) {
    if (state_ == RunState::kRunning) return;
    state_ = RunState::kRunning;
    last_intake_ = intake;
    thermals_ = thermal::ServerThermalModel(thermal_config_for(spec_.form_factor), intake);
    for (HardDrive& d : storage_.drives()) d.power_cycle();
}

void Server::power_off() { state_ = RunState::kPoweredOff; }

void Server::crash(const std::string& reason) {
    if (state_ != RunState::kRunning) return;
    state_ = RunState::kCrashed;
    ++crash_count_;
    last_crash_reason_ = reason;
}

bool Server::reset() {
    if (state_ != RunState::kCrashed) return false;
    state_ = RunState::kRunning;
    sensor_chip_.warm_reboot();
    for (HardDrive& d : storage_.drives()) d.power_cycle();
    return true;
}

void Server::set_cpu_load(double load) { cpu_.set_load(load); }

core::Watts Server::dc_power() const {
    if (state_ != RunState::kRunning) return core::Watts{0.0};
    core::Watts p = spec_.base_power + cpu_.power() + storage_.power();
    for (const FanUnit& f : fans_) p += f.power();
    return p;
}

core::Watts Server::wall_power() const {
    if (state_ != RunState::kRunning) return core::Watts{0.0};
    return psu_.input_for(dc_power());
}

double Server::fan_airflow() const {
    double total = 0.0;
    for (const FanUnit& f : fans_) total += f.airflow();
    return total / static_cast<double>(fans_.size());
}

void Server::step(core::Duration dt, core::Celsius intake, double airflow) {
    if (dt.count() < 0) throw core::InvalidArgument("Server::step: negative dt");
    last_intake_ = intake;
    if (state_ != RunState::kRunning) return;

    min_intake_ = std::min(min_intake_, intake);
    max_intake_ = std::max(max_intake_, intake);
    uptime_seconds_ += static_cast<double>(dt.count());

    const double effective_airflow = std::max(0.15, fan_airflow() * airflow);
    thermals_.step(dt, intake, cpu_.power(), dc_power(), effective_airflow);
    sensor_chip_.step(dt, thermals_.cpu_temperature());
    for (HardDrive& d : storage_.drives()) {
        if (!d.failed()) d.accrue(dt, thermals_.hdd_temperature());
    }
}

std::optional<core::Celsius> Server::read_cpu_sensor() {
    if (state_ != RunState::kRunning) return std::nullopt;
    return sensor_chip_.read(thermals_.cpu_temperature());
}

}  // namespace zerodeg::hardware
