#include "hardware/sensor_chip.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::hardware {

const char* to_string(SensorChipState s) {
    switch (s) {
        case SensorChipState::kHealthy: return "healthy";
        case SensorChipState::kErratic: return "erratic";
        case SensorChipState::kUndetected: return "undetected";
    }
    return "?";
}

SensorChip::SensorChip(SensorChipConfig config, core::RngStream rng)
    : config_(config), rng_(rng), glitch_at_hours_(rng_.exponential(
                                      1.0 / std::max(config.mean_hours_to_glitch, 1e-9))) {}

void SensorChip::step(core::Duration dt, core::Celsius die_temp) {
    if (dt.count() < 0) throw core::InvalidArgument("SensorChip::step: negative dt");
    if (state_ != SensorChipState::kHealthy) return;
    if (die_temp < config_.cold_threshold) {
        cold_hours_ += static_cast<double>(dt.count()) / 3600.0;
        if (cold_hours_ >= glitch_at_hours_) state_ = SensorChipState::kErratic;
    }
}

std::optional<core::Celsius> SensorChip::read(core::Celsius die_temp) {
    switch (state_) {
        case SensorChipState::kUndetected:
            return std::nullopt;
        case SensorChipState::kErratic:
            return config_.erratic_reading;
        case SensorChipState::kHealthy: {
            const core::Celsius reading =
                die_temp + core::Celsius{config_.noise_sigma.value() * rng_.normal()};
            if (!coldest_reported_ || reading < *coldest_reported_) {
                coldest_reported_ = reading;
            }
            return reading;
        }
    }
    return std::nullopt;
}

void SensorChip::attempt_redetect() {
    // Re-probing a healthy chip is harmless; re-probing an erratic one is
    // what made the paper's chip disappear from the bus.
    if (state_ == SensorChipState::kErratic) state_ = SensorChipState::kUndetected;
}

void SensorChip::warm_reboot() {
    // Power-on reset of the chip restores normal operation (and in the paper
    // no further problems were detected on that host).
    state_ = SensorChipState::kHealthy;
    cold_hours_ = 0.0;
    // A recovered front end is assumed re-characterized: give it a fresh,
    // independent exposure budget.
    glitch_at_hours_ = rng_.exponential(1.0 / std::max(config_.mean_hours_to_glitch, 1e-9));
}

}  // namespace zerodeg::hardware
