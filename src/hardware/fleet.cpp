#include "hardware/fleet.hpp"

#include <cstdio>

#include "core/error.hpp"

namespace zerodeg::hardware {

const char* to_string(Placement p) {
    switch (p) {
        case Placement::kTent: return "tent";
        case Placement::kBasement: return "basement";
        case Placement::kIndoors: return "indoors";
    }
    return "?";
}

namespace {

std::string host_name(int id) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "host-%02d", id);
    return buf;
}

}  // namespace

Server& Fleet::add_host(int id, Vendor vendor, Placement placement, core::TimePoint install_date,
                        int pair_id, std::uint64_t master_seed, int replaces_id) {
    if (find(id) != nullptr) throw core::InvalidArgument("Fleet::add_host: duplicate host id");
    HostRecord rec;
    rec.server = std::make_unique<Server>(id, host_name(id), spec_for(vendor), master_seed);
    rec.placement = placement;
    rec.install_date = install_date;
    rec.pair_id = pair_id;
    rec.replaces_id = replaces_id;
    hosts_.push_back(std::move(rec));
    return *hosts_.back().server;
}

Server* Fleet::find(int id) {
    for (HostRecord& h : hosts_) {
        if (h.server->id() == id) return h.server.get();
    }
    return nullptr;
}

const Server* Fleet::find(int id) const { return const_cast<Fleet*>(this)->find(id); }

HostRecord* Fleet::record(int id) {
    for (HostRecord& h : hosts_) {
        if (h.server->id() == id) return &h;
    }
    return nullptr;
}

const HostRecord* Fleet::record(int id) const { return const_cast<Fleet*>(this)->record(id); }

std::size_t Fleet::count(Placement p) const {
    std::size_t n = 0;
    for (const HostRecord& h : hosts_) {
        if (h.placement == p) ++n;
    }
    return n;
}

std::size_t Fleet::count_vendor(Vendor v) const {
    std::size_t n = 0;
    for (const HostRecord& h : hosts_) {
        if (h.server->spec().vendor == v) ++n;
    }
    return n;
}

core::Watts Fleet::wall_power(Placement p) const {
    core::Watts total{0.0};
    for (const HostRecord& h : hosts_) {
        if (h.placement == p) total += h.server->wall_power();
    }
    return total;
}

void Fleet::set_placement(int id, Placement p) {
    HostRecord* rec = record(id);
    if (rec == nullptr) throw core::InvalidArgument("Fleet::set_placement: unknown host");
    rec->placement = p;
}

std::vector<Server*> Fleet::installed_at(Placement p, core::TimePoint now) {
    std::vector<Server*> out;
    for (HostRecord& h : hosts_) {
        if (h.placement == p && h.install_date <= now) out.push_back(h.server.get());
    }
    return out;
}

std::vector<InstallEvent> paper_install_plan() {
    const auto d = [](int month, int day) { return core::TimePoint::from_date(2010, month, day); };
    // Tent hosts carry the Fig. 2 numbers; each line installs a tent host and
    // its basement twin on the same date.  Ten A + four B + four C = 18.
    return {
        // Feb 19: the first three vendor-A pairs ("start of testing").
        {1, Vendor::kA, Placement::kTent, d(2, 19), 4},
        {4, Vendor::kA, Placement::kBasement, d(2, 19), 1},
        {2, Vendor::kA, Placement::kTent, d(2, 19), 5},
        {5, Vendor::kA, Placement::kBasement, d(2, 19), 2},
        {3, Vendor::kA, Placement::kTent, d(2, 19), 7},
        {7, Vendor::kA, Placement::kBasement, d(2, 19), 3},
        // Feb 24/25: two more vendor-A pairs.
        {6, Vendor::kA, Placement::kTent, d(2, 24), 8},
        {8, Vendor::kA, Placement::kBasement, d(2, 24), 6},
        {10, Vendor::kA, Placement::kTent, d(2, 25), 9},
        {9, Vendor::kA, Placement::kBasement, d(2, 25), 10},
        // Mar 05: a vendor-B pair and a vendor-C pair.
        {11, Vendor::kB, Placement::kTent, d(3, 5), 12},
        {12, Vendor::kB, Placement::kBasement, d(3, 5), 11},
        {14, Vendor::kC, Placement::kTent, d(3, 5), 13},
        {13, Vendor::kC, Placement::kBasement, d(3, 5), 14},
        // Mar 10: the second vendor-B pair (tent host #15, the one that
        // later failed twice).
        {15, Vendor::kB, Placement::kTent, d(3, 10), 16},
        {16, Vendor::kB, Placement::kBasement, d(3, 10), 15},
        // Mar 13: the last pair (vendor C) — "the last of the hosts was
        // installed March 13th".
        {18, Vendor::kC, Placement::kTent, d(3, 13), 17},
        {17, Vendor::kC, Placement::kBasement, d(3, 13), 18},
    };
}

Fleet make_paper_fleet(std::uint64_t master_seed) {
    Fleet fleet;
    for (const InstallEvent& ev : paper_install_plan()) {
        fleet.add_host(ev.host_id, ev.vendor, ev.placement, ev.date, ev.pair_id, master_seed);
    }
    return fleet;
}

}  // namespace zerodeg::hardware
