#include "hardware/components.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::hardware {

Cpu::Cpu(std::string model, Watts idle, Watts max)
    : model_(std::move(model)), idle_(idle), max_(max) {
    if (max.value() < idle.value()) {
        throw core::InvalidArgument("Cpu: max power below idle power");
    }
}

void Cpu::set_load(double load) {
    if (load < 0.0 || load > 1.0) throw core::InvalidArgument("Cpu::set_load: load not in [0,1]");
    load_ = load;
}

Watts Cpu::power() const { return idle_ + (max_ - idle_) * load_; }

HardDrive::HardDrive(std::string model) : model_(std::move(model)) {}

const char* to_string(RaidLayout layout) {
    switch (layout) {
        case RaidLayout::kNone: return "single drive";
        case RaidLayout::kSoftwareMirror: return "Linux md RAID-1";
        case RaidLayout::kMirrorPlusParity: return "HW mirror + parity stripe";
    }
    return "?";
}

RaidArray::RaidArray(RaidLayout layout, std::vector<HardDrive> drives)
    : layout_(layout), drives_(std::move(drives)) {
    const std::size_t need = layout == RaidLayout::kNone              ? 1
                             : layout == RaidLayout::kSoftwareMirror ? 2
                                                                     : 5;
    if (drives_.size() != need) {
        throw core::InvalidArgument("RaidArray: wrong drive count for layout");
    }
}

std::size_t RaidArray::failed_drives() const {
    return static_cast<std::size_t>(
        std::count_if(drives_.begin(), drives_.end(),
                      [](const HardDrive& d) { return d.failed(); }));
}

bool RaidArray::data_available() const {
    switch (layout_) {
        case RaidLayout::kNone:
            return !drives_[0].failed();
        case RaidLayout::kSoftwareMirror:
            return !(drives_[0].failed() && drives_[1].failed());
        case RaidLayout::kMirrorPlusParity: {
            // Drives 0-1: mirror (system); drives 2-4: RAID-5 stripe (data).
            const bool mirror_ok = !(drives_[0].failed() && drives_[1].failed());
            const int stripe_failed = static_cast<int>(drives_[2].failed()) +
                                      static_cast<int>(drives_[3].failed()) +
                                      static_cast<int>(drives_[4].failed());
            return mirror_ok && stripe_failed <= 1;
        }
    }
    return false;
}

bool RaidArray::degraded() const {
    if (!data_available()) return true;
    switch (layout_) {
        case RaidLayout::kNone:
            return true;  // a single drive is always one failure from loss
        case RaidLayout::kSoftwareMirror:
            return drives_[0].failed() || drives_[1].failed();
        case RaidLayout::kMirrorPlusParity: {
            const bool mirror_degraded = drives_[0].failed() || drives_[1].failed();
            const int stripe_failed = static_cast<int>(drives_[2].failed()) +
                                      static_cast<int>(drives_[3].failed()) +
                                      static_cast<int>(drives_[4].failed());
            return mirror_degraded || stripe_failed >= 1;
        }
    }
    return true;
}

Watts RaidArray::power() const {
    Watts p{0.0};
    for (const HardDrive& d : drives_) p += d.power();
    return p;
}

PowerSupply::PowerSupply(Watts rating, double efficiency_at_half_load)
    : rating_(rating), efficiency_(efficiency_at_half_load) {
    if (rating.value() <= 0.0) throw core::InvalidArgument("PowerSupply: non-positive rating");
    if (efficiency_at_half_load <= 0.0 || efficiency_at_half_load > 1.0) {
        throw core::InvalidArgument("PowerSupply: efficiency not in (0,1]");
    }
}

Watts PowerSupply::input_for(Watts dc_load) const {
    if (dc_load.value() < 0.0) throw core::InvalidArgument("PowerSupply: negative load");
    // Efficiency sags away from the 50%-load sweet spot by up to ~6 points
    // at the extremes — the familiar 80 PLUS bathtub, linearized.
    const double load_fraction = std::clamp(dc_load / rating_, 0.0, 1.0);
    const double eff = efficiency_ - 0.12 * std::abs(load_fraction - 0.5);
    return Watts{dc_load.value() / eff};
}

}  // namespace zerodeg::hardware
