#include "energy/pue.hpp"

#include "core/error.hpp"

namespace zerodeg::energy {

PueCalculator::PueCalculator(core::Watts it_load) : it_load_(it_load) {
    if (it_load.value() <= 0.0) throw core::InvalidArgument("PueCalculator: IT load must be > 0");
}

PueCalculator& PueCalculator::add_cooling(core::Watts p) {
    if (p.value() < 0.0) throw core::InvalidArgument("PueCalculator: negative cooling power");
    cooling_ += p;
    return *this;
}

PueCalculator& PueCalculator::add_cooling(const CoolingPlant& plant) {
    return add_cooling(plant.total_power_draw());
}

PueCalculator& PueCalculator::add_distribution(core::Watts p) {
    if (p.value() < 0.0) throw core::InvalidArgument("PueCalculator: negative distribution");
    distribution_ += p;
    return *this;
}

PueBreakdown PueCalculator::compute() const {
    PueBreakdown b;
    b.it_load = it_load_;
    b.cooling = cooling_;
    b.distribution = distribution_;
    b.pue = (it_load_ + cooling_ + distribution_) / it_load_;
    return b;
}

PueBreakdown helsinki_cluster_pue() {
    return PueCalculator(helsinki_cluster_it_load())
        .add_cooling(helsinki_cluster_plant())
        .compute();
}

PueBreakdown helsinki_cluster_pue_with_legacy_cracs(double legacy_load_fraction,
                                                    double legacy_power_per_watt) {
    if (legacy_load_fraction < 0.0 || legacy_load_fraction > 1.0) {
        throw core::InvalidArgument("legacy_load_fraction out of [0,1]");
    }
    const core::Watts it = helsinki_cluster_it_load();
    const core::Watts legacy_cooling =
        it * legacy_load_fraction * legacy_power_per_watt;
    return PueCalculator(it)
        .add_cooling(helsinki_cluster_plant())
        .add_cooling(legacy_cooling)
        .compute();
}

}  // namespace zerodeg::energy
