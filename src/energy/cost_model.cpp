#include "energy/cost_model.hpp"

#include "core/error.hpp"

namespace zerodeg::energy {

namespace {
constexpr double kHoursPerYear = 8766.0;
}

CoolingCostModel::CoolingCostModel(CostModelConfig config) : config_(config) {
    if (config.electricity_eur_per_kwh <= 0.0 || config.server_replacement_eur < 0.0) {
        throw core::InvalidArgument("CoolingCostModel: bad prices");
    }
    if (config.economizer_fraction > config.conventional_fraction) {
        throw core::InvalidArgument(
            "CoolingCostModel: economizer must not cost more energy than CRACs");
    }
}

double CoolingCostModel::energy_cost(double it_load_kw, double fraction) const {
    return it_load_kw * fraction * kHoursPerYear * config_.electricity_eur_per_kwh;
}

CoolingCostBreakdown CoolingCostModel::conventional(double it_load_kw, int servers,
                                                    double base_afr) const {
    if (it_load_kw < 0.0 || servers < 0 || base_afr < 0.0) {
        throw core::InvalidArgument("CoolingCostModel::conventional: bad inputs");
    }
    CoolingCostBreakdown b;
    b.energy_eur_per_year = energy_cost(it_load_kw, config_.conventional_fraction);
    b.capex_eur_per_year = it_load_kw * config_.crac_capex_eur_per_kw_year;
    b.replacement_eur_per_year = servers * base_afr * config_.server_replacement_eur;
    return b;
}

CoolingCostBreakdown CoolingCostModel::free_air(double it_load_kw, int servers,
                                                double free_air_afr) const {
    if (it_load_kw < 0.0 || servers < 0 || free_air_afr < 0.0) {
        throw core::InvalidArgument("CoolingCostModel::free_air: bad inputs");
    }
    CoolingCostBreakdown b;
    b.energy_eur_per_year = energy_cost(it_load_kw, config_.economizer_fraction);
    b.capex_eur_per_year = it_load_kw * config_.economizer_capex_eur_per_kw_year;
    b.replacement_eur_per_year = servers * free_air_afr * config_.server_replacement_eur;
    return b;
}

double CoolingCostModel::break_even_excess_afr(double it_load_kw, int servers,
                                               double base_afr) const {
    if (servers <= 0 || config_.server_replacement_eur <= 0.0) return 0.0;
    const double conventional_total = conventional(it_load_kw, servers, base_afr).total();
    const double free_air_at_base = free_air(it_load_kw, servers, base_afr).total();
    const double margin = conventional_total - free_air_at_base;
    if (margin <= 0.0) return 0.0;
    return margin / (servers * config_.server_replacement_eur);
}

}  // namespace zerodeg::energy
