#include "energy/cooling_plant.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::energy {

void CoolingPlant::add_unit(CoolingUnit unit) {
    if (unit.power_draw.value() < 0.0 || unit.cooling_capacity.value() < 0.0) {
        throw core::InvalidArgument("CoolingPlant: negative nameplate");
    }
    units_.push_back(std::move(unit));
}

Watts CoolingPlant::total_power_draw() const {
    Watts total{0.0};
    for (const CoolingUnit& u : units_) total += u.power_draw;
    return total;
}

Watts CoolingPlant::total_capacity() const {
    if (units_.empty()) return Watts{0.0};
    Watts bottleneck = units_.front().cooling_capacity;
    for (const CoolingUnit& u : units_) bottleneck = std::min(bottleneck, u.cooling_capacity);
    return bottleneck;
}

bool CoolingPlant::sufficient_for(Watts it_load) const {
    return total_capacity() >= it_load;
}

Watts CoolingPlant::power_to_cool(Watts it_load, double standby_fraction) const {
    if (it_load.value() < 0.0) throw core::InvalidArgument("power_to_cool: negative load");
    if (standby_fraction < 0.0 || standby_fraction > 1.0) {
        throw core::InvalidArgument("power_to_cool: standby fraction out of [0,1]");
    }
    const Watts capacity = total_capacity();
    if (capacity.value() <= 0.0) return Watts{0.0};
    const double fraction = std::min(1.0, it_load / capacity);
    const Watts nameplate = total_power_draw();
    return nameplate * (standby_fraction + (1.0 - standby_fraction) * fraction);
}

CoolingPlant helsinki_cluster_plant() {
    CoolingPlant plant;
    // Nameplates from Section 5.  Capacities: the plant was sized for the
    // 75 kW cluster; the CRACs move the room air, the chilled-water unit
    // provides the cold water, the roof unit rejects to ambient — each stage
    // must carry the full thermal load.
    plant.add_unit({"CRAC x3", Watts::from_kilowatts(6.9), Watts::from_kilowatts(75.0)});
    plant.add_unit({"chilled-water plant (HVAC area)", Watts::from_kilowatts(44.7),
                    Watts::from_kilowatts(75.0)});
    plant.add_unit({"roof liquid-cooling unit", Watts::from_kilowatts(3.8),
                    Watts::from_kilowatts(75.0)});
    return plant;
}

Watts helsinki_cluster_it_load() { return Watts::from_kilowatts(75.0); }

}  // namespace zerodeg::energy
