// The conventional cooling chain of Section 5.
//
// The department's new cluster: 75 kW of IT load cooled by three CRAC units
// (6.9 kW total), a chilled-water plant in the HVAC area (44.7 kW) and a
// roof liquid-cooling unit (3.8 kW).  Summing the nameplates gives the
// paper's optimistic PUE of 1.74 — and the paper notes reality is worse,
// because the pre-existing CRACs carry part of the thermal load too.
#pragma once

#include <string>
#include <vector>

#include "core/units.hpp"

namespace zerodeg::energy {

using core::Celsius;
using core::Watts;

/// A named cooling component with a nameplate electrical draw and the
/// thermal load it can reject.
struct CoolingUnit {
    std::string name;
    Watts power_draw{0.0};
    Watts cooling_capacity{0.0};
};

/// The complete conventional chain for a machine room.
class CoolingPlant {
public:
    void add_unit(CoolingUnit unit);

    [[nodiscard]] Watts total_power_draw() const;
    /// The chain is a series of stages (room air -> chilled water -> roof);
    /// every stage must carry the full thermal load, so the plant's capacity
    /// is the *bottleneck* stage, not the sum.
    [[nodiscard]] Watts total_capacity() const;
    [[nodiscard]] const std::vector<CoolingUnit>& units() const { return units_; }

    /// Can the plant reject this much heat?
    [[nodiscard]] bool sufficient_for(Watts it_load) const;

    /// Electrical power to cool `it_load`, assuming draw scales with the
    /// load fraction down to a standby floor.
    [[nodiscard]] Watts power_to_cool(Watts it_load, double standby_fraction = 0.35) const;

private:
    std::vector<CoolingUnit> units_;
};

/// The plant of Section 5, exactly as specified in the paper.
[[nodiscard]] CoolingPlant helsinki_cluster_plant();

/// The IT load of Section 5 (peak).
[[nodiscard]] Watts helsinki_cluster_it_load();

}  // namespace zerodeg::energy
