#include "energy/economizer.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "weather/psychrometrics.hpp"

namespace zerodeg::energy {

AirEconomizer::AirEconomizer(EconomizerConfig config) : config_(config) {
    if (config.fan_fraction < 0.0 || config.compressor_fraction < config.fan_fraction) {
        throw core::InvalidArgument("AirEconomizer: inconsistent power fractions");
    }
    if (config.trim_band.value() < 0.0) {
        throw core::InvalidArgument("AirEconomizer: negative trim band");
    }
}

bool AirEconomizer::free_cooling(Celsius outside) const {
    return outside + config_.duct_rise <= config_.max_supply - config_.trim_band;
}

Watts AirEconomizer::cooling_power(Watts it_load, Celsius outside) const {
    if (it_load.value() < 0.0) throw core::InvalidArgument("cooling_power: negative IT load");
    const Celsius supply = outside + config_.duct_rise;
    if (supply <= config_.max_supply - config_.trim_band) {
        // Pure free cooling: fans only.
        return it_load * config_.fan_fraction;
    }
    if (supply >= config_.max_supply) {
        // Too warm outside: full mechanical cooling.
        return it_load * config_.compressor_fraction;
    }
    // Trim band: linear blend between fans-only and full compressor.
    const double w =
        (supply.value() - (config_.max_supply.value() - config_.trim_band.value())) /
        config_.trim_band.value();
    const double fraction =
        config_.fan_fraction + w * (config_.compressor_fraction - config_.fan_fraction);
    return it_load * fraction;
}

WetSideEconomizer::WetSideEconomizer(WetSideConfig config) : config_(config) {
    if (config.tower_fraction < 0.0 || config.chiller_fraction < config.tower_fraction) {
        throw core::InvalidArgument("WetSideEconomizer: inconsistent power fractions");
    }
    if (config.trim_band.value() < 0.0) {
        throw core::InvalidArgument("WetSideEconomizer: negative trim band");
    }
}

bool WetSideEconomizer::free_cooling(Celsius outside_dry, core::RelHumidity outside_rh) const {
    const Celsius water = weather::wet_bulb(outside_dry, outside_rh) + config_.tower_approach;
    return water <= config_.max_water_supply - config_.trim_band;
}

Watts WetSideEconomizer::cooling_power(Watts it_load, Celsius outside_dry,
                                       core::RelHumidity outside_rh) const {
    if (it_load.value() < 0.0) throw core::InvalidArgument("cooling_power: negative IT load");
    const Celsius water = weather::wet_bulb(outside_dry, outside_rh) + config_.tower_approach;
    if (water <= config_.max_water_supply - config_.trim_band) {
        return it_load * config_.tower_fraction;
    }
    if (water >= config_.max_water_supply) {
        return it_load * config_.chiller_fraction;
    }
    const double w =
        (water.value() - (config_.max_water_supply.value() - config_.trim_band.value())) /
        config_.trim_band.value();
    const double fraction =
        config_.tower_fraction + w * (config_.chiller_fraction - config_.tower_fraction);
    return it_load * fraction;
}

SeasonCoolingSummary compare_cooling(const std::vector<weather::WeatherSample>& trace,
                                     Watts it_load, const AirEconomizer& economizer,
                                     double conventional_fraction) {
    if (trace.size() < 2) throw core::InvalidArgument("compare_cooling: trace too short");
    SeasonCoolingSummary summary;
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const double dt = static_cast<double>((trace[i + 1].time - trace[i].time).count());
        if (dt <= 0.0) continue;
        summary.hours += dt / 3600.0;
        if (economizer.free_cooling(trace[i].temperature)) {
            summary.free_cooling_hours += dt / 3600.0;
        }
        summary.economizer_energy +=
            core::energy(economizer.cooling_power(it_load, trace[i].temperature), dt);
        summary.conventional_energy +=
            core::energy(it_load * conventional_fraction, dt);
    }
    return summary;
}

SeasonCoolingSummary compare_cooling_wet_side(const std::vector<weather::WeatherSample>& trace,
                                              Watts it_load,
                                              const WetSideEconomizer& economizer,
                                              double conventional_fraction) {
    if (trace.size() < 2) {
        throw core::InvalidArgument("compare_cooling_wet_side: trace too short");
    }
    SeasonCoolingSummary summary;
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const double dt = static_cast<double>((trace[i + 1].time - trace[i].time).count());
        if (dt <= 0.0) continue;
        summary.hours += dt / 3600.0;
        if (economizer.free_cooling(trace[i].temperature, trace[i].humidity)) {
            summary.free_cooling_hours += dt / 3600.0;
        }
        summary.economizer_energy += core::energy(
            economizer.cooling_power(it_load, trace[i].temperature, trace[i].humidity), dt);
        summary.conventional_energy += core::energy(it_load * conventional_fraction, dt);
    }
    return summary;
}

}  // namespace zerodeg::energy

