// The financial question of Section 3 ("research question 2"):
//
// "If the outside air technique is feasible but causes a higher equipment
// failure rate than by using familiar air conditioning, the projected costs
// must be carefully considered.  If the failure rate rises only a little or
// not at all, replacement costs must be balanced with the purchase and
// energy costs of air conditioning."
//
// This model does exactly that balance: annual cooling-energy cost of a
// conventional plant vs. an economizer, the capex difference, and the
// replacement cost implied by an elevated failure rate — including the
// break-even excess AFR below which free cooling wins outright.
#pragma once

#include "core/units.hpp"

namespace zerodeg::energy {

struct CostModelConfig {
    double electricity_eur_per_kwh = 0.11;   // 2010 Finnish industrial rate
    double server_replacement_eur = 1200.0;  // commodity 1U/desktop, installed
    /// Conventional plant: capex per kW of IT load, amortized per year.
    double crac_capex_eur_per_kw_year = 110.0;
    /// Economizer (fans, filters, dampers): much cheaper per kW-year.
    double economizer_capex_eur_per_kw_year = 35.0;
    /// Conventional cooling electrical power per watt of IT load.
    double conventional_fraction = 0.5;
    /// Economizer annual-average power per watt of IT load (fans, plus the
    /// few compressor hours a cold climate needs).
    double economizer_fraction = 0.09;
};

struct CoolingCostBreakdown {
    double energy_eur_per_year = 0.0;
    double capex_eur_per_year = 0.0;
    double replacement_eur_per_year = 0.0;

    [[nodiscard]] double total() const {
        return energy_eur_per_year + capex_eur_per_year + replacement_eur_per_year;
    }
};

class CoolingCostModel {
public:
    explicit CoolingCostModel(CostModelConfig config = CostModelConfig());

    /// Annual cost of conventionally cooling `it_load_kw` of IT serving
    /// `servers` machines at baseline AFR `base_afr`.
    [[nodiscard]] CoolingCostBreakdown conventional(double it_load_kw, int servers,
                                                    double base_afr) const;

    /// Annual cost with free-air cooling at AFR `free_air_afr` (>= base).
    [[nodiscard]] CoolingCostBreakdown free_air(double it_load_kw, int servers,
                                                double free_air_afr) const;

    /// The largest *excess* AFR (free-air AFR minus baseline) at which free
    /// cooling still costs no more per year than the conventional plant.
    [[nodiscard]] double break_even_excess_afr(double it_load_kw, int servers,
                                               double base_afr) const;

    [[nodiscard]] const CostModelConfig& config() const { return config_; }

private:
    CostModelConfig config_;

    [[nodiscard]] double energy_cost(double it_load_kw, double fraction) const;
};

}  // namespace zerodeg::energy
