// Air-side economizer model.
//
// The alternative the paper argues for: when outside air is colder than the
// allowed supply temperature, fans alone move the heat out; compressors run
// only for the hours the climate is too warm.  Intel's proof of concept [1]
// reports up to 67% cooling-energy savings, HP's Wynyard design [3] about
// 40% — the TAB-SAVINGS bench reproduces that bracket from this model and
// the weather statistics.
#pragma once

#include "core/units.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg::energy {

using core::Celsius;
using core::Watts;

struct EconomizerConfig {
    /// Highest acceptable supply (intake) temperature for the IT equipment.
    Celsius max_supply{27.0};
    /// Supply air is outside air warmed by fan work & duct gains.
    Celsius duct_rise{2.0};
    /// Fan power per watt of IT load when economizing (air transport only).
    double fan_fraction = 0.06;
    /// Compressor-mode power per watt of IT load (a DX/CRAC coefficient of
    /// performance ~3.3 plus air transport).
    double compressor_fraction = 0.36;
    /// Partial economization band: between (max_supply - band) and
    /// max_supply the economizer mixes with mechanical trim.
    Celsius trim_band{6.0};
};

class AirEconomizer {
public:
    explicit AirEconomizer(EconomizerConfig config = EconomizerConfig());

    /// Cooling power needed for `it_load` with outside air at `outside`.
    [[nodiscard]] Watts cooling_power(Watts it_load, Celsius outside) const;

    /// True if the hour is free-cooling only (no compressor).
    [[nodiscard]] bool free_cooling(Celsius outside) const;

    [[nodiscard]] const EconomizerConfig& config() const { return config_; }

private:
    EconomizerConfig config_;
};

/// Wet-side (evaporative / water-side) economizer, the alternative of the
/// paper's reference [2] (Intel argued for wet-side over air-side in 2007
/// before their 2008 air-side PoC).  Cooling towers produce chilled water a
/// few degrees above the *wet-bulb* temperature, so the free-cooling window
/// extends into warmer-but-dry weather; the price is pump/tower power above
/// a bare fan's, and no benefit in humid heat.
struct WetSideConfig {
    /// Chilled water approach over ambient wet-bulb.
    Celsius tower_approach{4.0};
    /// Highest chilled-water temperature the coils can work with.
    Celsius max_water_supply{20.0};
    /// Tower + pump power per watt of IT load when free cooling.
    double tower_fraction = 0.11;
    /// Chiller-backed operation per watt of IT load.
    double chiller_fraction = 0.33;
    /// Partial free cooling band below max_water_supply.
    Celsius trim_band{3.0};
};

class WetSideEconomizer {
public:
    explicit WetSideEconomizer(WetSideConfig config = WetSideConfig());

    /// Cooling power for `it_load` with the given outdoor air state.
    [[nodiscard]] Watts cooling_power(Watts it_load, Celsius outside_dry,
                                      core::RelHumidity outside_rh) const;

    [[nodiscard]] bool free_cooling(Celsius outside_dry, core::RelHumidity outside_rh) const;

    [[nodiscard]] const WetSideConfig& config() const { return config_; }

private:
    WetSideConfig config_;
};

/// Season summary driven by a weather trace.
struct SeasonCoolingSummary {
    double hours = 0.0;
    double free_cooling_hours = 0.0;
    core::Joules economizer_energy{0.0};
    core::Joules conventional_energy{0.0};

    /// Fraction of conventional cooling energy saved.
    [[nodiscard]] double savings_fraction() const {
        if (conventional_energy.value() <= 0.0) return 0.0;
        return 1.0 - economizer_energy.value() / conventional_energy.value();
    }
};

/// Integrate both cooling strategies over a weather trace.
/// `conventional_fraction` is the always-on mechanical plant's power per
/// watt of IT load.
[[nodiscard]] SeasonCoolingSummary compare_cooling(
    const std::vector<weather::WeatherSample>& trace, Watts it_load,
    const AirEconomizer& economizer, double conventional_fraction = 0.5);

/// Same comparison for a wet-side economizer.
[[nodiscard]] SeasonCoolingSummary compare_cooling_wet_side(
    const std::vector<weather::WeatherSample>& trace, Watts it_load,
    const WetSideEconomizer& economizer, double conventional_fraction = 0.5);

}  // namespace zerodeg::energy
