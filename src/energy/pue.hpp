// Power Usage Effectiveness accounting (Section 5).
//
// PUE = total facility power / IT power.  The paper computes the new
// cluster's optimistic PUE by summing the nameplates — 75 kW IT against
// 6.9 + 44.7 + 3.8 kW of cooling, giving 1.74 — and cautions that the real
// figure is worse because pre-existing CRACs also carry part of the load.
#pragma once

#include <string>
#include <vector>

#include "core/units.hpp"
#include "energy/cooling_plant.hpp"

namespace zerodeg::energy {

struct PueBreakdown {
    core::Watts it_load{0.0};
    core::Watts cooling{0.0};
    core::Watts distribution{0.0};  ///< UPS/PDU losses, lighting, etc.
    double pue = 0.0;
};

class PueCalculator {
public:
    explicit PueCalculator(core::Watts it_load);

    PueCalculator& add_cooling(core::Watts p);
    PueCalculator& add_cooling(const CoolingPlant& plant);
    PueCalculator& add_distribution(core::Watts p);

    [[nodiscard]] PueBreakdown compute() const;

private:
    core::Watts it_load_;
    core::Watts cooling_{0.0};
    core::Watts distribution_{0.0};
};

/// The paper's Section 5 calculation, verbatim: returns ~1.74.
[[nodiscard]] PueBreakdown helsinki_cluster_pue();

/// The same room with part of the thermal load falling on pre-existing
/// CRACs — the "unfortunately, such is not the case" correction.  The extra
/// load is cooled at the legacy units' (worse) efficiency.
[[nodiscard]] PueBreakdown helsinki_cluster_pue_with_legacy_cracs(
    double legacy_load_fraction = 0.15, double legacy_power_per_watt = 0.45);

}  // namespace zerodeg::energy
