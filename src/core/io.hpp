// Virtual filesystem seam for every durable writer in the tree.
//
// All files that must survive a crash — sweep journals, figure/report CSV
// exports, collector telemetry dumps — are written through the FileSystem
// interface at full-file granularity instead of touching std::ofstream /
// fopen directly (lint check ZD012 enforces this outside core/io).  Two
// implementations exist:
//
//   * RealFs       — the disk.  write_file() goes through C stdio so short
//                    writes and ENOSPC are detected per-byte and reported
//                    with dropped-byte accounting, mirroring how
//                    CollectorRetryPolicy accounts dropped telemetry.
//   * FaultyFs     — wraps another FileSystem and injects *deterministic*,
//                    seed-scheduled faults: short writes, ENOSPC, failed
//                    rename/fsync, stalls (hung node), and simulated crash
//                    points with torn-tail-byte damage.  The fault decision
//                    for operation #k is a pure hash of (seed, k), never a
//                    sequential RNG stream, so the schedule is independent
//                    of thread interleaving: the same seed yields the same
//                    fault trace under --jobs 1 and --jobs 8.
//
// Injected recoverable faults surface as core::TransientError (bounded
// retries apply — see write_file_durable / replace_file_atomic); a simulated
// crash surfaces as core::SimulatedCrash, after which the FaultyFs is dead:
// every later operation rethrows the crash, modelling a killed process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace zerodeg::core {

/// The write seam every durable writer goes through.  Full-file granularity:
/// writers render their content in memory and persist it in one call, which
/// is what makes atomic tmp+rename replacement (and fault injection at exact
/// operation boundaries) possible.
class FileSystem {
public:
    virtual ~FileSystem() = default;

    /// Create/overwrite `path` with `content` and flush it.  Throws IoError
    /// (with dropped-byte accounting) on a short write, ENOSPC or a failed
    /// flush; the file may then hold any prefix of `content`.
    virtual void write_file(const std::filesystem::path& path, std::string_view content) = 0;

    /// The whole of `path` as bytes.  Throws IoError if unreadable.
    [[nodiscard]] virtual std::string read_file(const std::filesystem::path& path) = 0;

    [[nodiscard]] virtual bool exists(const std::filesystem::path& path) = 0;

    /// Atomically replace `to` with `from` (POSIX rename(2) semantics).
    virtual void rename(const std::filesystem::path& from, const std::filesystem::path& to) = 0;

    /// Delete `path` if it exists; missing files are not an error.
    virtual void remove(const std::filesystem::path& path) = 0;
};

/// The disk, via C stdio for exact short-write accounting.
class RealFs final : public FileSystem {
public:
    void write_file(const std::filesystem::path& path, std::string_view content) override;
    [[nodiscard]] std::string read_file(const std::filesystem::path& path) override;
    [[nodiscard]] bool exists(const std::filesystem::path& path) override;
    void rename(const std::filesystem::path& from, const std::filesystem::path& to) override;
    void remove(const std::filesystem::path& path) override;
};

/// Process-wide RealFs: the default FileSystem everywhere a caller passes
/// nullptr.  Stateless, so sharing one instance across threads is safe.
[[nodiscard]] FileSystem& real_fs();

/// A simulated process death injected by FaultyFs.  Deliberately NOT a
/// TransientError: retry loops must never absorb a crash — the torture
/// harness catches it at top level and restarts from the journal instead.
class SimulatedCrash : public Error {
public:
    explicit SimulatedCrash(const std::string& what) : Error(what, ErrorCode::kCrash) {}
};

/// Which filesystem operation an op-index refers to.
enum class IoOp { kWrite, kRead, kExists, kRename, kRemove };
[[nodiscard]] const char* to_string(IoOp op);

/// What FaultyFs did to an operation.
enum class FaultKind {
    kShortWrite,  ///< a prefix hit the disk, the rest was "lost"; TransientError
    kNoSpace,     ///< ENOSPC mid-write; a prefix hit the disk; TransientError
    kFlushFail,   ///< content written but fsync/flush "failed"; TransientError
    kRenameFail,  ///< rename refused, target untouched; TransientError
    kStall,       ///< op hung until the watchdog cancelled it; TransientError
    kCrash,       ///< simulated process death at this op; SimulatedCrash
};
[[nodiscard]] const char* to_string(FaultKind kind);

/// One injected fault, for the deterministic trace (same seed => same trace).
struct InjectedFault {
    std::size_t op_index = 0;
    IoOp op = IoOp::kWrite;
    FaultKind kind = FaultKind::kShortWrite;
    std::string path;
    [[nodiscard]] std::string to_string() const;
};

/// At which instant of operation #crash_at_op the simulated process dies.
enum class CrashPhase {
    kBeforeOp,   ///< nothing of the op happened
    kTornWrite,  ///< a write left a deterministic prefix of its content
    kAfterOp,    ///< the op fully completed, then the process died
    kTornTail,   ///< the op completed but the file's tail bytes were "lost"
                 ///< (page cache never reached the platter) before the death
};
[[nodiscard]] const char* to_string(CrashPhase phase);

/// Deterministic fault schedule.  Rates are per-operation probabilities,
/// decided per op-index by hashing (seed, op_index) — immune to thread order.
struct FaultPlan {
    std::uint64_t seed = 1;
    double write_fault_rate = 0.0;   ///< short write / ENOSPC / flush failure
    double rename_fault_rate = 0.0;  ///< refused rename
    double stall_rate = 0.0;         ///< hung write, cancellable via watchdog

    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    std::size_t crash_at_op = kNever;  ///< op index at which the process dies
    CrashPhase crash_phase = CrashPhase::kBeforeOp;

    /// Stall bail-out: a stalled op polls the cell's cancel token this many
    /// times (~1 ms apart) and then gives up stalling, so a plan without a
    /// watchdog can never hang a test run forever.
    std::size_t max_stall_polls = 2000;
};

/// Fault-injecting wrapper around another FileSystem (usually real_fs()).
/// Thread-safe; one global op counter orders operations across threads.
class FaultyFs final : public FileSystem {
public:
    explicit FaultyFs(FaultPlan plan, FileSystem* inner = nullptr);

    void write_file(const std::filesystem::path& path, std::string_view content) override;
    [[nodiscard]] std::string read_file(const std::filesystem::path& path) override;
    [[nodiscard]] bool exists(const std::filesystem::path& path) override;
    void rename(const std::filesystem::path& from, const std::filesystem::path& to) override;
    void remove(const std::filesystem::path& path) override;

    /// Operations seen so far (faulted or not).  After a run with a fault-free
    /// plan this is the number of crash points a torture pass must cover.
    [[nodiscard]] std::size_t op_count() const;

    /// Every fault injected so far, sorted by op index.  A pure function of
    /// (plan, op sequence): the determinism contract tests pin that the same
    /// seed produces the same trace.
    [[nodiscard]] std::vector<InjectedFault> fault_trace() const;

    /// True once the simulated crash fired; every operation now rethrows.
    [[nodiscard]] bool crashed() const;

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

private:
    [[nodiscard]] std::size_t next_op();
    void throw_if_dead() const;
    void crash(std::size_t op, IoOp kind, const std::filesystem::path& path);
    void maybe_stall(std::size_t op, IoOp kind, const std::filesystem::path& path);
    void record(std::size_t op, IoOp kind, FaultKind fault, const std::filesystem::path& path);

    FaultPlan plan_;
    FileSystem* inner_;
    mutable std::mutex mutex_;
    std::size_t ops_ = 0;
    bool crashed_ = false;
    std::vector<InjectedFault> trace_;
};

/// Bounded-retry budget for durable writes hit by transient (injected or
/// genuinely flaky) failures.  Deliberately shaped like CollectorRetryPolicy:
/// total attempts, not "extra retries".
struct IoRetryPolicy {
    int max_attempts = 3;
};

/// Write `content` to `path` through `fs`, retrying TransientError failures
/// up to the budget.  SimulatedCrash and real IoError are never retried.
/// Returns the number of retries that were absorbed.  On budget exhaustion
/// the last TransientError propagates, annotated with `what`.
int write_file_durable(FileSystem& fs, const std::filesystem::path& path,
                       std::string_view content, IoRetryPolicy retry, std::string_view what);

/// Crash-safe full-file replace: write `<path>.tmp`, then rename over
/// `path`.  A death at any instant leaves either the old complete file or
/// the new complete file — never a half-written one.  Transient faults on
/// either step restart the whole tmp+rename sequence, up to the budget.
/// Returns the number of retries absorbed.
int replace_file_atomic(FileSystem& fs, const std::filesystem::path& path,
                        std::string_view content, IoRetryPolicy retry, std::string_view what);

}  // namespace zerodeg::core
