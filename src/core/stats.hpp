// Small descriptive-statistics toolkit for reports and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace zerodeg::core {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

    /// Merge another accumulator into this one (Chan's parallel formula).
    void merge(const RunningStats& other);

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Percentile of a data set via linear interpolation between closest ranks.
/// `p` in [0, 100].  Copies and sorts; intended for report-sized data.
[[nodiscard]] double percentile(std::vector<double> data, double p);

/// Pearson correlation coefficient of two equal-length vectors.
[[nodiscard]] double pearson_correlation(const std::vector<double>& x,
                                         const std::vector<double>& y);

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// edge bins, which is what a report wants for a handful of outliers.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] std::size_t total() const { return total_; }
    [[nodiscard]] double bin_low(std::size_t i) const;
    [[nodiscard]] double bin_high(std::size_t i) const { return bin_low(i + 1); }

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

}  // namespace zerodeg::core
