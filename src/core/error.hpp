// Error types shared across the zerodeg libraries.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions derived
// from a single project base so callers can catch per-domain or project-wide.
#pragma once

#include <stdexcept>
#include <string>

namespace zerodeg::core {

/// Base class of every exception thrown by a zerodeg library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, bad state).
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (trace file, CSV, corpus) failed.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/// Data failed an integrity check (bad magic, CRC mismatch, short read).
class CorruptData : public Error {
public:
    explicit CorruptData(const std::string& what) : Error(what) {}
};

}  // namespace zerodeg::core

namespace zerodeg {
// The error types are spelled without the nested namespace often enough that
// project-level aliases are warranted.
using core::CorruptData;
using core::Error;
using core::InvalidArgument;
using core::IoError;
}  // namespace zerodeg
