// Error types shared across the zerodeg libraries.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions derived
// from a single project base so callers can catch per-domain or project-wide.
// Every error additionally carries
//   * a machine-checkable ErrorCode, so recovery logic (retry loops, journal
//     resume, the CLI's exit-code mapping) can branch without string-matching
//     what(), and
//   * a context chain: intermediate layers annotate a propagating error with
//     what they were doing ("loading journal 'x'", "reading trace row 12")
//     via add_context()/with_context(), so the final diagnostic reads
//     outermost-to-innermost like a narrative stack trace.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace zerodeg::core {

/// Coarse classification of every zerodeg failure.  kTransient is the one
/// the machinery treats specially: it marks failures that are expected to
/// succeed on a bounded retry (a flaky collection path, a contended
/// resource), as opposed to permanent ones (bad input, violated contract).
enum class ErrorCode {
    kUnknown,
    kInvalidArgument,  ///< caller violated a documented precondition
    kIo,               ///< file/stream operation failed
    kCorruptData,      ///< integrity check failed (bad magic, checksum, short read)
    kParse,            ///< text input did not match the expected grammar
    kStaleJournal,     ///< a checkpoint journal exists but belongs to a different campaign
    kTransient,        ///< retryable: the same operation may succeed shortly
    kCrash,            ///< simulated process death (fault injection); never retried
    kDisconnected,     ///< a message-transport link is down (peer gone, switch dead)
    kLeaseExpired,     ///< a work lease ran out: the holder missed its deadline
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
    switch (code) {
        case ErrorCode::kInvalidArgument: return "invalid-argument";
        case ErrorCode::kIo: return "io";
        case ErrorCode::kCorruptData: return "corrupt-data";
        case ErrorCode::kParse: return "parse";
        case ErrorCode::kStaleJournal: return "stale-journal";
        case ErrorCode::kTransient: return "transient";
        case ErrorCode::kCrash: return "crash";
        case ErrorCode::kDisconnected: return "disconnected";
        case ErrorCode::kLeaseExpired: return "lease-expired";
        case ErrorCode::kUnknown: break;
    }
    return "unknown";
}

/// Base class of every exception thrown by a zerodeg library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what, ErrorCode code = ErrorCode::kUnknown)
        : std::runtime_error(what), code_(code), what_(what) {}

    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

    /// Context frames, innermost (added first) to outermost.
    [[nodiscard]] const std::vector<std::string>& context() const noexcept { return context_; }

    /// Prepend a "what I was doing" frame to the diagnostic; what() becomes
    /// "<frame>: <previous what()>".
    void add_context(std::string frame) {
        what_ = frame + ": " + what_;
        context_.push_back(std::move(frame));
    }

    [[nodiscard]] const char* what() const noexcept override { return what_.c_str(); }

private:
    ErrorCode code_;
    std::vector<std::string> context_;
    std::string what_;
};

/// Run `fn`, annotating any propagating zerodeg Error with `frame`.
/// The exception object itself is amended and rethrown, so codes and
/// derived types survive the decoration.
template <typename Fn>
auto with_context(std::string frame, Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (Error& e) {
        e.add_context(std::move(frame));
        throw;
    }
}

/// A caller violated a documented precondition (bad argument, bad state).
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what)
        : Error(what, ErrorCode::kInvalidArgument) {}
};

/// An I/O operation (trace file, CSV, corpus, journal) failed.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what, ErrorCode::kIo) {}
};

/// Data failed an integrity check (bad magic, CRC mismatch, short read).
class CorruptData : public Error {
public:
    explicit CorruptData(const std::string& what, ErrorCode code = ErrorCode::kCorruptData)
        : Error(what, code) {}
};

/// Text input did not match the expected grammar.  Carries the 1-based line
/// number of the offending input row when known (0 = unknown), so CSV/trace/
/// journal loaders can say exactly where the file went wrong.
class ParseError : public CorruptData {
public:
    explicit ParseError(const std::string& what, std::size_t line = 0)
        : CorruptData(line > 0 ? "line " + std::to_string(line) + ": " + what : what,
                      ErrorCode::kParse),
          line_(line) {}

    /// 1-based input line, 0 when unknown.
    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

/// A checkpoint journal exists but belongs to a different campaign — its
/// recorded base seed, config fingerprint or cell count does not match the
/// sweep being run.  A stale journal is rejected, never silently reused.
class StaleJournal : public CorruptData {
public:
    explicit StaleJournal(const std::string& what)
        : CorruptData(what, ErrorCode::kStaleJournal) {}
};

/// A failure the caller may retry: the operation is expected to succeed on a
/// later bounded attempt (flaky network path, contended resource).  The
/// parallel cell machinery (core/parallel.hpp) retries these up to a bounded
/// attempt count; every other error type is treated as permanent.
class TransientError : public Error {
public:
    explicit TransientError(const std::string& what) : Error(what, ErrorCode::kTransient) {}
};

/// A work lease expired: its holder missed the protocol-op deadline (or its
/// link died) and the coordinator has withdrawn the grant.  Raised to the
/// operator when expiries pile up into a poison-cell quarantine — a campaign
/// whose result would silently omit cells must fail loudly instead.
class LeaseExpired : public Error {
public:
    explicit LeaseExpired(const std::string& what) : Error(what, ErrorCode::kLeaseExpired) {}
};

}  // namespace zerodeg::core

namespace zerodeg {
// The error types are spelled without the nested namespace often enough that
// project-level aliases are warranted.
using core::CorruptData;
using core::Error;
using core::ErrorCode;
using core::InvalidArgument;
using core::IoError;
using core::LeaseExpired;
using core::ParseError;
using core::StaleJournal;
using core::TransientError;
}  // namespace zerodeg
