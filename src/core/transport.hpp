// Message-transport seam for everything that crosses a process (or machine)
// boundary: the distributed-sweep shard protocol, the coordinator's collector
// service, and the netsim bridge that turns a dead loaner switch into a dead
// link.
//
// The design mirrors core::io (decision 9): one small interface, a real
// implementation, and a deterministic fault-injecting wrapper.
//
//   * Transport          — a bidirectional, ordered, reliable frame pipe.
//                          send() ships one opaque frame; try_recv()/
//                          recv_wait() yield whole frames in order.
//   * LoopbackTransport  — in-process pair of endpoints over a shared queue
//                          (make_loopback_pair / LoopbackListener), used by
//                          tests and the in-process distributed torture.
//   * UnixTransport      — AF_UNIX stream sockets with u32-LE length-prefix
//                          framing (transport_unix.cpp; the only file in the
//                          tree allowed to touch raw sockets — lint ZD014).
//   * FaultyTransport    — wraps another Transport and injects deterministic,
//                          seed-scheduled faults: drops, duplicates, reorders,
//                          stalls, disconnects and crash points.  The fault
//                          decision for message #k is a pure hash of
//                          (seed, channel, k), never a sequential RNG stream,
//                          so one seed yields one fault trace regardless of
//                          --jobs or process count.
//
// Fault surfacing follows the io seam's taxonomy: a dropped frame surfaces at
// the *sender* as core::TransientError ("the send timed out; resend"), a dead
// link as core::TransportClosed (ErrorCode::kDisconnected — reconnect or
// degrade, never blind-retry), and an injected crash as core::SimulatedCrash,
// after which the FaultyTransport is dead: every later operation rethrows,
// modelling a killed process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/io.hpp"

namespace zerodeg::core {

/// A message-transport link is down: the peer hung up, the listener was
/// closed, or a FaultyTransport injected a disconnect.  Deliberately NOT a
/// TransientError: the operation cannot succeed on this link — callers must
/// reconnect or degrade to local buffering (the worker falls back to its
/// SweepJournal), never blind-retry.
class TransportClosed : public Error {
public:
    explicit TransportClosed(const std::string& what)
        : Error(what, ErrorCode::kDisconnected) {}
};

/// A bidirectional, ordered frame pipe between exactly two endpoints.
/// Frames are opaque byte strings; the transport neither inspects nor
/// re-chunks them.  All methods are safe to call from multiple threads of
/// one endpoint (sends are serialized; so are receives).
class Transport {
public:
    virtual ~Transport() = default;

    /// Ship one frame to the peer.  Throws TransportClosed when either end
    /// has closed; a FaultyTransport may also throw TransientError (frame
    /// dropped — resend) or SimulatedCrash.
    virtual void send(std::string_view frame) = 0;

    /// Pop the next pending frame into `frame` without blocking.  Returns
    /// false when no frame is pending right now.  Throws TransportClosed
    /// once the link is down AND every already-delivered frame has been
    /// drained (in-flight frames are never silently discarded).
    virtual bool try_recv(std::string& frame) = 0;

    /// Block up to `timeout_ms` for the next frame (-1 = wait until a frame
    /// arrives or the link dies).  Returns false on timeout; throws
    /// TransportClosed as try_recv does.
    virtual bool recv_wait(std::string& frame, int timeout_ms) = 0;

    /// Close this endpoint.  Idempotent.  The peer's next blocked or future
    /// operation throws TransportClosed (after draining delivered frames).
    virtual void close() = 0;

    /// True once close() was called on this endpoint or the peer is known
    /// to be gone.
    [[nodiscard]] virtual bool closed() const = 0;
};

/// Accepts inbound connections for a coordinator-style service.
class Listener {
public:
    virtual ~Listener() = default;

    /// Wait up to `timeout_ms` (0 = poll, -1 = forever) for one inbound
    /// connection; nullptr on timeout or once the listener is closed.
    [[nodiscard]] virtual std::unique_ptr<Transport> accept(int timeout_ms) = 0;

    /// Stop accepting.  Pending un-accepted connections are closed so their
    /// clients observe TransportClosed instead of hanging.  Idempotent.
    virtual void close() = 0;
};

/// An in-process connected endpoint pair (worker end, coordinator end).
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

/// In-process Listener: connect() returns the client end and queues the
/// server end for accept(), mirroring the Unix-socket flow closely enough
/// that the distributed machinery cannot tell the difference.
class LoopbackListener final : public Listener {
public:
    LoopbackListener();
    ~LoopbackListener() override;

    /// Connect a new client; throws TransportClosed once the listener closed.
    /// Safe to call from any thread (worker threads dial the coordinator).
    [[nodiscard]] std::unique_ptr<Transport> connect();

    [[nodiscard]] std::unique_ptr<Transport> accept(int timeout_ms) override;
    void close() override;

private:
    struct State;
    std::shared_ptr<State> state_;
};

// --- Unix-domain sockets (transport_unix.cpp) ------------------------------

/// Listen on an AF_UNIX stream socket at `socket_path` (unlinked first if a
/// stale socket file exists).  Throws InvalidArgument when the path exceeds
/// the platform's sun_path limit, IoError on socket/bind/listen failure.
[[nodiscard]] std::unique_ptr<Listener> listen_unix(const std::filesystem::path& socket_path);

/// Connect to the Unix socket at `socket_path`.  Throws TransportClosed when
/// nobody is listening (the caller decides whether to retry, wait for the
/// coordinator, or degrade), IoError on other socket failures.
[[nodiscard]] std::unique_ptr<Transport> connect_unix(const std::filesystem::path& socket_path);

// --- local process spawning (transport_unix.cpp) ---------------------------

/// A child process started by spawn_process.  Movable handle; wait_process
/// reaps it.  Destroying an un-reaped handle abandons the child (it is not
/// killed), so always pair spawn with wait.
struct SpawnedProcess {
    long long pid = -1;
    [[nodiscard]] bool valid() const { return pid > 0; }
};

/// Fork+exec `argv` (argv[0] resolved via PATH), sharing this process's
/// stdio.  Lives in the transport seam because process primitives, like raw
/// sockets, are confined there (lint ZD014) — `zerodeg sweep
/// --spawn-workers N` uses it to launch local workers.  Throws
/// InvalidArgument on an empty argv, IoError when fork fails.
[[nodiscard]] SpawnedProcess spawn_process(const std::vector<std::string>& argv);

/// Block until the child exits; returns its exit code (128+signal when it
/// died on a signal).  Returns -1 for an invalid handle.  The handle is
/// invalidated, so a second wait is a safe no-op.
int wait_process(SpawnedProcess& child);

// --- deterministic fault injection -----------------------------------------

/// Which transport operation an op-index refers to.  Send and receive sides
/// keep independent counters; receive ops count *delivered* frames (a poll
/// that found nothing is not an op), so both schedules are pure functions of
/// the message sequence, immune to timing.
enum class NetOp { kSend, kRecv };
[[nodiscard]] const char* to_string(NetOp op);

/// What FaultyTransport did to a message.
enum class NetFaultKind {
    kDrop,        ///< frame vanished; sender sees TransientError, resends
    kDuplicate,   ///< frame delivered twice (the at-least-once case)
    kReorder,     ///< frame held back and delivered after its successor
    kStall,       ///< op hung until cancelled or the poll cap ran out
    kDisconnect,  ///< link cut; both ends see TransportClosed
    kCrash,       ///< simulated process death at this op; SimulatedCrash
};
[[nodiscard]] const char* to_string(NetFaultKind kind);

/// One injected fault, for the deterministic trace (same seed => same trace).
struct InjectedNetFault {
    std::size_t op_index = 0;
    NetOp op = NetOp::kSend;
    NetFaultKind kind = NetFaultKind::kDrop;
    [[nodiscard]] std::string to_string() const;
};

/// At which instant of the crash op the simulated process dies.
enum class NetCrashPhase {
    kBeforeOp,  ///< the frame never left / was never consumed
    kAfterOp,   ///< the op fully completed, then the process died
};
[[nodiscard]] const char* to_string(NetCrashPhase phase);

/// Deterministic fault schedule.  Rates are per-message probabilities,
/// decided per (seed, channel, op#) by a pure hash — immune to thread order
/// and to how many other links share the seed (each link gets its own
/// channel string).
struct TransportFaultPlan {
    std::uint64_t seed = 1;
    double drop_rate = 0.0;        ///< send-side frame loss
    double dup_rate = 0.0;         ///< frame delivered twice
    double reorder_rate = 0.0;     ///< frame swapped with its successor
    double stall_rate = 0.0;       ///< hung op, cancellable via watchdog token
    double ack_drop_rate = 0.0;    ///< recv-side frame loss (lost acks)
    double disconnect_rate = 0.0;  ///< link cut mid-conversation

    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    std::size_t crash_at_send = kNever;  ///< send op# at which the process dies
    std::size_t crash_at_recv = kNever;  ///< delivered-frame op# likewise
    NetCrashPhase crash_phase = NetCrashPhase::kBeforeOp;

    /// Stall bail-out, as in FaultPlan: polls of the cell cancel token
    /// (~1 ms apart) before the stall gives up on its own.
    std::size_t max_stall_polls = 50;
};

/// Fault-injecting wrapper around another Transport.  Thread-safe; send and
/// recv counters order operations deterministically per endpoint.
class FaultyTransport final : public Transport {
public:
    /// `channel` names this link (e.g. "worker.3"): it is folded into the
    /// hash so links sharing one plan get distinct but stable schedules.
    FaultyTransport(TransportFaultPlan plan, std::string_view channel,
                    std::unique_ptr<Transport> inner);
    ~FaultyTransport() override;

    void send(std::string_view frame) override;
    bool try_recv(std::string& frame) override;
    bool recv_wait(std::string& frame, int timeout_ms) override;
    void close() override;
    [[nodiscard]] bool closed() const override;

    /// Send / delivered-frame operations seen so far (faulted or not).  After
    /// a fault-free run these are the crash points a torture pass must cover.
    [[nodiscard]] std::size_t send_ops() const;
    [[nodiscard]] std::size_t recv_ops() const;

    /// Every fault injected so far, ordered by injection time.  A pure
    /// function of (plan, channel, message sequence).
    [[nodiscard]] std::vector<InjectedNetFault> fault_trace() const;

    /// True once the simulated crash fired; every operation now rethrows.
    [[nodiscard]] bool crashed() const;

    [[nodiscard]] const TransportFaultPlan& plan() const { return plan_; }

private:
    [[nodiscard]] double fault_roll(std::size_t op, std::uint64_t fault_channel) const;
    void crash(std::size_t op, NetOp kind);
    void maybe_stall(std::size_t op, NetOp kind);
    void record(std::size_t op, NetOp kind, NetFaultKind fault);
    void throw_if_dead() const;
    /// Deliver the reorder-held frame, if any (also called before receives
    /// and on close, so a held frame can never deadlock an ack wait).
    void flush_held_locked();
    [[nodiscard]] bool deliver_one(std::string& frame, bool block, int timeout_ms);

    TransportFaultPlan plan_;
    std::uint64_t channel_seed_ = 0;
    std::string channel_;
    std::unique_ptr<Transport> inner_;
    mutable std::mutex mutex_;
    std::size_t send_ops_ = 0;
    std::size_t recv_ops_ = 0;
    bool crashed_ = false;
    std::vector<std::string> held_;  ///< frames delayed by a reorder fault
    std::vector<InjectedNetFault> trace_;
};

}  // namespace zerodeg::core
