// Deterministic fork/join helpers over TaskPool.
//
// The contract that makes parallel Monte-Carlo runs bit-identical to serial
// ones: every index gets its own task, every task writes only its own
// caller-owned slot, and the caller consumes the slots in index order.  The
// scheduling order of the pool is therefore unobservable — parallel_map with
// any worker count produces the exact bytes of the serial loop, which is the
// property tests/test_parallel_determinism.cpp locks in.
//
// Exceptions thrown by `fn` are caught per-index and the lowest-index one is
// rethrown on the calling thread once every task has finished, so error
// reporting is deterministic too (not "whichever worker lost the race").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/task_pool.hpp"

namespace zerodeg::core {

namespace detail {

/// Join state shared by one parallel_for call: completion latch + the
/// per-index exception slots.
struct ForkJoinState {
    explicit ForkJoinState(std::size_t count)
        : remaining(count), errors(count) {}

    void finish_one() {
        std::unique_lock lock(mutex);
        if (--remaining == 0) done.notify_all();
    }
    void wait() {
        std::unique_lock lock(mutex);
        done.wait(lock, [this] { return remaining == 0; });
    }
    void rethrow_first_error() const {
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
    }

    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
};

}  // namespace detail

/// Run fn(i) for every i in [begin, end) on the pool and block until all are
/// done.  Rethrows the lowest-index exception, if any.  With begin == end it
/// returns immediately without touching the pool.
template <typename Fn>
void parallel_for(TaskPool& pool, std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    detail::ForkJoinState state(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        // submit() applies backpressure when the bounded queue fills, so a
        // large index range never materialises all closures at once.
        pool.submit([&state, &fn, i, begin] {
            try {
                fn(i);
            } catch (...) {
                state.errors[i - begin] = std::current_exception();
            }
            state.finish_one();
        });
    }
    state.wait();
    state.rethrow_first_error();
}

/// Run fn(i) for i in [0, count) and return the results ordered by index —
/// result[i] is fn(i) no matter how the pool interleaved the work.
template <typename Fn>
[[nodiscard]] auto parallel_map(TaskPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> results(count);
    parallel_for(pool, 0, count, [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
}

/// Serial fallbacks with the identical signature, used by callers that treat
/// jobs <= 1 as "don't spin up threads at all".
template <typename Fn>
void serial_for(std::size_t begin, std::size_t end, Fn&& fn) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
}

template <typename Fn>
[[nodiscard]] auto serial_map(std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> results(count);
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
}

}  // namespace zerodeg::core
