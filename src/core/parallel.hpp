// Deterministic fork/join helpers over TaskPool.
//
// The contract that makes parallel Monte-Carlo runs bit-identical to serial
// ones: every index gets its own task, every task writes only its own
// caller-owned slot, and the caller consumes the slots in index order.  The
// scheduling order of the pool is therefore unobservable — parallel_map with
// any worker count produces the exact bytes of the serial loop, which is the
// property tests/test_parallel_determinism.cpp locks in.
//
// Exceptions thrown by `fn` are caught per-index and the lowest-index one is
// rethrown on the calling thread once every task has finished, so error
// reporting is deterministic too (not "whichever worker lost the race").
//
// Cells distinguish *transient* from *permanent* failures: a cell that
// throws core::TransientError is retried in place up to CellRetry's bounded
// attempt budget before its error is recorded; any other exception is
// permanent and recorded on the first throw.  Either way the error lands in
// the cell's own slot, so the lowest-index-wins contract is unchanged.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/task_pool.hpp"

namespace zerodeg::core {

/// Retry budget for transiently-failing cells.  `max_attempts` counts total
/// tries (1 = fail on the first throw, the historical behaviour).
struct CellRetry {
    int max_attempts = 1;
};

namespace detail {

/// Join state shared by one parallel_for call: completion latch + the
/// per-index exception slots.
struct ForkJoinState {
    explicit ForkJoinState(std::size_t count)
        : remaining(count), errors(count) {}

    void finish_one() {
        std::unique_lock lock(mutex);
        if (--remaining == 0) done.notify_all();
    }
    void wait() {
        std::unique_lock lock(mutex);
        done.wait(lock, [this] { return remaining == 0; });
    }
    void rethrow_first_error() const {
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
    }

    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
};

/// Run one cell with the transient-retry budget; returns the error to record
/// (nullptr on success).  Permanent errors are recorded on the first throw;
/// TransientError is retried until the budget is spent, then annotated with
/// the attempt count so the diagnostic says the failure *persisted*.
template <typename Fn>
[[nodiscard]] std::exception_ptr run_cell(Fn& fn, std::size_t i, CellRetry retry) noexcept {
    for (int attempt = 1;; ++attempt) {
        try {
            fn(i);
            return nullptr;
        } catch (TransientError& e) {
            if (attempt < retry.max_attempts) continue;
            e.add_context("cell " + std::to_string(i) + ": transient failure persisted after " +
                          std::to_string(attempt) + " attempt(s)");
            return std::current_exception();
        } catch (...) {
            return std::current_exception();
        }
    }
}

}  // namespace detail

/// Run fn(i) for every i in [begin, end) on the pool and block until all are
/// done.  Rethrows the lowest-index exception, if any.  With begin == end it
/// returns immediately without touching the pool.
template <typename Fn>
void parallel_for(TaskPool& pool, std::size_t begin, std::size_t end, Fn&& fn,
                  CellRetry retry = {}) {
    if (begin >= end) return;
    detail::ForkJoinState state(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        // submit() applies backpressure when the bounded queue fills, so a
        // large index range never materialises all closures at once.
        pool.submit([&state, &fn, i, begin, retry] {
            state.errors[i - begin] = detail::run_cell(fn, i, retry);
            state.finish_one();
        });
    }
    state.wait();
    state.rethrow_first_error();
}

/// Run fn(i) for i in [0, count) and return the results ordered by index —
/// result[i] is fn(i) no matter how the pool interleaved the work.
template <typename Fn>
[[nodiscard]] auto parallel_map(TaskPool& pool, std::size_t count, Fn&& fn,
                                CellRetry retry = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> results(count);
    parallel_for(
        pool, 0, count, [&results, &fn](std::size_t i) { results[i] = fn(i); }, retry);
    return results;
}

/// Serial fallbacks with the identical signature, used by callers that treat
/// jobs <= 1 as "don't spin up threads at all".  The serial loop stops at
/// the first failed cell, which is by construction the lowest-index error.
template <typename Fn>
void serial_for(std::size_t begin, std::size_t end, Fn&& fn, CellRetry retry = {}) {
    for (std::size_t i = begin; i < end; ++i) {
        if (const std::exception_ptr err = detail::run_cell(fn, i, retry)) {
            std::rethrow_exception(err);
        }
    }
}

template <typename Fn>
[[nodiscard]] auto serial_map(std::size_t count, Fn&& fn, CellRetry retry = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> results(count);
    serial_for(
        0, count, [&results, &fn](std::size_t i) { results[i] = fn(i); }, retry);
    return results;
}

}  // namespace zerodeg::core
