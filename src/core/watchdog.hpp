// Deadline supervision for sweep cells: the harness-level answer to the
// paper's hung machines that needed an operator walk to the tent.
//
// A Watchdog owns one supervisor thread.  Each unit of work registers via
// watch(label), which hands back an RAII scope holding a CancelToken; if the
// scope is still alive past the deadline, the supervisor cancels the token
// and books the label as a "hung node".  Cancellation is cooperative: code
// deep inside the cell (e.g. a FaultyFs stall fault) polls the thread-local
// current_cell_token() and bails out with core::TransientError, so a hung
// cell is charged against its CellRetry budget like any other transient
// failure — detected, cancelled, retried, reported.
//
// Wall-clock time here measures the *harness*, never the simulation, so the
// ZD003 suppressions below are legitimate (same rationale as
// benchutil::WallTimer).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace zerodeg::core {

/// A shared cancellation flag.  Copies share the flag; cancelling any copy
/// cancels them all.  Safe to poll from any thread.
class CancelToken {
public:
    CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    void cancel() const { flag_->store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

    /// Cooperative cancellation point: throws core::TransientError carrying
    /// `what` once the token is cancelled.
    void throw_if_cancelled(const std::string& what) const;

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/// The cancel token of the cell running on this thread, or nullptr when no
/// ScopedCellToken is active.  Lets leaf code (fault injection, long loops)
/// honour the watchdog without threading a token through every signature.
[[nodiscard]] const CancelToken* current_cell_token();

/// RAII installer of the thread-local cell token; nests (restores the
/// previous token on destruction) so retried cells stack cleanly.
class ScopedCellToken {
public:
    explicit ScopedCellToken(CancelToken token);
    ~ScopedCellToken();
    ScopedCellToken(const ScopedCellToken&) = delete;
    ScopedCellToken& operator=(const ScopedCellToken&) = delete;

private:
    CancelToken token_;
    const CancelToken* previous_;
};

/// Deadline supervisor.  One background thread watches every active scope
/// and cancels those that outlive `deadline_ms` of wall-clock time.
class Watchdog {
public:
    explicit Watchdog(std::int64_t deadline_ms);
    ~Watchdog();
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// An active supervision entry; destroying it deregisters the work.
    /// Movable so watch() can return by value; not copyable.
    class Scope {
    public:
        ~Scope();
        Scope(Scope&& other) noexcept;
        Scope& operator=(Scope&&) = delete;
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

        /// The token the supervisor cancels on deadline overrun.
        [[nodiscard]] const CancelToken& token() const { return token_; }

    private:
        friend class Watchdog;
        Scope(Watchdog* dog, std::size_t id, CancelToken token)
            : dog_(dog), id_(id), token_(std::move(token)) {}
        Watchdog* dog_;
        std::size_t id_;
        CancelToken token_;
    };

    /// Begin supervising one unit of work (e.g. "cell 4").  Keep the scope
    /// alive for exactly the duration of the work.
    [[nodiscard]] Scope watch(std::string label);

    /// How many scopes overran the deadline and were cancelled.
    [[nodiscard]] std::size_t hung_count() const;

    /// Labels of every cancelled scope, sorted (deterministic reporting).
    [[nodiscard]] std::vector<std::string> hung_labels() const;

    [[nodiscard]] std::int64_t deadline_ms() const { return deadline_.count(); }

private:
    struct Entry {
        std::size_t id = 0;
        std::string label;
        // zerodeg-lint: allow(ZD003): harness wall-clock deadline, not simulation time
        std::chrono::steady_clock::time_point start;
        CancelToken token;
    };

    void release(std::size_t id);
    void supervise();

    std::chrono::milliseconds deadline_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::size_t next_id_ = 0;
    std::vector<Entry> active_;
    std::vector<std::string> hung_;
    std::thread supervisor_;
};

}  // namespace zerodeg::core
