// Discrete-event simulation engine.
//
// The whole experiment is event-driven: weather ticks, thermal integration
// steps, each host's 10-minute workload cycle (with its 0-119 s start fuzz),
// the monitor's 20-minute collection sweep, fault arrivals, and the operator
// interventions (tent modifications, host replacement) are all events on one
// queue.  Ties are broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "core/sim_time.hpp"

namespace zerodeg::core {

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

/// The simulation event loop.
class Simulator {
public:
    using Callback = std::function<void()>;

    explicit Simulator(TimePoint start = TimePoint{}) : now_(start) {}

    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedule `fn` to run at absolute time `when` (>= now).
    EventId schedule_at(TimePoint when, Callback fn, std::string label = {});

    /// Schedule `fn` to run `delay` from now.
    EventId schedule_in(Duration delay, Callback fn, std::string label = {}) {
        return schedule_at(now_ + delay, std::move(fn), std::move(label));
    }

    /// Schedule `fn` every `period`, first firing at `first`.  The callback
    /// may call cancel() on the returned id to stop the recurrence.
    EventId schedule_every(TimePoint first, Duration period, Callback fn,
                           std::string label = {});

    /// Cancel a pending (or recurring) event.  Returns false if it was not
    /// pending (already fired and non-recurring, or unknown).
    bool cancel(EventId id);

    /// Run all events with time <= `until`; the clock ends at `until`.
    void run_until(TimePoint until);

    /// Run a single event; returns false if the queue is empty.
    bool step();

    [[nodiscard]] std::size_t pending_events() const;
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

private:
    struct Event {
        TimePoint when;
        std::uint64_t seq = 0;  ///< tie-breaker: FIFO among equal timestamps
        EventId id = 0;
        Callback fn;
        Duration period{0};  ///< zero => one-shot
        std::string label;

        bool operator>(const Event& rhs) const {
            if (when != rhs.when) return when > rhs.when;
            return seq > rhs.seq;
        }
    };

    TimePoint now_;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::vector<EventId> cancelled_;  ///< small; linear scan on pop

    [[nodiscard]] bool is_cancelled(EventId id) const;
    void forget_cancelled(EventId id);
};

}  // namespace zerodeg::core
