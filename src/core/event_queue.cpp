#include "core/event_queue.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::core {

EventId Simulator::schedule_at(TimePoint when, Callback fn, std::string label) {
    if (when < now_) throw InvalidArgument("Simulator::schedule_at: time is in the past");
    if (!fn) throw InvalidArgument("Simulator::schedule_at: empty callback");
    Event ev;
    ev.when = when;
    ev.seq = next_seq_++;
    ev.id = next_id_++;
    ev.fn = std::move(fn);
    ev.label = std::move(label);
    const EventId id = ev.id;
    queue_.push(std::move(ev));
    return id;
}

EventId Simulator::schedule_every(TimePoint first, Duration period, Callback fn,
                                  std::string label) {
    if (period.count() <= 0) {
        throw InvalidArgument("Simulator::schedule_every: period must be positive");
    }
    if (first < now_) throw InvalidArgument("Simulator::schedule_every: time is in the past");
    if (!fn) throw InvalidArgument("Simulator::schedule_every: empty callback");
    Event ev;
    ev.when = first;
    ev.seq = next_seq_++;
    ev.id = next_id_++;
    ev.fn = std::move(fn);
    ev.period = period;
    ev.label = std::move(label);
    const EventId id = ev.id;
    queue_.push(std::move(ev));
    return id;
}

bool Simulator::cancel(EventId id) {
    if (id == 0 || id >= next_id_) return false;
    if (is_cancelled(id)) return false;
    cancelled_.push_back(id);
    return true;
}

bool Simulator::is_cancelled(EventId id) const {
    return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void Simulator::forget_cancelled(EventId id) {
    cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), id), cancelled_.end());
}

bool Simulator::step() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (is_cancelled(ev.id)) {
            forget_cancelled(ev.id);
            continue;
        }
        now_ = ev.when;
        ++executed_;
        if (ev.period.count() > 0) {
            Event next = ev;  // copies the shared callback
            next.when = ev.when + ev.period;
            next.seq = next_seq_++;
            queue_.push(std::move(next));
        }
        ev.fn();
        return true;
    }
    return false;
}

void Simulator::run_until(TimePoint until) {
    while (!queue_.empty() && queue_.top().when <= until) {
        if (!step()) break;
    }
    if (until > now_) now_ = until;
}

std::size_t Simulator::pending_events() const {
    // Cancelled events still sit in the heap; subtract them.
    return queue_.size() - cancelled_.size();
}

}  // namespace zerodeg::core
