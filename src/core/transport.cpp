#include "core/transport.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/rng.hpp"
#include "core/watchdog.hpp"

namespace zerodeg::core {

const char* to_string(NetOp op) {
    switch (op) {
        case NetOp::kSend: return "send";
        case NetOp::kRecv: return "recv";
    }
    return "?";
}

const char* to_string(NetFaultKind kind) {
    switch (kind) {
        case NetFaultKind::kDrop: return "drop";
        case NetFaultKind::kDuplicate: return "duplicate";
        case NetFaultKind::kReorder: return "reorder";
        case NetFaultKind::kStall: return "stall";
        case NetFaultKind::kDisconnect: return "disconnect";
        case NetFaultKind::kCrash: return "crash";
    }
    return "?";
}

const char* to_string(NetCrashPhase phase) {
    switch (phase) {
        case NetCrashPhase::kBeforeOp: return "before-op";
        case NetCrashPhase::kAfterOp: return "after-op";
    }
    return "?";
}

std::string InjectedNetFault::to_string() const {
    return "op " + std::to_string(op_index) + ' ' + core::to_string(op) + ": " +
           core::to_string(kind);
}

// --- loopback ---------------------------------------------------------------

namespace {

/// Shared state of one endpoint pair.  queue[i] holds frames sent BY
/// endpoint i (so endpoint i receives from queue[1 - i]).
struct PairState {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::string> queue[2];
    bool endpoint_closed[2] = {false, false};
};

class LoopbackTransport final : public Transport {
public:
    LoopbackTransport(std::shared_ptr<PairState> state, int me)
        : state_(std::move(state)), me_(me) {}

    ~LoopbackTransport() override { close(); }

    void send(std::string_view frame) override {
        std::lock_guard lock(state_->mutex);
        if (state_->endpoint_closed[me_]) {
            throw TransportClosed("send on a closed loopback endpoint");
        }
        if (state_->endpoint_closed[1 - me_]) {
            throw TransportClosed("loopback peer has closed the link");
        }
        state_->queue[me_].emplace_back(frame);
        state_->cv.notify_all();
    }

    bool try_recv(std::string& frame) override {
        std::lock_guard lock(state_->mutex);
        return pop_locked(frame);
    }

    bool recv_wait(std::string& frame, int timeout_ms) override {
        std::unique_lock lock(state_->mutex);
        const auto ready = [&] {
            return !state_->queue[1 - me_].empty() || state_->endpoint_closed[me_] ||
                   state_->endpoint_closed[1 - me_];
        };
        if (timeout_ms < 0) {
            state_->cv.wait(lock, ready);
        } else if (!state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
            return false;
        }
        return pop_locked(frame);
    }

    void close() override {
        std::lock_guard lock(state_->mutex);
        state_->endpoint_closed[me_] = true;
        state_->cv.notify_all();
    }

    [[nodiscard]] bool closed() const override {
        std::lock_guard lock(state_->mutex);
        return state_->endpoint_closed[me_] || state_->endpoint_closed[1 - me_];
    }

private:
    /// Pop under the caller's lock; delivered frames outlive a peer close.
    bool pop_locked(std::string& frame) {
        if (!state_->queue[1 - me_].empty()) {
            frame = std::move(state_->queue[1 - me_].front());
            state_->queue[1 - me_].pop_front();
            return true;
        }
        if (state_->endpoint_closed[me_]) {
            throw TransportClosed("recv on a closed loopback endpoint");
        }
        if (state_->endpoint_closed[1 - me_]) {
            throw TransportClosed("loopback peer has closed the link (queue drained)");
        }
        return false;
    }

    std::shared_ptr<PairState> state_;
    int me_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_loopback_pair() {
    auto state = std::make_shared<PairState>();
    return {std::make_unique<LoopbackTransport>(state, 0),
            std::make_unique<LoopbackTransport>(state, 1)};
}

struct LoopbackListener::State {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::unique_ptr<Transport>> pending;
    bool closed = false;
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { close(); }

std::unique_ptr<Transport> LoopbackListener::connect() {
    auto [client, server] = make_loopback_pair();
    {
        std::lock_guard lock(state_->mutex);
        if (state_->closed) {
            throw TransportClosed("loopback listener is closed (coordinator gone)");
        }
        state_->pending.push_back(std::move(server));
        state_->cv.notify_all();
    }
    return std::move(client);
}

std::unique_ptr<Transport> LoopbackListener::accept(int timeout_ms) {
    std::unique_lock lock(state_->mutex);
    const auto ready = [&] { return !state_->pending.empty() || state_->closed; };
    if (timeout_ms < 0) {
        state_->cv.wait(lock, ready);
    } else if (timeout_ms > 0) {
        if (!state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
            return nullptr;
        }
    }
    if (state_->pending.empty()) return nullptr;
    std::unique_ptr<Transport> link = std::move(state_->pending.front());
    state_->pending.pop_front();
    return link;
}

void LoopbackListener::close() {
    std::deque<std::unique_ptr<Transport>> orphans;
    {
        std::lock_guard lock(state_->mutex);
        state_->closed = true;
        // Closing the pending server ends (outside the lock) wakes their
        // clients with TransportClosed instead of leaving them waiting on a
        // welcome that can never come.
        orphans.swap(state_->pending);
        state_->cv.notify_all();
    }
    for (const std::unique_ptr<Transport>& orphan : orphans) orphan->close();
}

// --- fault injection --------------------------------------------------------

namespace {

/// Same construction as core::io's fault_hash: stateless per-op decisions,
/// so the schedule is a pure function of (seed, channel, message #) and
/// never of thread interleaving or wall-clock timing.
std::uint64_t net_fault_hash(std::uint64_t seed, std::size_t op, std::uint64_t channel) {
    std::uint64_t state = seed ^ (static_cast<std::uint64_t>(op) * 0x9e3779b97f4a7c15ULL) ^
                          (channel * 0xd1342543de82ef95ULL);
    return splitmix64(state);
}

double net_fault_u01(std::uint64_t seed, std::size_t op, std::uint64_t channel) {
    return static_cast<double>(net_fault_hash(seed, op, channel) >> 11) * 0x1.0p-53;
}

// Hash channels, one per independent decision about a message.  Offset well
// clear of io.cpp's channels so composing FaultyFs and FaultyTransport with
// one seed still gives independent schedules.
constexpr std::uint64_t kChanDrop = 101;
constexpr std::uint64_t kChanDup = 102;
constexpr std::uint64_t kChanReorder = 103;
constexpr std::uint64_t kChanNetStall = 104;
constexpr std::uint64_t kChanDisconnect = 105;
constexpr std::uint64_t kChanAckDrop = 106;

}  // namespace

FaultyTransport::FaultyTransport(TransportFaultPlan plan, std::string_view channel,
                                 std::unique_ptr<Transport> inner)
    : plan_(plan),
      channel_seed_(plan.seed ^ fnv1a(channel)),
      channel_(channel),
      inner_(std::move(inner)) {
    if (!inner_) throw InvalidArgument("FaultyTransport needs an inner transport");
}

FaultyTransport::~FaultyTransport() {
    // Mirror ~LoopbackTransport: destruction hangs up, but without the
    // fault machinery (a destroyed endpoint can't crash again).
    try {
        std::lock_guard lock(mutex_);
        if (!crashed_) flush_held_locked();
        inner_->close();
    } catch (...) {  // NOLINT(bugprone-empty-catch): best-effort hangup
    }
}

double FaultyTransport::fault_roll(std::size_t op, std::uint64_t fault_channel) const {
    return net_fault_u01(channel_seed_, op, fault_channel);
}

void FaultyTransport::record(std::size_t op, NetOp kind, NetFaultKind fault) {
    trace_.push_back(InjectedNetFault{op, kind, fault});
}

void FaultyTransport::throw_if_dead() const {
    if (crashed_) {
        throw SimulatedCrash("transport unreachable: simulated process crash already fired");
    }
}

void FaultyTransport::crash(std::size_t op, NetOp kind) {
    crashed_ = true;
    trace_.push_back(InjectedNetFault{op, kind, NetFaultKind::kCrash});
    inner_->close();  // the peer observes a hangup, exactly like a real death
    throw SimulatedCrash("simulated process crash at transport " +
                         std::string(core::to_string(kind)) + " op " + std::to_string(op) +
                         " (" + core::to_string(plan_.crash_phase) + ", link '" + channel_ +
                         "')");
}

void FaultyTransport::maybe_stall(std::size_t op, NetOp kind) {
    if (plan_.stall_rate <= 0.0 || fault_roll(op, kChanNetStall) >= plan_.stall_rate) return;
    record(op, kind, NetFaultKind::kStall);
    for (std::size_t poll = 0; poll < plan_.max_stall_polls; ++poll) {
        if (const CancelToken* token = current_cell_token(); token && token->cancelled()) {
            throw TransientError("injected transport stall on '" + channel_ +
                                 "' cancelled by watchdog after " + std::to_string(poll + 1) +
                                 " polls (hung link)");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Unobserved hang: the frame eventually moves, like a congested path
    // that recovered.  The stall stays in the fault trace either way.
}

void FaultyTransport::flush_held_locked() {
    for (std::string& frame : held_) inner_->send(frame);
    held_.clear();
}

void FaultyTransport::send(std::string_view frame) {
    std::lock_guard lock(mutex_);
    throw_if_dead();
    const std::size_t op = send_ops_++;
    if (op == plan_.crash_at_send && plan_.crash_phase == NetCrashPhase::kBeforeOp) {
        crash(op, NetOp::kSend);
    }
    maybe_stall(op, NetOp::kSend);
    if (plan_.disconnect_rate > 0.0 && fault_roll(op, kChanDisconnect) < plan_.disconnect_rate) {
        record(op, NetOp::kSend, NetFaultKind::kDisconnect);
        inner_->close();
        throw TransportClosed("injected disconnect at send op " + std::to_string(op) +
                              " on link '" + channel_ + "'");
    }
    if (plan_.drop_rate > 0.0 && fault_roll(op, kChanDrop) < plan_.drop_rate) {
        record(op, NetOp::kSend, NetFaultKind::kDrop);
        throw TransientError("injected frame drop at send op " + std::to_string(op) +
                             " on link '" + channel_ + "' (frame not delivered; resend)");
    }
    if (plan_.reorder_rate > 0.0 && fault_roll(op, kChanReorder) < plan_.reorder_rate) {
        // Hold this frame back; it ships right after the NEXT frame (or on
        // close / before our next receive, so it can never ack-deadlock).
        record(op, NetOp::kSend, NetFaultKind::kReorder);
        held_.emplace_back(frame);
    } else {
        inner_->send(frame);
        flush_held_locked();
    }
    if (plan_.dup_rate > 0.0 && fault_roll(op, kChanDup) < plan_.dup_rate) {
        record(op, NetOp::kSend, NetFaultKind::kDuplicate);
        inner_->send(frame);
    }
    if (op == plan_.crash_at_send && plan_.crash_phase == NetCrashPhase::kAfterOp) {
        crash(op, NetOp::kSend);
    }
}

bool FaultyTransport::deliver_one(std::string& frame, bool block, int timeout_ms) {
    std::lock_guard lock(mutex_);
    throw_if_dead();
    // A frame held for reordering must not outwait a peer that is itself
    // waiting on it: flush before we start listening.  The closed() check
    // races with the peer's own hangup — losing that race must not mask
    // frames the peer already delivered (they drain before TransportClosed).
    if (!held_.empty() && !inner_->closed()) {
        try {
            flush_held_locked();
        } catch (const TransportClosed&) {
            held_.clear();  // peer gone; nothing will ever read these
        }
    }
    const bool got =
        block ? inner_->recv_wait(frame, timeout_ms) : inner_->try_recv(frame);
    if (!got) return false;
    const std::size_t op = recv_ops_++;  // counts delivered frames only
    if (op == plan_.crash_at_recv && plan_.crash_phase == NetCrashPhase::kBeforeOp) {
        crash(op, NetOp::kRecv);
    }
    maybe_stall(op, NetOp::kRecv);
    if (plan_.ack_drop_rate > 0.0 && fault_roll(op, kChanAckDrop) < plan_.ack_drop_rate) {
        // The frame evaporated between the wire and the application (a lost
        // ack): the caller keeps waiting and its resend budget takes over.
        record(op, NetOp::kRecv, NetFaultKind::kDrop);
        frame.clear();
        return false;
    }
    if (op == plan_.crash_at_recv && plan_.crash_phase == NetCrashPhase::kAfterOp) {
        crash(op, NetOp::kRecv);
    }
    return true;
}

bool FaultyTransport::try_recv(std::string& frame) {
    return deliver_one(frame, /*block=*/false, 0);
}

bool FaultyTransport::recv_wait(std::string& frame, int timeout_ms) {
    return deliver_one(frame, /*block=*/true, timeout_ms);
}

void FaultyTransport::close() {
    std::lock_guard lock(mutex_);
    if (!crashed_) {
        try {
            flush_held_locked();
        } catch (const TransportClosed&) {
            held_.clear();  // the peer hung up first; a held frame is just lost
        }
    }
    inner_->close();
}

bool FaultyTransport::closed() const {
    std::lock_guard lock(mutex_);
    return crashed_ || inner_->closed();
}

std::size_t FaultyTransport::send_ops() const {
    std::lock_guard lock(mutex_);
    return send_ops_;
}

std::size_t FaultyTransport::recv_ops() const {
    std::lock_guard lock(mutex_);
    return recv_ops_;
}

std::vector<InjectedNetFault> FaultyTransport::fault_trace() const {
    std::lock_guard lock(mutex_);
    return trace_;
}

bool FaultyTransport::crashed() const {
    std::lock_guard lock(mutex_);
    return crashed_;
}

}  // namespace zerodeg::core
