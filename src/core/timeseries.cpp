#include "core/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace zerodeg::core {

void TimeSeries::append(TimePoint t, double value) {
    if (!samples_.empty() && t < samples_.back().time) {
        throw InvalidArgument("TimeSeries::append: samples must be time-ordered (series '" +
                              name_ + "')");
    }
    samples_.push_back({t, value});
}

std::optional<double> TimeSeries::interpolate(TimePoint t) const {
    if (samples_.empty() || t < samples_.front().time || t > samples_.back().time) {
        return std::nullopt;
    }
    const auto it = std::lower_bound(
        samples_.begin(), samples_.end(), t,
        [](const Sample& s, TimePoint tp) { return s.time < tp; });
    if (it->time == t) return it->value;
    const Sample& hi = *it;
    const Sample& lo = *(it - 1);
    const double span = static_cast<double>((hi.time - lo.time).count());
    if (span <= 0.0) return lo.value;
    const double w = static_cast<double>((t - lo.time).count()) / span;
    return lo.value + w * (hi.value - lo.value);
}

std::optional<double> TimeSeries::value_at_or_before(TimePoint t) const {
    if (samples_.empty() || t < samples_.front().time) return std::nullopt;
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](TimePoint tp, const Sample& s) { return tp < s.time; });
    return (it - 1)->value;
}

SeriesStats TimeSeries::stats() const {
    if (samples_.empty()) return {};
    return stats_between(samples_.front().time, samples_.back().time);
}

SeriesStats TimeSeries::stats_between(TimePoint from, TimePoint to) const {
    RunningStats acc;
    for (const Sample& s : samples_) {
        if (s.time < from || s.time > to) continue;
        acc.add(s.value);
    }
    SeriesStats out;
    out.count = acc.count();
    if (out.count == 0) return out;
    out.min = acc.min();
    out.max = acc.max();
    out.mean = acc.mean();
    out.stddev = acc.stddev();
    return out;
}

TimeSeries TimeSeries::resample(TimePoint from, TimePoint to, Duration step) const {
    if (step.count() <= 0) throw InvalidArgument("TimeSeries::resample: step must be positive");
    TimeSeries out(name_);
    for (TimePoint t = from; t <= to; t += step) {
        if (const auto v = interpolate(t)) out.append(t, *v);
    }
    return out;
}

TimeSeries TimeSeries::slice(TimePoint from, TimePoint to) const {
    TimeSeries out(name_);
    for (const Sample& s : samples_) {
        if (s.time >= from && s.time <= to) out.samples_.push_back(s);
    }
    return out;
}

std::size_t TimeSeries::remove_if(const std::function<bool(const Sample&)>& pred) {
    const auto it = std::remove_if(samples_.begin(), samples_.end(), pred);
    const std::size_t removed = static_cast<std::size_t>(samples_.end() - it);
    samples_.erase(it, samples_.end());
    return removed;
}

void TimeSeries::transform(const std::function<double(double)>& fn) {
    for (Sample& s : samples_) s.value = fn(s.value);
}

TimeSeries TimeSeries::daily(DailyReduce how) const {
    TimeSeries out(name_);
    std::size_t i = 0;
    while (i < samples_.size()) {
        const std::int64_t day = samples_[i].time.seconds_since_epoch() / 86400;
        RunningStats acc;
        std::size_t j = i;
        while (j < samples_.size() && samples_[j].time.seconds_since_epoch() / 86400 == day) {
            acc.add(samples_[j].value);
            ++j;
        }
        const TimePoint midnight{day * 86400};
        switch (how) {
            case DailyReduce::kMin: out.append(midnight, acc.min()); break;
            case DailyReduce::kMax: out.append(midnight, acc.max()); break;
            case DailyReduce::kMean: out.append(midnight, acc.mean()); break;
        }
        i = j;
    }
    return out;
}

}  // namespace zerodeg::core
