// Minimal CSV reader/writer.
//
// Used for weather trace import/export and for dumping figure series, so a
// real SMEAR III extract can be substituted for the synthetic weather (the
// substitution documented in DESIGN.md).  Handles quoting per RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace zerodeg::core {

class TimeSeries;

/// Parse one CSV line into fields (handles double-quoted fields with commas
/// and escaped quotes).  Newlines inside quoted fields are not supported —
/// the project's own files never produce them.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

/// Quote a field if it needs it.
[[nodiscard]] std::string csv_escape(const std::string& field);

class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(out) {}

    void write_row(const std::vector<std::string>& fields);

private:
    std::ostream& out_;
};

class CsvReader {
public:
    explicit CsvReader(std::istream& in) : in_(in) {}

    /// Read the next row; false at end of input.  Skips blank lines.
    bool read_row(std::vector<std::string>& fields);

private:
    std::istream& in_;
};

/// Write series as `time_iso,<name>` rows with a header.
void write_series_csv(std::ostream& out, const TimeSeries& series);

/// Read a series written by write_series_csv.
[[nodiscard]] TimeSeries read_series_csv(std::istream& in);

}  // namespace zerodeg::core
