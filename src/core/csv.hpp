// Minimal CSV reader/writer.
//
// Used for weather trace import/export and for dumping figure series, so a
// real SMEAR III extract can be substituted for the synthetic weather (the
// substitution documented in DESIGN.md).  Handles quoting per RFC 4180.
//
// Malformed input (short rows, non-numeric fields, trailing junk, truncated
// quotes, empty files) is diagnosed with core::ParseError carrying the
// 1-based input line number — never a crash or a silently-wrong value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace zerodeg::core {

class TimeSeries;

/// Parse one CSV line into fields (handles double-quoted fields with commas
/// and escaped quotes).  Newlines inside quoted fields are not supported —
/// the project's own files never produce them.  `line_no` (1-based, 0 =
/// unknown) is only used to annotate the ParseError on malformed input.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line,
                                                      std::size_t line_no = 0);

/// Quote a field if it needs it.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Strict parse of a whole CSV field as a finite double.  Rejects empty
/// fields, trailing junk ("1.5abc"), and non-finite values ("inf", "nan")
/// with a ParseError naming what was found.  `line_no` annotates the error.
[[nodiscard]] double parse_csv_double(const std::string& field, std::size_t line_no = 0);

/// Strict parse of a whole CSV field as an unsigned 64-bit integer.  Rejects
/// empty fields, signs, trailing junk, and overflow.
[[nodiscard]] std::uint64_t parse_csv_u64(const std::string& field, std::size_t line_no = 0);

class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(out) {}

    void write_row(const std::vector<std::string>& fields);

private:
    std::ostream& out_;
};

class CsvReader {
public:
    explicit CsvReader(std::istream& in) : in_(in) {}

    /// Read the next row; false at end of input.  Skips blank lines.
    /// Throws ParseError (with the line number) on malformed rows.
    bool read_row(std::vector<std::string>& fields);

    /// 1-based line number of the row last returned by read_row (counting
    /// blank lines); 0 before the first read.  Use it to annotate errors
    /// about the row's *content*.
    [[nodiscard]] std::size_t line() const { return line_; }

private:
    std::istream& in_;
    std::size_t line_ = 0;
};

/// Write series as `time_iso,<name>` rows with a header.
void write_series_csv(std::ostream& out, const TimeSeries& series);

/// Read a series written by write_series_csv.  Throws ParseError with the
/// offending line on malformed input (missing header, short row, bad
/// timestamp, non-numeric value).
[[nodiscard]] TimeSeries read_series_csv(std::istream& in);

}  // namespace zerodeg::core
