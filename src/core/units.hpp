// Strong unit types for the physical quantities the simulation trades in.
//
// Psychrometric and thermal code mixes temperatures in two scales, powers,
// energies, pressures and velocities; implicit double-to-double conversions
// are how real bugs happen (the paper itself reports a sensor chip emitting
// -111 degC garbage).  Each quantity below is a distinct type; conversions are
// explicit, constexpr and unit-tested.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace zerodeg::core {

namespace detail {

/// CRTP base providing arithmetic and ordering for a scalar-backed unit.
/// Derived types are regular value types (C.10): copyable, comparable,
/// default-constructed to zero.
template <typename Derived>
class ScalarUnit {
public:
    constexpr ScalarUnit() = default;
    constexpr explicit ScalarUnit(double v) : value_(v) {}

    [[nodiscard]] constexpr double value() const { return value_; }

    constexpr auto operator<=>(const ScalarUnit&) const = default;

    [[nodiscard]] constexpr Derived operator+(Derived rhs) const {
        return Derived{value_ + rhs.value()};
    }
    [[nodiscard]] constexpr Derived operator-(Derived rhs) const {
        return Derived{value_ - rhs.value()};
    }
    [[nodiscard]] constexpr Derived operator-() const { return Derived{-value_}; }
    [[nodiscard]] constexpr Derived operator*(double k) const { return Derived{value_ * k}; }
    [[nodiscard]] constexpr Derived operator/(double k) const { return Derived{value_ / k}; }
    /// Dimensionless ratio of two like quantities.
    [[nodiscard]] constexpr double operator/(Derived rhs) const { return value_ / rhs.value(); }

    constexpr Derived& operator+=(Derived rhs) {
        value_ += rhs.value();
        return self();
    }
    constexpr Derived& operator-=(Derived rhs) {
        value_ -= rhs.value();
        return self();
    }
    constexpr Derived& operator*=(double k) {
        value_ *= k;
        return self();
    }

private:
    constexpr Derived& self() { return static_cast<Derived&>(*this); }
    double value_ = 0.0;
};

template <typename Derived>
[[nodiscard]] constexpr Derived operator*(double k, const ScalarUnit<Derived>& u) {
    return Derived{k * u.value()};
}

}  // namespace detail

class Kelvin;

/// Temperature on the Celsius scale.  The paper's headline quantity.
class Celsius : public detail::ScalarUnit<Celsius> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr Kelvin to_kelvin() const;
};

/// Absolute temperature.  Used by the Arrhenius and psychrometric models,
/// where Celsius arithmetic would be silently wrong.
class Kelvin : public detail::ScalarUnit<Kelvin> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr Celsius to_celsius() const { return Celsius{value() - 273.15}; }
};

constexpr Kelvin Celsius::to_kelvin() const { return Kelvin{value() + 273.15}; }

/// Relative humidity in percent, 0..100 (super-saturation >100 is permitted
/// transiently by the weather model and clamped at the sensor).
class RelHumidity : public detail::ScalarUnit<RelHumidity> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr double fraction() const { return value() / 100.0; }
    [[nodiscard]] static constexpr RelHumidity from_fraction(double f) {
        return RelHumidity{f * 100.0};
    }
    [[nodiscard]] constexpr RelHumidity clamped() const {
        return RelHumidity{value() < 0.0 ? 0.0 : (value() > 100.0 ? 100.0 : value())};
    }
};

/// Electrical or thermal power.
class Watts : public detail::ScalarUnit<Watts> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr double kilowatts() const { return value() / 1000.0; }
    [[nodiscard]] static constexpr Watts from_kilowatts(double kw) { return Watts{kw * 1000.0}; }
};

/// Energy.  Accumulated by integrating Watts over simulated seconds.
class Joules : public detail::ScalarUnit<Joules> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr double kilowatt_hours() const { return value() / 3.6e6; }
    [[nodiscard]] static constexpr Joules from_kilowatt_hours(double kwh) {
        return Joules{kwh * 3.6e6};
    }
};

/// Energy dissipated by power `p` over `seconds` (p * t).  Deliberately a
/// named function: an operator* would shadow Watts' scalar multiply.
constexpr Joules energy(Watts p, double seconds) { return Joules{p.value() * seconds}; }

/// Water vapour (partial) pressure.
class Pascals : public detail::ScalarUnit<Pascals> {
public:
    using ScalarUnit::ScalarUnit;
    [[nodiscard]] constexpr double hectopascals() const { return value() / 100.0; }
    [[nodiscard]] static constexpr Pascals from_hectopascals(double hpa) {
        return Pascals{hpa * 100.0};
    }
};

/// Wind / airflow speed.
class MetersPerSecond : public detail::ScalarUnit<MetersPerSecond> {
public:
    using ScalarUnit::ScalarUnit;
};

/// Solar irradiance on a surface.
class WattsPerSquareMeter : public detail::ScalarUnit<WattsPerSquareMeter> {
public:
    using ScalarUnit::ScalarUnit;
    constexpr Watts over_area(double square_meters) const {
        return Watts{value() * square_meters};
    }
};

/// Thermal conductance of an enclosure boundary (heat flow per degree).
class WattsPerKelvin : public detail::ScalarUnit<WattsPerKelvin> {
public:
    using ScalarUnit::ScalarUnit;
};

/// heat flow across a boundary = conductance * temperature difference
[[nodiscard]] constexpr Watts operator*(WattsPerKelvin g, Celsius delta) {
    return Watts{g.value() * delta.value()};
}

/// Heat capacity of a thermal node.
class JoulesPerKelvin : public detail::ScalarUnit<JoulesPerKelvin> {
public:
    using ScalarUnit::ScalarUnit;
};

/// Absolute humidity: mass of water vapour per volume of air.
class GramsPerCubicMeter : public detail::ScalarUnit<GramsPerCubicMeter> {
public:
    using ScalarUnit::ScalarUnit;
};

// --- user-defined literals -------------------------------------------------

namespace literals {

constexpr Celsius operator""_degC(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Celsius operator""_degC(unsigned long long v) { return Celsius{static_cast<double>(v)}; }
constexpr Kelvin operator""_K(long double v) { return Kelvin{static_cast<double>(v)}; }
constexpr Kelvin operator""_K(unsigned long long v) { return Kelvin{static_cast<double>(v)}; }
constexpr RelHumidity operator""_rh(long double v) { return RelHumidity{static_cast<double>(v)}; }
constexpr RelHumidity operator""_rh(unsigned long long v) {
    return RelHumidity{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_kW(long double v) { return Watts{static_cast<double>(v) * 1000.0}; }
constexpr Watts operator""_kW(unsigned long long v) {
    return Watts{static_cast<double>(v) * 1000.0};
}
constexpr MetersPerSecond operator""_mps(long double v) {
    return MetersPerSecond{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(unsigned long long v) {
    return MetersPerSecond{static_cast<double>(v)};
}

}  // namespace literals

// --- formatting --------------------------------------------------------------

[[nodiscard]] std::string to_string(Celsius t);
[[nodiscard]] std::string to_string(Kelvin t);
[[nodiscard]] std::string to_string(RelHumidity rh);
[[nodiscard]] std::string to_string(Watts p);
[[nodiscard]] std::string to_string(Joules e);

}  // namespace zerodeg::core
