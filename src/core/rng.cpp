#include "core/rng.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::core {

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw InvalidArgument("RngStream::uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit range requested.
        return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % span);
    std::uint64_t r = next_u64();
    while (r >= limit) r = next_u64();
    return lo + static_cast<std::int64_t>(r % span);
}

double RngStream::normal() {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_normal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double RngStream::exponential(double rate) {
    if (rate <= 0.0) throw InvalidArgument("RngStream::exponential: rate must be > 0");
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -std::log(u) / rate;
}

std::uint64_t RngStream::poisson(double mean) {
    if (mean < 0.0) throw InvalidArgument("RngStream::poisson: mean must be >= 0");
    if (mean == 0.0) return 0;
    if (mean < 64.0) {
        // Knuth's product-of-uniforms method.
        const double threshold = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform01();
        } while (p > threshold);
        return k - 1;
    }
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

}  // namespace zerodeg::core
