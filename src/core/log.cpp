#include "core/log.hpp"

#include <ostream>

namespace zerodeg::core {

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarning: return "WARN";
        case LogLevel::kFault: return "FAULT";
    }
    return "?";
}

void EventLog::record(TimePoint t, LogLevel level, std::string source, std::string message) {
    entries_.push_back({t, level, std::move(source), std::move(message)});
}

std::size_t EventLog::count(LogLevel level) const {
    std::size_t n = 0;
    for (const LogEntry& e : entries_) {
        if (e.level == level) ++n;
    }
    return n;
}

std::vector<LogEntry> EventLog::from_source(const std::string& source) const {
    std::vector<LogEntry> out;
    for (const LogEntry& e : entries_) {
        if (e.source == source) out.push_back(e);
    }
    return out;
}

std::vector<LogEntry> EventLog::at_level(LogLevel level) const {
    std::vector<LogEntry> out;
    for (const LogEntry& e : entries_) {
        if (e.level == level) out.push_back(e);
    }
    return out;
}

void EventLog::print(std::ostream& out) const {
    for (const LogEntry& e : entries_) {
        out << e.time.to_string() << " [" << to_string(e.level) << "] " << e.source << ": "
            << e.message << '\n';
    }
}

}  // namespace zerodeg::core
