#include "core/sim_time.hpp"

#include <cstdio>

#include "core/error.hpp"

namespace zerodeg::core {

std::int64_t days_from_civil(int y, int m, int d) {
    // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
    y -= m <= 2;
    const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);                       // [0, 399]
    const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                         static_cast<unsigned>(d) - 1;                               // [0, 365]
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;                      // [0, 146096]
    return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
    z += 719468;
    const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);                    // [0, 146096]
    const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;      // [0, 399]
    const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                    // [0, 365]
    const unsigned mp = (5 * doy + 2) / 153;                                         // [0, 11]
    day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
    month = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
    year = static_cast<int>(y + (month <= 2));
}

TimePoint TimePoint::from_civil(const CivilDateTime& c) {
    if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour < 0 || c.hour > 23 ||
        c.minute < 0 || c.minute > 59 || c.second < 0 || c.second > 60) {
        throw InvalidArgument("TimePoint::from_civil: field out of range");
    }
    const std::int64_t days = days_from_civil(c.year, c.month, c.day);
    return TimePoint{days * 86400 + c.hour * 3600 + c.minute * 60 + c.second};
}

CivilDateTime TimePoint::to_civil() const {
    std::int64_t days = seconds_ / 86400;
    std::int64_t rem = seconds_ % 86400;
    if (rem < 0) {
        rem += 86400;
        --days;
    }
    CivilDateTime c;
    civil_from_days(days, c.year, c.month, c.day);
    c.hour = static_cast<int>(rem / 3600);
    c.minute = static_cast<int>((rem / 60) % 60);
    c.second = static_cast<int>(rem % 60);
    return c;
}

int TimePoint::day_of_year() const {
    const CivilDateTime c = to_civil();
    return static_cast<int>(days_from_civil(c.year, c.month, c.day) -
                            days_from_civil(c.year, 1, 1)) +
           1;
}

int TimePoint::iso_weekday() const {
    std::int64_t days = seconds_ / 86400;
    if (seconds_ % 86400 < 0) --days;
    // 1970-01-01 was a Thursday (ISO weekday 4).
    std::int64_t wd = (days + 3) % 7;
    if (wd < 0) wd += 7;
    return static_cast<int>(wd) + 1;
}

std::string TimePoint::to_string() const {
    const CivilDateTime c = to_civil();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day, c.hour,
                  c.minute, c.second);
    return buf;
}

std::string TimePoint::date_string() const {
    const CivilDateTime c = to_civil();
    char buf[16];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
    return buf;
}

}  // namespace zerodeg::core
