// AF_UNIX stream implementation of the core::transport seam.
//
// This file is the sanctioned home of raw socket syscalls (lint check ZD014
// confines socket/pipe/process primitives to core/transport*): everything
// above it speaks the Transport interface and cannot tell a Unix socket from
// a loopback queue — which is exactly what lets the distributed torture run
// the whole coordinator/worker protocol in-process, deterministically.
//
// Framing: each frame is a u32 little-endian byte count followed by the
// payload.  The protocol layer on top adds its own checksums (shard_protocol
// frames are checksummed like v2 journal records); the length prefix only
// delimits.
#include "core/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace zerodeg::core {

namespace {

/// Parachute against a garbled length prefix: no shard-protocol frame is
/// remotely this large.
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

std::string errno_text() {
    return errno != 0 ? std::string(std::strerror(errno)) : std::string("unknown error");
}

class UnixTransport final : public Transport {
public:
    explicit UnixTransport(int fd) : fd_(fd) {}

    ~UnixTransport() override {
        close();
        if (fd_ >= 0) ::close(fd_);
    }

    void send(std::string_view frame) override {
        std::lock_guard lock(send_mutex_);
        if (closed_.load()) throw TransportClosed("send on a closed unix-socket endpoint");
        if (frame.size() > kMaxFrameBytes) {
            throw InvalidArgument("frame of " + std::to_string(frame.size()) +
                                  " bytes exceeds the transport limit");
        }
        const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
        char prefix[4] = {static_cast<char>(n & 0xff), static_cast<char>((n >> 8) & 0xff),
                          static_cast<char>((n >> 16) & 0xff),
                          static_cast<char>((n >> 24) & 0xff)};
        send_all(prefix, sizeof prefix);
        send_all(frame.data(), frame.size());
    }

    bool try_recv(std::string& frame) override {
        std::lock_guard lock(recv_mutex_);
        return recv_locked(frame, 0);
    }

    bool recv_wait(std::string& frame, int timeout_ms) override {
        std::lock_guard lock(recv_mutex_);
        return recv_locked(frame, timeout_ms);
    }

    void close() override {
        // Lock-free on purpose: close() must be able to interrupt a peer
        // thread blocked in poll() (shutdown wakes it with EOF).
        if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
    }

    [[nodiscard]] bool closed() const override { return closed_.load() || peer_gone_.load(); }

private:
    void send_all(const char* data, std::size_t size) {
        std::size_t done = 0;
        while (done < size) {
            // MSG_NOSIGNAL: a vanished peer must surface as TransportClosed,
            // not kill the worker with SIGPIPE.
            const ssize_t sent = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR) continue;
                if (errno == EPIPE || errno == ECONNRESET) {
                    peer_gone_.store(true);
                    throw TransportClosed("unix-socket peer has closed the link: " +
                                          errno_text());
                }
                throw IoError("unix-socket send failed: " + errno_text());
            }
            done += static_cast<std::size_t>(sent);
        }
    }

    /// Receive one frame.  The timeout is per poll round, so a frame split
    /// across packets may wait slightly longer than `timeout_ms` in total —
    /// delimiting, not hard real-time, is the contract here.
    bool recv_locked(std::string& frame, int timeout_ms) {
        for (;;) {
            if (extract_frame(frame)) return true;
            if (closed_.load()) throw TransportClosed("recv on a closed unix-socket endpoint");
            if (peer_gone_.load()) {
                throw TransportClosed("unix-socket peer has closed the link (buffer drained)");
            }
            struct pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            const int n = ::poll(&pfd, 1, timeout_ms);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw IoError("unix-socket poll failed: " + errno_text());
            }
            if (n == 0) return false;  // timeout (or a try_recv poll)
            char buf[1 << 16];
            const ssize_t got = ::recv(fd_, buf, sizeof buf, 0);
            if (got < 0) {
                if (errno == EINTR) continue;
                if (errno == ECONNRESET) {
                    peer_gone_.store(true);
                    continue;  // surfaces as TransportClosed above
                }
                throw IoError("unix-socket recv failed: " + errno_text());
            }
            if (got == 0) {
                peer_gone_.store(true);  // orderly EOF; drain, then throw
                continue;
            }
            buffer_.append(buf, static_cast<std::size_t>(got));
        }
    }

    /// Peel one complete length-prefixed frame off the receive buffer.
    bool extract_frame(std::string& frame) {
        if (buffer_.size() < 4) return false;
        const auto b = [&](std::size_t i) {
            return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
        };
        const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
        if (n > kMaxFrameBytes) {
            throw CorruptData("unix-socket framing damaged: implausible frame length " +
                              std::to_string(n));
        }
        if (buffer_.size() < 4u + n) return false;
        frame.assign(buffer_, 4, n);
        buffer_.erase(0, 4u + n);
        return true;
    }

    int fd_;
    std::atomic<bool> closed_{false};
    std::atomic<bool> peer_gone_{false};
    std::mutex send_mutex_;
    std::mutex recv_mutex_;
    std::string buffer_;
};

/// Reject paths sun_path cannot hold instead of silently truncating.
sockaddr_un unix_address(const std::filesystem::path& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = socket_path.string();
    if (path.size() + 1 > sizeof addr.sun_path) {
        throw InvalidArgument("unix socket path '" + path + "' exceeds the " +
                              std::to_string(sizeof addr.sun_path - 1) +
                              "-byte sun_path limit; use a shorter --socket path");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

class UnixListener final : public Listener {
public:
    UnixListener(int fd, std::filesystem::path socket_path)
        : fd_(fd), socket_path_(std::move(socket_path)) {}

    ~UnixListener() override {
        close();
        if (fd_ >= 0) ::close(fd_);
        ::unlink(socket_path_.string().c_str());
    }

    std::unique_ptr<Transport> accept(int timeout_ms) override {
        for (;;) {
            if (closed_.load()) return nullptr;
            struct pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            const int n = ::poll(&pfd, 1, timeout_ms);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw IoError("unix-socket accept poll failed: " + errno_text());
            }
            if (n == 0) return nullptr;
            const int conn = ::accept(fd_, nullptr, nullptr);
            if (conn < 0) {
                if (errno == EINTR) continue;
                if (closed_.load()) return nullptr;
                throw IoError("unix-socket accept failed: " + errno_text());
            }
            return std::make_unique<UnixTransport>(conn);
        }
    }

    void close() override {
        if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
    }

private:
    int fd_;
    std::atomic<bool> closed_{false};
    std::filesystem::path socket_path_;
};

}  // namespace

std::unique_ptr<Listener> listen_unix(const std::filesystem::path& socket_path) {
    const sockaddr_un addr = unix_address(socket_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw IoError("cannot create unix socket: " + errno_text());
    ::unlink(socket_path.string().c_str());  // a stale socket file is not an error
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string why = errno_text();
        ::close(fd);
        throw IoError("cannot bind unix socket '" + socket_path.string() + "': " + why);
    }
    if (::listen(fd, 64) < 0) {
        const std::string why = errno_text();
        ::close(fd);
        throw IoError("cannot listen on unix socket '" + socket_path.string() + "': " + why);
    }
    return std::make_unique<UnixListener>(fd, socket_path);
}

std::unique_ptr<Transport> connect_unix(const std::filesystem::path& socket_path) {
    const sockaddr_un addr = unix_address(socket_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw IoError("cannot create unix socket: " + errno_text());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string why = errno_text();
        const bool nobody_listening =
            errno == ECONNREFUSED || errno == ENOENT || errno == ENOTCONN;
        ::close(fd);
        if (nobody_listening) {
            throw TransportClosed("no coordinator listening on '" + socket_path.string() +
                                  "': " + why);
        }
        throw IoError("cannot connect to unix socket '" + socket_path.string() + "': " + why);
    }
    return std::make_unique<UnixTransport>(fd);
}

SpawnedProcess spawn_process(const std::vector<std::string>& argv) {
    if (argv.empty() || argv[0].empty()) {
        throw InvalidArgument("spawn_process: argv must name a program");
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
    cargv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) throw IoError("spawn_process: fork failed: " + errno_text());
    if (pid == 0) {
        // Child: the parent's argv strings were copied by fork, so the
        // pointers stay valid up to exec.  On exec failure, exit with the
        // shell's "command not found" code — the parent sees it via wait.
        ::execvp(cargv[0], cargv.data());
        ::_exit(127);
    }
    return SpawnedProcess{static_cast<long long>(pid)};
}

int wait_process(SpawnedProcess& child) {
    if (!child.valid()) return -1;
    const pid_t pid = static_cast<pid_t>(child.pid);
    child.pid = -1;
    int status = 0;
    for (;;) {
        if (::waitpid(pid, &status, 0) >= 0) break;
        if (errno == EINTR) continue;
        throw IoError("wait_process: waitpid failed: " + errno_text());
    }
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
}

}  // namespace zerodeg::core
