// Simulated time and calendar.
//
// The experiment runs on real 2010 dates (Fig. 2 of the paper: prototype
// Feb 12, main phase from Feb 19, host #15 replaced Mar 17/26, ...), so the
// clock is a thin wrapper over "seconds since the Unix epoch" plus civil
// calendar conversion (Howard Hinnant's days-from-civil algorithm, which is
// exact over the simulated range and needs no OS timezone machinery; all
// times are local Helsinki wall-clock by convention).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace zerodeg::core {

/// A span of simulated time, in seconds.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t seconds) : seconds_(seconds) {}

    [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s}; }
    [[nodiscard]] static constexpr Duration minutes(std::int64_t m) { return Duration{m * 60}; }
    [[nodiscard]] static constexpr Duration hours(std::int64_t h) { return Duration{h * 3600}; }
    [[nodiscard]] static constexpr Duration days(std::int64_t d) { return Duration{d * 86400}; }

    [[nodiscard]] constexpr std::int64_t count() const { return seconds_; }
    [[nodiscard]] constexpr double total_hours() const {
        return static_cast<double>(seconds_) / 3600.0;
    }
    [[nodiscard]] constexpr double total_days() const {
        return static_cast<double>(seconds_) / 86400.0;
    }

    constexpr auto operator<=>(const Duration&) const = default;
    [[nodiscard]] constexpr Duration operator+(Duration rhs) const {
        return Duration{seconds_ + rhs.seconds_};
    }
    [[nodiscard]] constexpr Duration operator-(Duration rhs) const {
        return Duration{seconds_ - rhs.seconds_};
    }
    [[nodiscard]] constexpr Duration operator*(std::int64_t k) const {
        return Duration{seconds_ * k};
    }
    [[nodiscard]] constexpr Duration operator/(std::int64_t k) const {
        return Duration{seconds_ / k};
    }

private:
    std::int64_t seconds_ = 0;
};

/// Calendar date + wall-clock fields, for reports and configuration.
struct CivilDateTime {
    int year = 1970;
    int month = 1;  ///< 1..12
    int day = 1;    ///< 1..31
    int hour = 0;
    int minute = 0;
    int second = 0;

    auto operator<=>(const CivilDateTime&) const = default;
};

/// An instant of simulated time (seconds since 1970-01-01 00:00:00).
class TimePoint {
public:
    constexpr TimePoint() = default;
    constexpr explicit TimePoint(std::int64_t seconds_since_epoch)
        : seconds_(seconds_since_epoch) {}

    /// Construct from a civil date, e.g. {2010, 2, 19, 12, 0, 0}.
    [[nodiscard]] static TimePoint from_civil(const CivilDateTime& c);
    /// Shorthand for midnight of a civil date.
    [[nodiscard]] static TimePoint from_date(int year, int month, int day) {
        return from_civil({year, month, day, 0, 0, 0});
    }

    [[nodiscard]] constexpr std::int64_t seconds_since_epoch() const { return seconds_; }
    [[nodiscard]] CivilDateTime to_civil() const;

    /// Seconds elapsed since the previous midnight, in [0, 86400).
    [[nodiscard]] constexpr int seconds_of_day() const {
        const std::int64_t r = seconds_ % 86400;
        return static_cast<int>(r < 0 ? r + 86400 : r);
    }
    /// Fraction of the day elapsed, in [0, 1).
    [[nodiscard]] constexpr double day_fraction() const { return seconds_of_day() / 86400.0; }
    /// Day of the year, 1-based (Jan 1 = 1).  Needed by the solar model.
    [[nodiscard]] int day_of_year() const;
    /// ISO weekday, 1 = Monday .. 7 = Sunday.
    [[nodiscard]] int iso_weekday() const;

    /// "2010-03-07 04:40:00"
    [[nodiscard]] std::string to_string() const;
    /// "2010-03-07"
    [[nodiscard]] std::string date_string() const;

    constexpr auto operator<=>(const TimePoint&) const = default;
    [[nodiscard]] constexpr TimePoint operator+(Duration d) const {
        return TimePoint{seconds_ + d.count()};
    }
    [[nodiscard]] constexpr TimePoint operator-(Duration d) const {
        return TimePoint{seconds_ - d.count()};
    }
    [[nodiscard]] constexpr Duration operator-(TimePoint rhs) const {
        return Duration{seconds_ - rhs.seconds_};
    }
    constexpr TimePoint& operator+=(Duration d) {
        seconds_ += d.count();
        return *this;
    }

private:
    std::int64_t seconds_ = 0;
};

/// Days since the epoch for a civil date (proleptic Gregorian).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day);
/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

}  // namespace zerodeg::core
