#include "core/bench_clock.hpp"

namespace zerodeg::core {

// The only steady_clock read outside src/monitoring/: this translation unit
// IS the timing seam the lint's ZD003 exemption points at.
bench_clock::time_point bench_clock::now() noexcept {
    return time_point(std::chrono::duration_cast<duration>(
        std::chrono::steady_clock::now().time_since_epoch()));
}

}  // namespace zerodeg::core
