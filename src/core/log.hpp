// Structured event log.
//
// Everything notable that happens during a simulated experiment — faults,
// operator interventions, collection failures — is recorded here with its
// simulated timestamp, so reports can replay "what happened when" exactly as
// Section 4.2 of the paper narrates its incidents.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sim_time.hpp"

namespace zerodeg::core {

enum class LogLevel { kDebug, kInfo, kWarning, kFault };

[[nodiscard]] const char* to_string(LogLevel level);

struct LogEntry {
    TimePoint time;
    LogLevel level = LogLevel::kInfo;
    std::string source;   ///< e.g. "host-15", "switch-1", "tent"
    std::string message;
};

class EventLog {
public:
    void record(TimePoint t, LogLevel level, std::string source, std::string message);

    [[nodiscard]] const std::vector<LogEntry>& entries() const { return entries_; }
    [[nodiscard]] std::size_t count(LogLevel level) const;
    [[nodiscard]] std::vector<LogEntry> from_source(const std::string& source) const;
    [[nodiscard]] std::vector<LogEntry> at_level(LogLevel level) const;

    void clear() { entries_.clear(); }

    /// Human-readable dump, one line per entry.
    void print(std::ostream& out) const;

private:
    std::vector<LogEntry> entries_;
};

}  // namespace zerodeg::core
