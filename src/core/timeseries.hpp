// Time-series container used by every sensor, logger and report generator.
//
// Samples are (TimePoint, double) pairs appended in nondecreasing time order.
// Figures 3 and 4 of the paper are, concretely, four of these objects
// resampled to a common grid.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_time.hpp"

namespace zerodeg::core {

struct Sample {
    TimePoint time;
    double value = 0.0;

    bool operator==(const Sample&) const = default;
};

struct SeriesStats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

class TimeSeries {
public:
    TimeSeries() = default;
    explicit TimeSeries(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    /// Append a sample; time must be >= the last sample's time.
    void append(TimePoint t, double value);

    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
    [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
    [[nodiscard]] const Sample& front() const { return samples_.front(); }
    [[nodiscard]] const Sample& back() const { return samples_.back(); }

    [[nodiscard]] auto begin() const { return samples_.begin(); }
    [[nodiscard]] auto end() const { return samples_.end(); }

    /// Linear interpolation at `t`; nullopt outside the covered interval.
    [[nodiscard]] std::optional<double> interpolate(TimePoint t) const;

    /// Value of the last sample at or before `t` (step interpolation).
    [[nodiscard]] std::optional<double> value_at_or_before(TimePoint t) const;

    /// Min / max / mean / stddev over all samples (or a sub-interval).
    [[nodiscard]] SeriesStats stats() const;
    [[nodiscard]] SeriesStats stats_between(TimePoint from, TimePoint to) const;

    /// New series sampled on a regular grid via linear interpolation.
    /// Grid points outside the covered interval are skipped.
    [[nodiscard]] TimeSeries resample(TimePoint from, TimePoint to, Duration step) const;

    /// New series with samples in [from, to] only.
    [[nodiscard]] TimeSeries slice(TimePoint from, TimePoint to) const;

    /// Remove samples for which `pred(sample)` is true; returns the number
    /// removed.  (This implements the paper's outlier-removal step.)
    std::size_t remove_if(const std::function<bool(const Sample&)>& pred);

    /// Element-wise transformation of the values.
    void transform(const std::function<double(double)>& fn);

    /// Daily aggregates (midnight-to-midnight) of the given reducer.
    enum class DailyReduce { kMin, kMax, kMean };
    [[nodiscard]] TimeSeries daily(DailyReduce how) const;

private:
    std::string name_;
    std::vector<Sample> samples_;
};

}  // namespace zerodeg::core
