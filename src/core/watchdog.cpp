#include "core/watchdog.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::core {

void CancelToken::throw_if_cancelled(const std::string& what) const {
    if (cancelled()) {
        throw TransientError(what + ": cancelled by watchdog (hung node)");
    }
}

namespace {
thread_local const CancelToken* t_cell_token = nullptr;
}  // namespace

const CancelToken* current_cell_token() { return t_cell_token; }

ScopedCellToken::ScopedCellToken(CancelToken token)
    : token_(std::move(token)), previous_(t_cell_token) {
    t_cell_token = &token_;
}

ScopedCellToken::~ScopedCellToken() { t_cell_token = previous_; }

Watchdog::Watchdog(std::int64_t deadline_ms) : deadline_(deadline_ms) {
    if (deadline_ms <= 0) {
        throw InvalidArgument("Watchdog: deadline must be positive, got " +
                              std::to_string(deadline_ms) + " ms");
    }
    supervisor_ = std::thread([this] { supervise(); });
}

Watchdog::~Watchdog() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (supervisor_.joinable()) supervisor_.join();
}

Watchdog::Scope Watchdog::watch(std::string label) {
    std::lock_guard lock(mutex_);
    Entry entry;
    entry.id = next_id_++;
    entry.label = std::move(label);
    // zerodeg-lint: allow(ZD003): harness wall-clock deadline, not simulation time
    entry.start = std::chrono::steady_clock::now();
    Scope scope(this, entry.id, entry.token);
    active_.push_back(std::move(entry));
    return scope;
}

Watchdog::Scope::Scope(Scope&& other) noexcept
    : dog_(other.dog_), id_(other.id_), token_(std::move(other.token_)) {
    other.dog_ = nullptr;
}

Watchdog::Scope::~Scope() {
    if (dog_) dog_->release(id_);
}

void Watchdog::release(std::size_t id) {
    std::lock_guard lock(mutex_);
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [id](const Entry& e) { return e.id == id; }),
                  active_.end());
}

std::size_t Watchdog::hung_count() const {
    std::lock_guard lock(mutex_);
    return hung_.size();
}

std::vector<std::string> Watchdog::hung_labels() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out = hung_;
    std::sort(out.begin(), out.end());
    return out;
}

void Watchdog::supervise() {
    // Poll at a quarter of the deadline (capped at 50 ms) so an overrun is
    // noticed promptly without burning a core.
    const auto poll = std::min<std::chrono::milliseconds>(
        std::chrono::milliseconds(50),
        std::max<std::chrono::milliseconds>(deadline_ / 4, std::chrono::milliseconds(1)));
    std::unique_lock lock(mutex_);
    while (!stopping_) {
        cv_.wait_for(lock, poll, [this] { return stopping_; });
        if (stopping_) break;
        // zerodeg-lint: allow(ZD003): harness wall-clock deadline, not simulation time
        const auto now = std::chrono::steady_clock::now();
        for (Entry& entry : active_) {
            if (!entry.token.cancelled() && now - entry.start > deadline_) {
                entry.token.cancel();
                hung_.push_back(entry.label);
            }
        }
    }
}

}  // namespace zerodeg::core
