// A fixed-size worker-thread pool with a bounded task queue.
//
// Deliberately work-stealing-free: tasks are executed in FIFO submission
// order by whichever worker frees up first, and all ordering guarantees the
// simulation needs are provided one layer up (parallel.hpp) by writing each
// task's result into a caller-owned slot and reducing in index order.  The
// pool itself therefore never has to be deterministic — only the reduction
// does — which keeps the implementation small and auditable.
//
// Semantics:
//  * submit() blocks while the queue is at capacity (backpressure, so a
//    census over thousands of seeds never materialises thousands of queued
//    closures at once).
//  * Tasks must not throw; the helpers in parallel.hpp catch exceptions
//    per-task and rethrow the lowest-index one on the calling thread.
//    A task that does leak an exception terminates (noexcept worker loop),
//    which is the loudest possible signal of a harness bug.
//  * The destructor drains: every task already submitted runs to completion
//    before the workers join.  Use cancel_pending() first to discard.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zerodeg::core {

class TaskPool {
public:
    /// `workers` == 0 means hardware_workers().  `queue_capacity` == 0 picks
    /// 4x the worker count.
    explicit TaskPool(std::size_t workers = 0, std::size_t queue_capacity = 0);

    /// Drains the queue (runs all pending tasks), then joins the workers.
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /// Enqueue a task; blocks while the queue is full.
    void submit(std::function<void()> task);

    /// Enqueue without blocking; returns false if the queue is full.
    [[nodiscard]] bool try_submit(std::function<void()> task);

    /// Block until the queue is empty and every worker is idle.
    void wait_idle();

    /// Discard tasks not yet started (running tasks finish normally).
    /// Returns how many were dropped.
    std::size_t cancel_pending();

    [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
    [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }
    /// Tasks that have finished running (monotonic; includes failed ones).
    [[nodiscard]] std::size_t tasks_executed() const;

    /// max(1, std::thread::hardware_concurrency()).
    [[nodiscard]] static std::size_t hardware_workers();

private:
    void worker_loop() noexcept;

    mutable std::mutex mutex_;
    std::condition_variable queue_not_empty_;   // workers wait here
    std::condition_variable queue_not_full_;    // producers wait here
    std::condition_variable idle_;              // wait_idle() waits here
    std::deque<std::function<void()>> queue_;
    std::size_t capacity_ = 0;
    std::size_t running_ = 0;   ///< tasks currently executing
    std::size_t executed_ = 0;  ///< tasks finished (under mutex_)
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace zerodeg::core
