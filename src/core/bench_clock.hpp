// The one sanctioned wall-clock seam for performance measurement.
//
// Simulation code must never read wall time (determinism lint ZD003), but
// benchmarks have to.  core::bench_clock wraps steady_clock behind a seam
// that the lint whitelists only under bench/ and tools/ (rule ZD013), so a
// bench target can time itself without per-line suppressions — and a stray
// #include in simulation code is a lint error, not a silent nondeterminism.
#pragma once

#include <chrono>
#include <cstdint>

namespace zerodeg::core {

/// Monotonic wall-clock for benchmark timing.  NOT for simulation logic:
/// using it outside bench/ or tools/ fails the determinism lint (ZD013).
class bench_clock {
public:
    using rep = std::int64_t;
    using period = std::nano;
    using duration = std::chrono::nanoseconds;
    using time_point = std::chrono::time_point<bench_clock, duration>;
    static constexpr bool is_steady = true;

    [[nodiscard]] static time_point now() noexcept;

    /// Seconds between two instants, as the double benchmarks report.
    [[nodiscard]] static double seconds_between(time_point start, time_point stop) noexcept {
        return std::chrono::duration<double>(stop - start).count();
    }
};

}  // namespace zerodeg::core
