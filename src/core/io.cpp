#include "core/io.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/rng.hpp"
#include "core/watchdog.hpp"

namespace zerodeg::core {

namespace {

/// RAII for C stdio handles; write_file goes through stdio (not ofstream) so
/// a short write or ENOSPC is detected at the exact byte, with errno intact.
struct CFile {
    std::FILE* f = nullptr;
    ~CFile() {
        if (f) (void)std::fclose(f);
    }
};

std::string errno_text() {
    return errno != 0 ? std::string(std::strerror(errno)) : std::string("unknown error");
}

}  // namespace

void RealFs::write_file(const std::filesystem::path& path, std::string_view content) {
    errno = 0;
    CFile file;
    file.f = std::fopen(path.string().c_str(), "wb");
    if (!file.f) {
        throw IoError("cannot create '" + path.string() + "': " + errno_text());
    }
    const std::size_t written =
        content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), file.f);
    if (written != content.size()) {
        throw IoError("short write to '" + path.string() + "': wrote " +
                      std::to_string(written) + " of " + std::to_string(content.size()) +
                      " bytes (dropped " + std::to_string(content.size() - written) +
                      " bytes): " + errno_text());
    }
    if (std::fflush(file.f) != 0) {
        throw IoError("flush of '" + path.string() + "' failed (content may not be durable): " +
                      errno_text());
    }
    std::FILE* f = file.f;
    file.f = nullptr;
    if (std::fclose(f) != 0) {
        throw IoError("close of '" + path.string() + "' failed (content may not be durable): " +
                      errno_text());
    }
}

std::string RealFs::read_file(const std::filesystem::path& path) {
    errno = 0;
    CFile file;
    file.f = std::fopen(path.string().c_str(), "rb");
    if (!file.f) {
        throw IoError("cannot open '" + path.string() + "' for reading: " + errno_text());
    }
    std::string out;
    char buf[1 << 14];
    for (;;) {
        const std::size_t got = std::fread(buf, 1, sizeof buf, file.f);
        out.append(buf, got);
        if (got < sizeof buf) {
            if (std::ferror(file.f) != 0) {
                throw IoError("read of '" + path.string() + "' failed after " +
                              std::to_string(out.size()) + " bytes: " + errno_text());
            }
            break;
        }
    }
    return out;
}

bool RealFs::exists(const std::filesystem::path& path) {
    return std::filesystem::exists(path);
}

void RealFs::rename(const std::filesystem::path& from, const std::filesystem::path& to) {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
        throw IoError("cannot replace '" + to.string() + "' with '" + from.string() +
                      "': " + ec.message());
    }
}

void RealFs::remove(const std::filesystem::path& path) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) {
        throw IoError("cannot remove '" + path.string() + "': " + ec.message());
    }
}

FileSystem& real_fs() {
    static RealFs fs;
    return fs;
}

const char* to_string(IoOp op) {
    switch (op) {
        case IoOp::kWrite: return "write";
        case IoOp::kRead: return "read";
        case IoOp::kExists: return "exists";
        case IoOp::kRename: return "rename";
        case IoOp::kRemove: return "remove";
    }
    return "?";
}

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::kShortWrite: return "short-write";
        case FaultKind::kNoSpace: return "enospc";
        case FaultKind::kFlushFail: return "flush-fail";
        case FaultKind::kRenameFail: return "rename-fail";
        case FaultKind::kStall: return "stall";
        case FaultKind::kCrash: return "crash";
    }
    return "?";
}

const char* to_string(CrashPhase phase) {
    switch (phase) {
        case CrashPhase::kBeforeOp: return "before-op";
        case CrashPhase::kTornWrite: return "torn-write";
        case CrashPhase::kAfterOp: return "after-op";
        case CrashPhase::kTornTail: return "torn-tail";
    }
    return "?";
}

std::string InjectedFault::to_string() const {
    return "op " + std::to_string(op_index) + ' ' + core::to_string(op) + " '" + path +
           "': " + core::to_string(kind);
}

namespace {

/// The whole fault schedule derives from this: one hash per (seed, op,
/// channel), stateless, so the decision for op #k never depends on which
/// thread got there first or what happened to ops before it.
std::uint64_t fault_hash(std::uint64_t seed, std::size_t op, std::uint64_t channel) {
    std::uint64_t state = seed ^ (static_cast<std::uint64_t>(op) * 0x9e3779b97f4a7c15ULL) ^
                          (channel * 0xd1342543de82ef95ULL);
    return splitmix64(state);
}

double fault_u01(std::uint64_t seed, std::size_t op, std::uint64_t channel) {
    return static_cast<double>(fault_hash(seed, op, channel) >> 11) * 0x1.0p-53;
}

// Hash channels, one per independent decision about an operation.
constexpr std::uint64_t kChanWriteFault = 1;  ///< does this write fault at all?
constexpr std::uint64_t kChanFaultKind = 2;   ///< short write vs ENOSPC vs flush
constexpr std::uint64_t kChanFraction = 3;    ///< surviving prefix of a torn write
constexpr std::uint64_t kChanStall = 4;       ///< does this op hang?
constexpr std::uint64_t kChanTear = 5;        ///< tail bytes lost at a crash

}  // namespace

FaultyFs::FaultyFs(FaultPlan plan, FileSystem* inner)
    : plan_(plan), inner_(inner ? inner : &real_fs()) {}

std::size_t FaultyFs::next_op() {
    std::lock_guard lock(mutex_);
    if (crashed_) {
        throw SimulatedCrash("filesystem unreachable: simulated process crash already fired");
    }
    return ops_++;
}

std::size_t FaultyFs::op_count() const {
    std::lock_guard lock(mutex_);
    return ops_;
}

std::vector<InjectedFault> FaultyFs::fault_trace() const {
    std::lock_guard lock(mutex_);
    std::vector<InjectedFault> out = trace_;
    std::sort(out.begin(), out.end(), [](const InjectedFault& a, const InjectedFault& b) {
        return a.op_index < b.op_index;
    });
    return out;
}

bool FaultyFs::crashed() const {
    std::lock_guard lock(mutex_);
    return crashed_;
}

void FaultyFs::record(std::size_t op, IoOp kind, FaultKind fault,
                      const std::filesystem::path& path) {
    std::lock_guard lock(mutex_);
    trace_.push_back(InjectedFault{op, kind, fault, path.string()});
}

void FaultyFs::crash(std::size_t op, IoOp kind, const std::filesystem::path& path) {
    {
        std::lock_guard lock(mutex_);
        crashed_ = true;
        trace_.push_back(InjectedFault{op, kind, FaultKind::kCrash, path.string()});
    }
    throw SimulatedCrash("simulated process crash at io op " + std::to_string(op) + " (" +
                         core::to_string(plan_.crash_phase) + " " + core::to_string(kind) +
                         " of '" + path.string() + "')");
}

void FaultyFs::maybe_stall(std::size_t op, IoOp kind, const std::filesystem::path& path) {
    if (plan_.stall_rate <= 0.0 || fault_u01(plan_.seed, op, kChanStall) >= plan_.stall_rate) {
        return;
    }
    record(op, kind, FaultKind::kStall, path);
    // Hang until the cell's watchdog cancels us (the cancellation point the
    // Watchdog scenario exercises), or until the poll budget runs out so a
    // plan without a supervisor can never wedge a test binary.
    for (std::size_t poll = 0; poll < plan_.max_stall_polls; ++poll) {
        if (const CancelToken* token = current_cell_token(); token && token->cancelled()) {
            throw TransientError("injected stall on '" + path.string() +
                                 "' cancelled by watchdog after " + std::to_string(poll + 1) +
                                 " polls (hung node)");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Unobserved hang: the op eventually completes, like a disk that went
    // away and came back.  The stall stays in the fault trace either way.
}

void FaultyFs::write_file(const std::filesystem::path& path, std::string_view content) {
    const std::size_t op = next_op();
    if (op == plan_.crash_at_op) {
        switch (plan_.crash_phase) {
            case CrashPhase::kBeforeOp: crash(op, IoOp::kWrite, path); break;
            case CrashPhase::kTornWrite: {
                const double frac = 0.9 * fault_u01(plan_.seed, op, kChanFraction);
                const std::size_t keep =
                    static_cast<std::size_t>(static_cast<double>(content.size()) * frac);
                inner_->write_file(path, content.substr(0, keep));
                crash(op, IoOp::kWrite, path);
                break;
            }
            case CrashPhase::kAfterOp:
                inner_->write_file(path, content);
                crash(op, IoOp::kWrite, path);
                break;
            case CrashPhase::kTornTail: {
                inner_->write_file(path, content);
                if (!content.empty()) {
                    const std::size_t max_tear = std::min<std::size_t>(45, content.size());
                    const std::size_t tear =
                        1 + static_cast<std::size_t>(fault_hash(plan_.seed, op, kChanTear) %
                                                     max_tear);
                    inner_->write_file(path, content.substr(0, content.size() - tear));
                }
                crash(op, IoOp::kWrite, path);
                break;
            }
        }
    }
    maybe_stall(op, IoOp::kWrite, path);
    if (plan_.write_fault_rate > 0.0 &&
        fault_u01(plan_.seed, op, kChanWriteFault) < plan_.write_fault_rate) {
        const std::uint64_t kind_draw = fault_hash(plan_.seed, op, kChanFaultKind) % 3;
        const double frac = 0.9 * fault_u01(plan_.seed, op, kChanFraction);
        const std::size_t keep =
            static_cast<std::size_t>(static_cast<double>(content.size()) * frac);
        if (kind_draw == 0) {
            record(op, IoOp::kWrite, FaultKind::kShortWrite, path);
            inner_->write_file(path, content.substr(0, keep));
            throw TransientError("injected short write to '" + path.string() + "': wrote " +
                                 std::to_string(keep) + " of " + std::to_string(content.size()) +
                                 " bytes (dropped " + std::to_string(content.size() - keep) +
                                 " bytes)");
        }
        if (kind_draw == 1) {
            record(op, IoOp::kWrite, FaultKind::kNoSpace, path);
            inner_->write_file(path, content.substr(0, keep));
            throw TransientError("injected ENOSPC on '" + path.string() + "': wrote " +
                                 std::to_string(keep) + " of " + std::to_string(content.size()) +
                                 " bytes (dropped " + std::to_string(content.size() - keep) +
                                 " bytes)");
        }
        record(op, IoOp::kWrite, FaultKind::kFlushFail, path);
        inner_->write_file(path, content);
        throw TransientError("injected flush failure on '" + path.string() +
                             "': content written but durability not confirmed (dropped 0 bytes)");
    }
    inner_->write_file(path, content);
}

std::string FaultyFs::read_file(const std::filesystem::path& path) {
    const std::size_t op = next_op();
    if (op == plan_.crash_at_op) {
        if (plan_.crash_phase == CrashPhase::kBeforeOp ||
            plan_.crash_phase == CrashPhase::kTornWrite) {
            crash(op, IoOp::kRead, path);
        }
        std::string out = inner_->read_file(path);
        crash(op, IoOp::kRead, path);
        return out;  // unreachable; crash() throws
    }
    maybe_stall(op, IoOp::kRead, path);
    return inner_->read_file(path);
}

bool FaultyFs::exists(const std::filesystem::path& path) {
    const std::size_t op = next_op();
    if (op == plan_.crash_at_op) crash(op, IoOp::kExists, path);
    return inner_->exists(path);
}

void FaultyFs::rename(const std::filesystem::path& from, const std::filesystem::path& to) {
    const std::size_t op = next_op();
    if (op == plan_.crash_at_op) {
        switch (plan_.crash_phase) {
            // rename(2) is atomic: there is no torn intermediate state, so
            // the torn-write phase degenerates to dying just before it.
            case CrashPhase::kBeforeOp:
            case CrashPhase::kTornWrite: crash(op, IoOp::kRename, to); break;
            case CrashPhase::kAfterOp:
                inner_->rename(from, to);
                crash(op, IoOp::kRename, to);
                break;
            case CrashPhase::kTornTail: {
                // The rename landed but the file's tail never left the page
                // cache before the death: chop trailing bytes off `to`.
                inner_->rename(from, to);
                const std::string bytes = inner_->read_file(to);
                if (!bytes.empty()) {
                    const std::size_t max_tear = std::min<std::size_t>(45, bytes.size());
                    const std::size_t tear =
                        1 + static_cast<std::size_t>(fault_hash(plan_.seed, op, kChanTear) %
                                                     max_tear);
                    inner_->write_file(to, std::string_view(bytes).substr(0,
                                                                          bytes.size() - tear));
                }
                crash(op, IoOp::kRename, to);
                break;
            }
        }
    }
    maybe_stall(op, IoOp::kRename, to);
    if (plan_.rename_fault_rate > 0.0 &&
        fault_u01(plan_.seed, op, kChanWriteFault) < plan_.rename_fault_rate) {
        record(op, IoOp::kRename, FaultKind::kRenameFail, to);
        throw TransientError("injected rename failure: '" + to.string() +
                             "' not replaced (source '" + from.string() + "' left in place)");
    }
    inner_->rename(from, to);
}

void FaultyFs::remove(const std::filesystem::path& path) {
    const std::size_t op = next_op();
    if (op == plan_.crash_at_op) {
        if (plan_.crash_phase == CrashPhase::kAfterOp ||
            plan_.crash_phase == CrashPhase::kTornTail) {
            inner_->remove(path);
        }
        crash(op, IoOp::kRemove, path);
    }
    inner_->remove(path);
}

int write_file_durable(FileSystem& fs, const std::filesystem::path& path,
                       std::string_view content, IoRetryPolicy retry, std::string_view what) {
    const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
    for (int attempt = 1;; ++attempt) {
        try {
            fs.write_file(path, content);
            return attempt - 1;
        } catch (TransientError& e) {
            if (attempt >= attempts) {
                e.add_context(std::string(what) + ": transient write failures persisted after " +
                              std::to_string(attempts) + " attempt(s)");
                throw;
            }
        }
    }
}

int replace_file_atomic(FileSystem& fs, const std::filesystem::path& path,
                        std::string_view content, IoRetryPolicy retry, std::string_view what) {
    std::filesystem::path tmp = path;
    tmp += ".tmp";
    const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
    for (int attempt = 1;; ++attempt) {
        try {
            // Restart the whole tmp+rename sequence on a transient fault:
            // a torn tmp file from a failed attempt is simply overwritten.
            fs.write_file(tmp, content);
            fs.rename(tmp, path);
            return attempt - 1;
        } catch (TransientError& e) {
            if (attempt >= attempts) {
                e.add_context(std::string(what) + ": transient replace failures persisted after " +
                              std::to_string(attempts) + " attempt(s)");
                throw;
            }
        }
    }
}

}  // namespace zerodeg::core
