#include "core/task_pool.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"

namespace zerodeg::core {

std::size_t TaskPool::hardware_workers() {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(std::size_t workers, std::size_t queue_capacity) {
    if (workers == 0) workers = hardware_workers();
    capacity_ = queue_capacity == 0 ? 4 * workers : queue_capacity;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

TaskPool::~TaskPool() {
    {
        // Drain semantics: set stopping_ but leave the queue intact; workers
        // exit only once it is empty.
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    queue_not_empty_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void TaskPool::submit(std::function<void()> task) {
    if (!task) throw InvalidArgument("TaskPool::submit: empty task");
    {
        std::unique_lock lock(mutex_);
        queue_not_full_.wait(lock, [this] { return queue_.size() < capacity_ || stopping_; });
        if (stopping_) throw InvalidArgument("TaskPool::submit: pool is shutting down");
        queue_.push_back(std::move(task));
    }
    queue_not_empty_.notify_one();
}

bool TaskPool::try_submit(std::function<void()> task) {
    if (!task) throw InvalidArgument("TaskPool::try_submit: empty task");
    {
        std::unique_lock lock(mutex_);
        if (stopping_ || queue_.size() >= capacity_) return false;
        queue_.push_back(std::move(task));
    }
    queue_not_empty_.notify_one();
    return true;
}

void TaskPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t TaskPool::cancel_pending() {
    std::size_t dropped = 0;
    {
        std::unique_lock lock(mutex_);
        dropped = queue_.size();
        queue_.clear();
    }
    queue_not_full_.notify_all();
    idle_.notify_all();
    return dropped;
}

std::size_t TaskPool::tasks_executed() const {
    std::unique_lock lock(mutex_);
    return executed_;
}

void TaskPool::worker_loop() noexcept {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            queue_not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        queue_not_full_.notify_one();
        task();  // noexcept context: a throwing task terminates, by design
        {
            std::unique_lock lock(mutex_);
            --running_;
            ++executed_;
            if (queue_.empty() && running_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace zerodeg::core
