#include "core/csv.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "core/error.hpp"
#include "core/timeseries.hpp"

namespace zerodeg::core {

std::vector<std::string> parse_csv_line(const std::string& line) {
    std::vector<std::string> fields;
    std::string cur;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
        } else if (c == '\r') {
            // tolerate CRLF
        } else {
            cur.push_back(c);
        }
    }
    if (in_quotes) throw CorruptData("parse_csv_line: unterminated quote");
    fields.push_back(std::move(cur));
    return fields;
}

std::string csv_escape(const std::string& field) {
    if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out_ << ',';
        out_ << csv_escape(fields[i]);
    }
    out_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
    std::string line;
    while (std::getline(in_, line)) {
        if (line.empty() || line == "\r") continue;
        fields = parse_csv_line(line);
        return true;
    }
    return false;
}

void write_series_csv(std::ostream& out, const TimeSeries& series) {
    CsvWriter w(out);
    w.write_row({"time", series.name().empty() ? "value" : series.name()});
    for (const Sample& s : series) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", s.value);
        w.write_row({s.time.to_string(), buf});
    }
}

namespace {

TimePoint parse_time(const std::string& s) {
    CivilDateTime c;
    if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &c.year, &c.month, &c.day, &c.hour, &c.minute,
                    &c.second) != 6) {
        throw CorruptData("read_series_csv: bad timestamp '" + s + "'");
    }
    return TimePoint::from_civil(c);
}

}  // namespace

TimeSeries read_series_csv(std::istream& in) {
    CsvReader r(in);
    std::vector<std::string> row;
    if (!r.read_row(row) || row.size() < 2) {
        throw CorruptData("read_series_csv: missing header");
    }
    TimeSeries series(row[1]);
    while (r.read_row(row)) {
        if (row.size() < 2) throw CorruptData("read_series_csv: short row");
        series.append(parse_time(row[0]), std::stod(row[1]));
    }
    return series;
}

}  // namespace zerodeg::core
