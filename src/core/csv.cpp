#include "core/csv.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "core/error.hpp"
#include "core/timeseries.hpp"

namespace zerodeg::core {

std::vector<std::string> parse_csv_line(const std::string& line, std::size_t line_no) {
    std::vector<std::string> fields;
    std::string cur;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
        } else if (c == '\r') {
            // tolerate CRLF
        } else {
            cur.push_back(c);
        }
    }
    if (in_quotes) throw ParseError("unterminated quote", line_no);
    fields.push_back(std::move(cur));
    return fields;
}

std::string csv_escape(const std::string& field) {
    if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out.push_back('"');
    return out;
}

double parse_csv_double(const std::string& field, std::size_t line_no) {
    if (field.empty()) throw ParseError("expected a number, got an empty field", line_no);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size()) {
        throw ParseError("expected a number, got '" + field + "'", line_no);
    }
    if (errno == ERANGE || !std::isfinite(v)) {
        throw ParseError("number out of range: '" + field + "'", line_no);
    }
    return v;
}

std::uint64_t parse_csv_u64(const std::string& field, std::size_t line_no) {
    if (field.empty()) throw ParseError("expected an unsigned integer, got an empty field",
                                        line_no);
    // strtoull silently accepts leading whitespace and signs; forbid both so
    // "-3" never wraps to 2^64-3.
    if (field[0] == '-' || field[0] == '+' || std::isspace(static_cast<unsigned char>(field[0]))) {
        throw ParseError("expected an unsigned integer, got '" + field + "'", line_no);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
    if (end != field.c_str() + field.size()) {
        throw ParseError("expected an unsigned integer, got '" + field + "'", line_no);
    }
    if (errno == ERANGE) {
        throw ParseError("integer out of range: '" + field + "'", line_no);
    }
    return v;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out_ << ',';
        out_ << csv_escape(fields[i]);
    }
    out_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
    std::string line;
    while (std::getline(in_, line)) {
        ++line_;
        if (line.empty() || line == "\r") continue;
        fields = parse_csv_line(line, line_);
        return true;
    }
    return false;
}

void write_series_csv(std::ostream& out, const TimeSeries& series) {
    CsvWriter w(out);
    w.write_row({"time", series.name().empty() ? "value" : series.name()});
    for (const Sample& s : series) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", s.value);
        w.write_row({s.time.to_string(), buf});
    }
}

namespace {

TimePoint parse_time(const std::string& s, std::size_t line_no) {
    CivilDateTime c;
    if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &c.year, &c.month, &c.day, &c.hour, &c.minute,
                    &c.second) != 6) {
        throw ParseError("expected 'YYYY-MM-DD hh:mm:ss' timestamp, got '" + s + "'", line_no);
    }
    return TimePoint::from_civil(c);
}

}  // namespace

TimeSeries read_series_csv(std::istream& in) {
    return with_context("read_series_csv", [&in] {
        CsvReader r(in);
        std::vector<std::string> row;
        if (!r.read_row(row)) throw ParseError("empty input (missing header)");
        if (row.size() < 2) throw ParseError("short header (want time,<name>)", r.line());
        TimeSeries series(row[1]);
        while (r.read_row(row)) {
            if (row.size() < 2) {
                throw ParseError("short row (want time,value)", r.line());
            }
            series.append(parse_time(row[0], r.line()), parse_csv_double(row[1], r.line()));
        }
        return series;
    });
}

}  // namespace zerodeg::core
