// Deterministic pseudo-random number infrastructure.
//
// Every stochastic process in the simulation (weather fronts, fault times,
// memory bit flips, workload start fuzz, sensor noise) draws from its own
// *named* stream derived from one master seed.  Adding a new consumer never
// perturbs the draws of existing ones, so a single seed reproduces an entire
// experiment bit-for-bit — the property the determinism test suite locks in.
#pragma once

#include <cstdint>
#include <string_view>

namespace zerodeg::core {

/// splitmix64: used to expand seeds; passes BigCrush, trivially constexpr.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// FNV-1a over a string, for deriving per-name stream seeds.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// xoshiro256** by Blackman & Vigna — small, fast, high quality.
/// Satisfies UniformRandomBitGenerator so it can feed <random> distributions,
/// though the helpers below are preferred (they are platform-stable;
/// libstdc++'s distributions are not guaranteed identical across versions).
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    [[nodiscard]] static constexpr result_type min() { return 0; }
    [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

    constexpr result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4] = {};
};

/// A named random stream with platform-stable distribution helpers.
class RngStream {
public:
    /// Derives this stream's state from (master_seed, name); the same pair
    /// always yields the same sequence.
    RngStream(std::uint64_t master_seed, std::string_view name)
        : engine_(master_seed ^ fnv1a(name)) {}

    [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

    /// Uniform in [0, 1).
    [[nodiscard]] double uniform01() {
        // 53 high bits -> double mantissa.
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

    /// Uniform integer in [lo, hi] (inclusive).
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal via Box–Muller (deterministic across platforms).
    [[nodiscard]] double normal();
    [[nodiscard]] double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// Exponential with the given rate (lambda), mean 1/lambda.
    [[nodiscard]] double exponential(double rate);

    /// Bernoulli trial.
    [[nodiscard]] bool chance(double p) { return uniform01() < p; }

    /// Poisson-distributed count with the given mean (Knuth for small
    /// means, normal approximation above 64 — the simulation only needs
    /// counts, not exact tail shape, at large means).
    [[nodiscard]] std::uint64_t poisson(double mean);

private:
    Xoshiro256 engine_;
    bool has_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

}  // namespace zerodeg::core
