#include "core/units.hpp"

#include <cstdio>

namespace zerodeg::core {

namespace {

std::string format(double v, const char* suffix) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f%s", v, suffix);
    return buf;
}

}  // namespace

std::string to_string(Celsius t) { return format(t.value(), " degC"); }
std::string to_string(Kelvin t) { return format(t.value(), " K"); }
std::string to_string(RelHumidity rh) { return format(rh.value(), "% RH"); }

std::string to_string(Watts p) {
    if (p.value() >= 1000.0 || p.value() <= -1000.0) return format(p.kilowatts(), " kW");
    return format(p.value(), " W");
}

std::string to_string(Joules e) {
    if (e.value() >= 3.6e6 || e.value() <= -3.6e6) return format(e.kilowatt_hours(), " kWh");
    return format(e.value(), " J");
}

}  // namespace zerodeg::core
