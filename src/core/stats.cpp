#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::core {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> data, double p) {
    if (data.empty()) throw InvalidArgument("percentile: empty data");
    if (p < 0.0 || p > 100.0) throw InvalidArgument("percentile: p out of [0,100]");
    std::sort(data.begin(), data.end());
    if (data.size() == 1) return data[0];
    const double rank = p / 100.0 * static_cast<double>(data.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= data.size()) return data.back();
    return data[lo] + frac * (data[lo + 1] - data[lo]);
}

double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y) {
    if (x.size() != y.size()) throw InvalidArgument("pearson_correlation: size mismatch");
    if (x.size() < 2) throw InvalidArgument("pearson_correlation: need at least 2 points");
    RunningStats sx, sy;
    for (double v : x) sx.add(v);
    for (double v : y) sy.add(v);
    double cov = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
    }
    cov /= static_cast<double>(x.size() - 1);
    const double denom = sx.stddev() * sy.stddev();
    if (denom == 0.0) return 0.0;
    return cov / denom;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins) {
    if (bins == 0) throw InvalidArgument("Histogram: need at least one bin");
    if (!(lo < hi)) throw InvalidArgument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / w));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_low(std::size_t i) const {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i);
}

}  // namespace zerodeg::core
