// Weather-trace import/export.
//
// A run can be driven by a recorded trace instead of the synthetic model —
// this is the seam through which a real SMEAR III extract would be plugged
// in (the substitution DESIGN.md documents).  The format is CSV:
//   time,temp_degC,rh_pct,wind_mps,ghi_wm2,cloud,precip_mm_h
#pragma once

#include <iosfwd>
#include <vector>

#include "weather/weather_model.hpp"

namespace zerodeg::weather {

/// Write samples as CSV with a header row.
void write_trace(std::ostream& out, const std::vector<WeatherSample>& samples);

/// Parse a trace written by write_trace.  Throws CorruptData on malformed
/// input.  Derived fields (dew point, snow flag) are recomputed.
[[nodiscard]] std::vector<WeatherSample> read_trace(std::istream& in);

/// Generate a trace by running a model over [from, to] at `step`.
[[nodiscard]] std::vector<WeatherSample> generate_trace(WeatherModel& model, TimePoint from,
                                                        TimePoint to, core::Duration step);

/// A playback "model" driven by a recorded trace: linear interpolation of
/// temperature/humidity/wind, step interpolation of precipitation.
class TracePlayer {
public:
    explicit TracePlayer(std::vector<WeatherSample> samples);

    [[nodiscard]] WeatherSample at(TimePoint t) const;
    [[nodiscard]] TimePoint begin_time() const { return samples_.front().time; }
    [[nodiscard]] TimePoint end_time() const { return samples_.back().time; }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }

private:
    std::vector<WeatherSample> samples_;
};

/// A TracePlayer exposed through the WeatherSource interface, so a recorded
/// trace can drive the WeatherStation (and hence the whole experiment) in
/// place of the synthetic model.
class TraceSource final : public WeatherSource {
public:
    explicit TraceSource(TracePlayer player) : player_(std::move(player)) {}
    explicit TraceSource(std::vector<WeatherSample> samples)
        : player_(std::move(samples)) {}

    WeatherSample advance_to(TimePoint t) override { return player_.at(t); }

    [[nodiscard]] const TracePlayer& player() const { return player_; }

private:
    TracePlayer player_;
};

}  // namespace zerodeg::weather
