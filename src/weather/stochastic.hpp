// Stochastic building blocks for the weather synthesis.
//
// Temperature anomalies, wind speed and cloud cover are all mean-reverting
// noisy processes; we model each as an Ornstein-Uhlenbeck process advanced
// with the exact discretization (so the step size does not change the
// stationary distribution — a property the tests check).
#pragma once

#include "core/rng.hpp"
#include "core/sim_time.hpp"

namespace zerodeg::weather {

/// Mean-reverting Gaussian process:
///   dX = -(X - mean)/tau dt + sigma * sqrt(2/tau) dW
/// Stationary distribution is N(mean, sigma^2) regardless of step size.
class OrnsteinUhlenbeck {
public:
    /// @param mean       long-run mean
    /// @param sigma      stationary standard deviation
    /// @param tau        relaxation time (seconds); correlation decays e^-dt/tau
    OrnsteinUhlenbeck(double mean, double sigma, core::Duration tau, core::RngStream rng);

    /// Advance by `dt` and return the new value.
    double step(core::Duration dt);

    [[nodiscard]] double value() const { return value_; }
    void set_value(double v) { value_ = v; }
    void set_mean(double m) { mean_ = m; }
    [[nodiscard]] double mean() const { return mean_; }

private:
    double mean_;
    double sigma_;
    double tau_seconds_;
    core::RngStream rng_;
    double value_;
    // step() is called with the same dt thousands of times per season; the
    // decay factor a = exp(-dt/tau) and the shock scale sigma*sqrt(1-a^2)
    // depend only on dt, so they are memoized keyed on the last dt seen.
    double memo_dt_seconds_ = -1.0;
    double memo_decay_ = 0.0;
    double memo_shock_scale_ = 0.0;
};

/// A process clamped into [lo, hi] after each step (wind >= 0, cloud in
/// [0,1]).  Clamping slightly distorts the stationary law near the bounds,
/// which is acceptable — and realistic — for wind and cloud.
class ClampedOu {
public:
    ClampedOu(double mean, double sigma, core::Duration tau, double lo, double hi,
              core::RngStream rng);

    double step(core::Duration dt);
    [[nodiscard]] double value() const { return ou_.value(); }
    void set_mean(double m) { ou_.set_mean(m); }

private:
    OrnsteinUhlenbeck ou_;
    double lo_;
    double hi_;
};

}  // namespace zerodeg::weather
