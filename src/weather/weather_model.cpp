#include "weather/weather_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "weather/psychrometrics.hpp"

namespace zerodeg::weather {

WeatherConfig helsinki_2010_config() {
    WeatherConfig cfg;
    const auto d = [](int month, int day) { return TimePoint::from_date(2010, month, day); };
    // Daily-mean climatology for the experiment window, shaped to the events
    // the paper reports (harsh mid-February, cold start of March, then the
    // spring ramp the authors expect to "shift rapidly").
    cfg.anchors = {
        {d(1, 15), Celsius{-11.0}}, {d(2, 1), Celsius{-10.0}}, {d(2, 13), Celsius{-9.2}},
        {d(2, 20), Celsius{-11.0}}, {d(3, 1), Celsius{-9.0}},  {d(3, 8), Celsius{-7.0}},
        {d(3, 15), Celsius{-4.0}},  {d(3, 26), Celsius{-1.0}}, {d(4, 10), Celsius{3.0}},
        {d(4, 25), Celsius{7.0}},   {d(5, 10), Celsius{11.0}}, {d(5, 31), Celsius{14.0}},
    };
    // The front that took the longest-running host to -22 degC "after the
    // initial period" (Section 4.2.1): a deep scripted snap right after the
    // main phase started on Feb 19.
    cfg.cold_snaps = {
        {TimePoint::from_civil({2010, 2, 21, 18, 0, 0}), Duration::hours(42), Duration::hours(10),
         Celsius{-8.0}},
        // A second, shallower March front (the paper's Fig. 3 shows sharp
        // temperature drops well into March).
        {TimePoint::from_civil({2010, 3, 6, 12, 0, 0}), Duration::hours(30), Duration::hours(8),
         Celsius{-6.0}},
    };
    return cfg;
}

WeatherConfig helsinki_full_year_config() {
    WeatherConfig cfg = helsinki_2010_config();
    const auto d = [](int year, int month, int day) {
        return TimePoint::from_date(year, month, day);
    };
    // Monthly-mean climatology for Helsinki-Vantaa, 2010 flavor (a cold
    // winter on both ends, a warm July).
    cfg.anchors = {
        {d(2010, 1, 1), Celsius{-9.0}},  {d(2010, 1, 15), Celsius{-11.0}},
        {d(2010, 2, 13), Celsius{-9.2}}, {d(2010, 3, 15), Celsius{-4.0}},
        {d(2010, 4, 15), Celsius{4.0}},  {d(2010, 5, 15), Celsius{11.5}},
        {d(2010, 6, 15), Celsius{15.0}}, {d(2010, 7, 15), Celsius{21.5}},
        {d(2010, 8, 15), Celsius{17.5}}, {d(2010, 9, 15), Celsius{11.0}},
        {d(2010, 10, 15), Celsius{4.5}}, {d(2010, 11, 15), Celsius{-1.0}},
        {d(2010, 12, 15), Celsius{-8.5}}, {d(2011, 1, 1), Celsius{-9.0}},
    };
    // A midsummer heat wave alongside the winter fronts (July 2010 really
    // was record-hot in Finland).
    cfg.cold_snaps.push_back({TimePoint::from_civil({2010, 7, 14, 12, 0, 0}),
                              Duration::hours(9 * 24), Duration::hours(36), Celsius{+6.5}});
    return cfg;
}

// Stream names are spelled at each construction site (not forwarded through
// a helper) so the whole-project RNG-stream audit (ZD016) can key them.
WeatherModel::WeatherModel(WeatherConfig config, std::uint64_t master_seed)
    : config_(std::move(config)),
      synoptic_(0.0, config_.synoptic_sigma.value(), config_.synoptic_tau,
                core::RngStream{master_seed, "weather.synoptic"}),
      jitter_(0.0, config_.jitter_sigma.value(), config_.jitter_tau,
              core::RngStream{master_seed, "weather.jitter"}),
      depression_(config_.depression_mean, config_.depression_sigma, config_.depression_tau, 0.1,
                  25.0, core::RngStream{master_seed, "weather.depression"}),
      wind_(config_.wind_mean, config_.wind_sigma, config_.wind_tau, 0.0, 30.0,
            core::RngStream{master_seed, "weather.wind"}),
      cloud_(config_.cloud_mean, config_.cloud_sigma, config_.cloud_tau, 0.0, 1.0,
             core::RngStream{master_seed, "weather.cloud"}),
      precip_rng_(core::RngStream{master_seed, "weather.precip"}) {
    if (config_.anchors.size() < 2) {
        throw core::InvalidArgument("WeatherModel: need at least two climatology anchors");
    }
    for (std::size_t i = 1; i < config_.anchors.size(); ++i) {
        if (config_.anchors[i].date <= config_.anchors[i - 1].date) {
            throw core::InvalidArgument("WeatherModel: anchors must be strictly time-ordered");
        }
    }
}

Celsius WeatherModel::baseline(TimePoint t) const {
    const auto& a = config_.anchors;
    if (t <= a.front().date) return a.front().mean;
    if (t >= a.back().date) return a.back().mean;
    for (std::size_t i = 1; i < a.size(); ++i) {
        if (t <= a[i].date) {
            const double span = static_cast<double>((a[i].date - a[i - 1].date).count());
            const double w = static_cast<double>((t - a[i - 1].date).count()) / span;
            return Celsius{a[i - 1].mean.value() + w * (a[i].mean.value() - a[i - 1].mean.value())};
        }
    }
    return a.back().mean;
}

Celsius WeatherModel::snap_offset(TimePoint t) const {
    double offset = 0.0;
    for (const ColdSnap& snap : config_.cold_snaps) {
        const TimePoint full_from = snap.start + snap.ramp;
        const TimePoint full_to = snap.start + snap.duration - snap.ramp;
        const TimePoint end = snap.start + snap.duration;
        if (t <= snap.start || t >= end) continue;
        double w = 1.0;
        if (t < full_from) {
            w = static_cast<double>((t - snap.start).count()) /
                static_cast<double>(snap.ramp.count());
        } else if (t > full_to) {
            w = static_cast<double>((end - t).count()) / static_cast<double>(snap.ramp.count());
        }
        offset += snap.depth.value() * std::clamp(w, 0.0, 1.0);
    }
    return Celsius{offset};
}

Celsius WeatherModel::diurnal(TimePoint t) const {
    // Amplitude interpolates between winter and spring with daylight length
    // (6 h -> winter amplitude, 18 h -> spring amplitude).
    const double hours = daylight_hours(t.day_of_year(), config_.location);
    const double w = std::clamp((hours - 6.0) / 12.0, 0.0, 1.0);
    const double amplitude = config_.diurnal_amplitude_winter.value() +
                             w * (config_.diurnal_amplitude_spring.value() -
                                  config_.diurnal_amplitude_winter.value());
    // Coldest ~05:00, warmest ~15:00 local: phase-shifted cosine.
    const double phase = 2.0 * M_PI * (t.day_fraction() - 15.0 / 24.0);
    return Celsius{amplitude * std::cos(phase)};
}

Celsius WeatherModel::deterministic_temperature(TimePoint t) const {
    return baseline(t) + snap_offset(t) + diurnal(t);
}

WeatherSample WeatherModel::advance_to(TimePoint t) {
    if (!started_) {
        state_time_ = t;
        started_ = true;
        return sample_at(t);
    }
    if (t < state_time_) {
        throw core::InvalidArgument("WeatherModel::advance_to: time went backwards");
    }
    while (state_time_ < t) {
        const Duration step = std::min(kMaxStep, t - state_time_);
        (void)synoptic_.step(step);
        (void)jitter_.step(step);
        (void)depression_.step(step);
        (void)wind_.step(step);
        (void)cloud_.step(step);
        state_time_ += step;
    }
    return sample_at(t);
}

WeatherSample WeatherModel::sample_at(TimePoint t) {
    WeatherSample s;
    s.time = t;
    s.temperature =
        deterministic_temperature(t) + Celsius{synoptic_.value()} + Celsius{jitter_.value()};
    s.cloud_fraction = cloud_.value();
    // Clear skies radiate heat away at night and admit sun by day: couple a
    // modest clear-sky correction into temperature.
    const double clearness = 1.0 - s.cloud_fraction;
    const bool night = solar_elevation_rad(t, config_.location) <= 0.0;
    s.temperature += Celsius{night ? -1.8 * clearness : 0.8 * clearness};

    s.dew_point = s.temperature - Celsius{depression_.value()};
    s.humidity = rebase_humidity(s.dew_point, RelHumidity{100.0}, s.temperature).clamped();
    s.wind = MetersPerSecond{wind_.value()};
    s.irradiance = cloudy_irradiance(t, config_.location, s.cloud_fraction);

    if (s.cloud_fraction > config_.precip_cloud_threshold) {
        const double excess = (s.cloud_fraction - config_.precip_cloud_threshold) /
                              (1.0 - config_.precip_cloud_threshold);
        if (precip_rng_.chance(0.5 * excess)) {
            s.precip_mm_per_h = config_.precip_rate_mm_per_h * (0.5 + precip_rng_.uniform01());
            s.snowing = s.temperature < Celsius{0.5};
        }
    }
    return s;
}

}  // namespace zerodeg::weather
