#include "weather/solar.hpp"

#include <algorithm>
#include <cmath>

namespace zerodeg::weather {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}

double solar_declination_rad(int day_of_year) {
    // Cooper (1969): delta = 23.45 deg * sin(360/365 * (284 + n)).
    return 23.45 * kDegToRad *
           std::sin(2.0 * M_PI * (284.0 + static_cast<double>(day_of_year)) / 365.0);
}

double solar_elevation_rad(TimePoint t, const Location& loc) {
    const double decl = solar_declination_rad(t.day_of_year());
    const double lat = loc.latitude_deg * kDegToRad;
    // Local solar time: wall clock corrected for longitude vs. zone meridian.
    // (The equation of time is < 17 min and irrelevant at our fidelity.)
    const double zone_meridian_deg = loc.utc_offset_hours * 15.0;
    const double solar_hours =
        t.day_fraction() * 24.0 + (loc.longitude_deg - zone_meridian_deg) / 15.0;
    const double hour_angle = (solar_hours - 12.0) * 15.0 * kDegToRad;
    const double sin_elev =
        std::sin(lat) * std::sin(decl) + std::cos(lat) * std::cos(decl) * std::cos(hour_angle);
    return std::asin(std::clamp(sin_elev, -1.0, 1.0));
}

WattsPerSquareMeter clear_sky_irradiance(TimePoint t, const Location& loc) {
    const double elev = solar_elevation_rad(t, loc);
    if (elev <= 0.0) return WattsPerSquareMeter{0.0};
    const double sin_elev = std::sin(elev);
    // Haurwitz (1945): GHI = 1098 * sin(h) * exp(-0.057 / sin(h)).
    return WattsPerSquareMeter{1098.0 * sin_elev * std::exp(-0.057 / sin_elev)};
}

WattsPerSquareMeter cloudy_irradiance(TimePoint t, const Location& loc, double cloud_fraction) {
    const double c = std::clamp(cloud_fraction, 0.0, 1.0);
    const double factor = 1.0 - 0.75 * std::pow(c, 3.4);
    return WattsPerSquareMeter{clear_sky_irradiance(t, loc).value() * factor};
}

double daylight_hours(int day_of_year, const Location& loc) {
    const double decl = solar_declination_rad(day_of_year);
    const double lat = loc.latitude_deg * kDegToRad;
    const double cos_h0 = -std::tan(lat) * std::tan(decl);
    if (cos_h0 <= -1.0) return 24.0;  // midnight sun
    if (cos_h0 >= 1.0) return 0.0;    // polar night
    return 2.0 * std::acos(cos_h0) / (15.0 * kDegToRad);
}

}  // namespace zerodeg::weather
