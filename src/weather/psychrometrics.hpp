// Psychrometrics: the humidity mathematics the paper leans on in Sections
// 3.3, 4.1 and 5 (condensation risk, RH re-basing between outside air and
// tent-internal temperature).
//
// Saturation vapour pressure uses the Magnus formula with the WMO-recommended
// Sonntag coefficients, with a separate branch over ice — essential here,
// since almost the whole experiment runs below freezing.
#pragma once

#include "core/units.hpp"

namespace zerodeg::weather {

using core::Celsius;
using core::GramsPerCubicMeter;
using core::Pascals;
using core::RelHumidity;

/// Saturation vapour pressure over liquid water (Magnus/Sonntag).
/// Valid roughly -45..60 degC.
[[nodiscard]] Pascals saturation_vapor_pressure_water(Celsius t);

/// Saturation vapour pressure over ice.  Valid roughly -65..0 degC.
[[nodiscard]] Pascals saturation_vapor_pressure_ice(Celsius t);

/// Saturation pressure over the phase that matters at `t` (ice below 0 degC).
[[nodiscard]] Pascals saturation_vapor_pressure(Celsius t);

/// Actual vapour pressure of air at temperature `t` and humidity `rh`.
[[nodiscard]] Pascals vapor_pressure(Celsius t, RelHumidity rh);

/// Dew point: the temperature at which air with vapour pressure `e` would
/// saturate (over water).  Inverse Magnus.
[[nodiscard]] Celsius dew_point_from_vapor_pressure(Pascals e);

/// Dew point of air at (t, rh).
[[nodiscard]] Celsius dew_point(Celsius t, RelHumidity rh);

/// Frost point (saturation over ice); relevant below 0 degC.
[[nodiscard]] Celsius frost_point_from_vapor_pressure(Pascals e);

/// Relative humidity of the same air parcel re-based to a new temperature
/// (vapour pressure conserved).  This is how the tent-internal RH in Fig. 4
/// relates to the outside RH in Fig. 4: warmer tent air holds the same
/// moisture at a lower relative humidity.
[[nodiscard]] RelHumidity rebase_humidity(Celsius from_t, RelHumidity from_rh, Celsius to_t);

/// Absolute humidity (vapour mass per air volume) from (t, rh).
[[nodiscard]] GramsPerCubicMeter absolute_humidity(Celsius t, RelHumidity rh);

/// Wet-bulb temperature (Stull 2011 empirical fit, +/-0.3 degC for
/// 5..99% RH, -20..50 degC).  The driving temperature of evaporative
/// ("wet-side") economizers, per the paper's reference [2].
[[nodiscard]] Celsius wet_bulb(Celsius t, RelHumidity rh);

/// True if a surface at `surface_t` exposed to air at (air_t, air_rh) is at
/// or below the air's dew point, i.e. water will condense on it.  This is
/// the paper's Section 5 question: can water condense inside the cases?
[[nodiscard]] bool condensation_on_surface(Celsius surface_t, Celsius air_t, RelHumidity air_rh);

/// Dew-point margin: surface temperature minus dew point.  Positive = safe.
[[nodiscard]] Celsius condensation_margin(Celsius surface_t, Celsius air_t, RelHumidity air_rh);

}  // namespace zerodeg::weather
