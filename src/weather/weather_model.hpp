// Synthetic Helsinki winter/spring 2010 weather.
//
// Substitution (see DESIGN.md): the paper reads its outside conditions from
// the SMEAR III station next to the department.  We generate an equivalent
// (temperature, humidity, wind, irradiance, precipitation) process whose
// statistics match what the paper reports: outside minimum near -22 degC
// shortly after the main phase started, a -10.2 degC minimum / -9.2 degC mean
// prototype weekend (Feb 12-15), and rapid spring warming through March-May.
//
// Structure: deterministic seasonal baseline (piecewise-linear climatology
// anchors) + diurnal harmonic scaled by daylight + synoptic OU anomaly +
// scripted cold-snap events; humidity via a dew-point-depression process;
// wind and cloud as clamped OU processes.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "weather/solar.hpp"
#include "weather/stochastic.hpp"

namespace zerodeg::weather {

using core::Celsius;
using core::Duration;
using core::MetersPerSecond;
using core::RelHumidity;
using core::TimePoint;
using core::WattsPerSquareMeter;

/// One reading of the full outdoor state.
struct WeatherSample {
    TimePoint time;
    Celsius temperature;
    RelHumidity humidity;
    Celsius dew_point;
    MetersPerSecond wind;
    WattsPerSquareMeter irradiance;
    double cloud_fraction = 0.0;   ///< [0, 1]
    double precip_mm_per_h = 0.0;  ///< melted-water equivalent
    bool snowing = false;          ///< precipitation falling below ~+0.5 degC
};

/// Anything that can supply the outdoor state at nondecreasing times: the
/// synthetic model below, or a recorded trace (weather/trace_io.hpp).  This
/// is the seam through which real SMEAR III data plugs into the experiment.
class WeatherSource {
public:
    virtual ~WeatherSource() = default;
    virtual WeatherSample advance_to(TimePoint t) = 0;
};

/// Deterministic, scripted departure from the baseline (a weather front);
/// ramps in and out linearly over `ramp`, holds `depth` in between.
struct ColdSnap {
    TimePoint start;
    Duration duration{0};
    Duration ramp = Duration::hours(12);
    Celsius depth;  ///< negative = colder than baseline
};

/// Climatology anchor: baseline daily-mean temperature on a given date.
struct ClimateAnchor {
    TimePoint date;
    Celsius mean;
};

struct WeatherConfig {
    Location location;

    /// Piecewise-linear daily-mean baseline.  Defaults (set by
    /// helsinki_2010_config) span Feb 1 - May 31, 2010.
    std::vector<ClimateAnchor> anchors;

    /// Scripted fronts on top of the baseline.
    std::vector<ColdSnap> cold_snaps;

    /// Diurnal swing: amplitude grows with daylight length.
    Celsius diurnal_amplitude_winter{1.5};
    Celsius diurnal_amplitude_spring{4.5};

    /// Synoptic (multi-day) OU anomaly.
    Celsius synoptic_sigma{2.2};
    Duration synoptic_tau = Duration::hours(36);

    /// Fast (hour-scale) temperature jitter.
    Celsius jitter_sigma{0.6};
    Duration jitter_tau = Duration::minutes(45);

    /// Dew-point depression (temperature minus dew point), degC.
    double depression_mean = 2.5;
    double depression_sigma = 2.0;
    Duration depression_tau = Duration::hours(8);

    /// Wind speed OU, m/s.
    double wind_mean = 3.8;
    double wind_sigma = 2.2;
    Duration wind_tau = Duration::hours(3);

    /// Cloud cover OU, fraction.
    double cloud_mean = 0.65;
    double cloud_sigma = 0.35;
    Duration cloud_tau = Duration::hours(9);

    /// Precipitation: chance per step scales with cloud cover above this.
    double precip_cloud_threshold = 0.75;
    double precip_rate_mm_per_h = 0.8;
};

/// Configuration reproducing the paper's season (Feb 1 - May 31 2010),
/// including the cold snap that took host #1 to -22 degC.
[[nodiscard]] WeatherConfig helsinki_2010_config();

/// Full-calendar-year Helsinki climatology (the paper's future work: "more
/// data over longer periods of time and over varying meteorological
/// conditions").  Anchors span Jan 1 2010 - Jan 1 2011, including the humid
/// late-summer regime that stresses the Peck term.
[[nodiscard]] WeatherConfig helsinki_full_year_config();

/// The generator.  Stateful: call advance_to() with nondecreasing times.
class WeatherModel final : public WeatherSource {
public:
    WeatherModel(WeatherConfig config, std::uint64_t master_seed);

    /// Advance the stochastic state to `t` (in internal sub-steps bounded by
    /// max_step) and return the sample at `t`.
    WeatherSample advance_to(TimePoint t) override;

    [[nodiscard]] const WeatherConfig& config() const { return config_; }

    /// Deterministic part only (baseline + snaps + diurnal), no noise.
    /// Exposed for tests and for the thermal ablations.
    [[nodiscard]] Celsius deterministic_temperature(TimePoint t) const;

    /// The piecewise-linear climatology baseline alone.
    [[nodiscard]] Celsius baseline(TimePoint t) const;

private:
    WeatherConfig config_;
    OrnsteinUhlenbeck synoptic_;
    OrnsteinUhlenbeck jitter_;
    ClampedOu depression_;
    ClampedOu wind_;
    ClampedOu cloud_;
    core::RngStream precip_rng_;
    TimePoint state_time_;
    bool started_ = false;
    static constexpr Duration kMaxStep = Duration::minutes(10);

    [[nodiscard]] Celsius snap_offset(TimePoint t) const;
    [[nodiscard]] Celsius diurnal(TimePoint t) const;
    [[nodiscard]] WeatherSample sample_at(TimePoint t);
};

}  // namespace zerodeg::weather
