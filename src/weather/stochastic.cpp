#include "weather/stochastic.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::weather {

OrnsteinUhlenbeck::OrnsteinUhlenbeck(double mean, double sigma, core::Duration tau,
                                     core::RngStream rng)
    : mean_(mean),
      sigma_(sigma),
      tau_seconds_(static_cast<double>(tau.count())),
      rng_(rng),
      value_(mean) {
    if (tau.count() <= 0) throw core::InvalidArgument("OrnsteinUhlenbeck: tau must be positive");
    if (sigma < 0.0) throw core::InvalidArgument("OrnsteinUhlenbeck: sigma must be >= 0");
    // Start from the stationary distribution, not the mean, so short runs
    // are not biased toward calm conditions.
    value_ = mean_ + sigma_ * rng_.normal();
}

double OrnsteinUhlenbeck::step(core::Duration dt) {
    // Exact discretization: X' = mu + (X - mu) a + sigma sqrt(1 - a^2) Z,
    // with a = exp(-dt/tau).  The dt-derived coefficients are memoized;
    // sigma * sqrt(...) is folded into the cached shock scale with the same
    // left-to-right association as the original expression.
    const double dt_seconds = static_cast<double>(dt.count());
    if (dt_seconds != memo_dt_seconds_) {
        memo_dt_seconds_ = dt_seconds;
        memo_decay_ = std::exp(-dt_seconds / tau_seconds_);
        memo_shock_scale_ = sigma_ * std::sqrt(1.0 - memo_decay_ * memo_decay_);
    }
    value_ = mean_ + (value_ - mean_) * memo_decay_ + memo_shock_scale_ * rng_.normal();
    return value_;
}

ClampedOu::ClampedOu(double mean, double sigma, core::Duration tau, double lo, double hi,
                     core::RngStream rng)
    : ou_(mean, sigma, tau, rng), lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw core::InvalidArgument("ClampedOu: lo must be < hi");
    ou_.set_value(std::clamp(ou_.value(), lo_, hi_));
}

double ClampedOu::step(core::Duration dt) {
    const double raw = ou_.step(dt);
    const double clamped = std::clamp(raw, lo_, hi_);
    if (clamped != raw) ou_.set_value(clamped);
    return clamped;
}

}  // namespace zerodeg::weather
