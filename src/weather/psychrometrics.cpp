#include "weather/psychrometrics.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::weather {

namespace {

// Magnus coefficients (Sonntag 1990): e_s in hPa, t in degC.
constexpr double kAWater = 6.112;
constexpr double kBWater = 17.62;
constexpr double kCWater = 243.12;
constexpr double kAIce = 6.112;
constexpr double kBIce = 22.46;
constexpr double kCIce = 272.62;

}  // namespace

Pascals saturation_vapor_pressure_water(Celsius t) {
    const double tc = t.value();
    return Pascals::from_hectopascals(kAWater * std::exp(kBWater * tc / (kCWater + tc)));
}

Pascals saturation_vapor_pressure_ice(Celsius t) {
    const double tc = t.value();
    return Pascals::from_hectopascals(kAIce * std::exp(kBIce * tc / (kCIce + tc)));
}

Pascals saturation_vapor_pressure(Celsius t) {
    return t < Celsius{0.0} ? saturation_vapor_pressure_ice(t)
                            : saturation_vapor_pressure_water(t);
}

Pascals vapor_pressure(Celsius t, RelHumidity rh) {
    return Pascals{saturation_vapor_pressure(t).value() * rh.fraction()};
}

Celsius dew_point_from_vapor_pressure(Pascals e) {
    if (e.value() <= 0.0) {
        throw core::InvalidArgument("dew_point_from_vapor_pressure: non-positive pressure");
    }
    const double ln_ratio = std::log(e.hectopascals() / kAWater);
    return Celsius{kCWater * ln_ratio / (kBWater - ln_ratio)};
}

Celsius dew_point(Celsius t, RelHumidity rh) {
    return dew_point_from_vapor_pressure(vapor_pressure(t, rh));
}

Celsius frost_point_from_vapor_pressure(Pascals e) {
    if (e.value() <= 0.0) {
        throw core::InvalidArgument("frost_point_from_vapor_pressure: non-positive pressure");
    }
    const double ln_ratio = std::log(e.hectopascals() / kAIce);
    return Celsius{kCIce * ln_ratio / (kBIce - ln_ratio)};
}

RelHumidity rebase_humidity(Celsius from_t, RelHumidity from_rh, Celsius to_t) {
    const Pascals e = vapor_pressure(from_t, from_rh);
    return RelHumidity::from_fraction(e.value() / saturation_vapor_pressure(to_t).value());
}

GramsPerCubicMeter absolute_humidity(Celsius t, RelHumidity rh) {
    // rho_v = e / (R_v * T), R_v = 461.5 J/(kg K); result in g/m^3.
    const Pascals e = vapor_pressure(t, rh);
    const double kelvin = t.to_kelvin().value();
    return GramsPerCubicMeter{1000.0 * e.value() / (461.5 * kelvin)};
}

Celsius wet_bulb(Celsius t, RelHumidity rh) {
    // Stull (2011), "Wet-Bulb Temperature from Relative Humidity and Air
    // Temperature".  RH in percent, T in degC.
    const double tc = t.value();
    const double r = std::max(rh.value(), 1.0);
    const double tw = tc * std::atan(0.151977 * std::sqrt(r + 8.313659)) +
                      std::atan(tc + r) - std::atan(r - 1.676331) +
                      0.00391838 * std::pow(r, 1.5) * std::atan(0.023101 * r) - 4.686035;
    // The fit can nudge above the dry-bulb at saturation; clamp.
    return Celsius{std::min(tw, tc)};
}

bool condensation_on_surface(Celsius surface_t, Celsius air_t, RelHumidity air_rh) {
    return condensation_margin(surface_t, air_t, air_rh) <= Celsius{0.0};
}

Celsius condensation_margin(Celsius surface_t, Celsius air_t, RelHumidity air_rh) {
    if (air_rh.value() <= 0.0) {
        // Perfectly dry air never condenses; report a large safe margin.
        return Celsius{100.0};
    }
    return surface_t - dew_point(air_t, air_rh);
}

}  // namespace zerodeg::weather
