// Solar geometry and clear-sky irradiance.
//
// Sunlight is the second-largest driver of the tent's internal temperature
// (Section 3.2: "outside air temperature, sunlight and wind speeds, power
// draw of equipment, and which tent flaps are open"), and the reflective
// rescue-foil modification (event R) exists purely to fight it.  The model is
// standard: solar declination (Cooper), hour angle, elevation, and the
// Haurwitz clear-sky global-horizontal irradiance attenuated by cloud cover.
#pragma once

#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::weather {

using core::TimePoint;
using core::WattsPerSquareMeter;

/// Geographic location; defaults are Kumpula campus, Helsinki (the roof
/// terrace of the CS department, 60.2 N).
struct Location {
    double latitude_deg = 60.204;
    double longitude_deg = 24.962;
    /// Offset of local wall-clock from UTC in hours (Finland winter = +2).
    double utc_offset_hours = 2.0;
};

/// Solar declination angle in radians for a given day of year (Cooper 1969).
[[nodiscard]] double solar_declination_rad(int day_of_year);

/// Solar elevation angle (radians) above the horizon; negative at night.
/// `t` is local wall-clock time at `loc`.
[[nodiscard]] double solar_elevation_rad(TimePoint t, const Location& loc);

/// Clear-sky global horizontal irradiance (Haurwitz model).
[[nodiscard]] WattsPerSquareMeter clear_sky_irradiance(TimePoint t, const Location& loc);

/// Irradiance attenuated by fractional cloud cover in [0, 1]
/// (Kasten & Czeplak: factor 1 - 0.75 * c^3.4).
[[nodiscard]] WattsPerSquareMeter cloudy_irradiance(TimePoint t, const Location& loc,
                                                    double cloud_fraction);

/// Daylight length in hours for the given day (sunrise-to-sunset).
[[nodiscard]] double daylight_hours(int day_of_year, const Location& loc);

}  // namespace zerodeg::weather
