#include "weather/weather_station.hpp"

#include "core/error.hpp"

namespace zerodeg::weather {

WeatherStation::WeatherStation(core::Simulator& sim, WeatherModel model, TimePoint first_sample,
                               core::Duration cadence)
    : WeatherStation(sim, std::make_unique<WeatherModel>(std::move(model)), first_sample,
                     cadence) {}

WeatherStation::WeatherStation(core::Simulator& sim, std::unique_ptr<WeatherSource> source,
                               TimePoint first_sample, core::Duration cadence)
    : sim_(sim), source_(std::move(source)) {
    if (!source_) throw core::InvalidArgument("WeatherStation: null source");
    const TimePoint start = first_sample < sim.now() ? sim.now() : first_sample;
    current_ = source_->advance_to(start);
    sim_.schedule_every(start, cadence, [this] { take_sample(); }, "weather-station-sample");
}

WeatherSample WeatherStation::observe_now() {
    current_ = source_->advance_to(sim_.now());
    return current_;
}

void WeatherStation::take_sample() {
    const WeatherSample s = observe_now();
    temperature_.append(s.time, s.temperature.value());
    humidity_.append(s.time, s.humidity.value());
    wind_.append(s.time, s.wind.value());
    irradiance_.append(s.time, s.irradiance.value());
}

}  // namespace zerodeg::weather
