#include "weather/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "weather/psychrometrics.hpp"

namespace zerodeg::weather {

namespace {

std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

TimePoint parse_time(const std::string& s, std::size_t line_no) {
    core::CivilDateTime c;
    if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &c.year, &c.month, &c.day, &c.hour, &c.minute,
                    &c.second) != 6) {
        throw core::ParseError("expected 'YYYY-MM-DD hh:mm:ss' timestamp, got '" + s + "'",
                               line_no);
    }
    return TimePoint::from_civil(c);
}

}  // namespace

void write_trace(std::ostream& out, const std::vector<WeatherSample>& samples) {
    core::CsvWriter w(out);
    w.write_row({"time", "temp_degC", "rh_pct", "wind_mps", "ghi_wm2", "cloud", "precip_mm_h"});
    for (const WeatherSample& s : samples) {
        w.write_row({s.time.to_string(), fmt(s.temperature.value()), fmt(s.humidity.value()),
                     fmt(s.wind.value()), fmt(s.irradiance.value()), fmt(s.cloud_fraction),
                     fmt(s.precip_mm_per_h)});
    }
}

std::vector<WeatherSample> read_trace(std::istream& in) {
    return core::with_context("weather trace", [&in] {
        core::CsvReader r(in);
        std::vector<std::string> row;
        if (!r.read_row(row)) throw core::ParseError("empty input (missing header)");
        if (row.size() < 7 || row[0] != "time") {
            throw core::ParseError(
                "bad header (want time,temp_degC,rh_pct,wind_mps,ghi_wm2,cloud,precip_mm_h)",
                r.line());
        }
        std::vector<WeatherSample> out;
        while (r.read_row(row)) {
            const std::size_t line = r.line();
            if (row.size() < 7) {
                throw core::ParseError("short row (want 7 fields, got " +
                                           std::to_string(row.size()) + ")",
                                       line);
            }
            WeatherSample s;
            s.time = parse_time(row[0], line);
            s.temperature = Celsius{core::parse_csv_double(row[1], line)};
            s.humidity = RelHumidity{core::parse_csv_double(row[2], line)}.clamped();
            s.wind = MetersPerSecond{core::parse_csv_double(row[3], line)};
            s.irradiance = WattsPerSquareMeter{core::parse_csv_double(row[4], line)};
            s.cloud_fraction = core::parse_csv_double(row[5], line);
            s.precip_mm_per_h = core::parse_csv_double(row[6], line);
            s.dew_point = s.humidity.value() > 0.0 ? dew_point(s.temperature, s.humidity)
                                                   : Celsius{-100.0};
            s.snowing = s.precip_mm_per_h > 0.0 && s.temperature < Celsius{0.5};
            if (!out.empty() && s.time < out.back().time) {
                throw core::ParseError("timestamps must be nondecreasing", line);
            }
            out.push_back(s);
        }
        if (out.empty()) throw core::ParseError("no samples after the header");
        return out;
    });
}

std::vector<WeatherSample> generate_trace(WeatherModel& model, TimePoint from, TimePoint to,
                                          core::Duration step) {
    if (step.count() <= 0) throw core::InvalidArgument("generate_trace: step must be positive");
    std::vector<WeatherSample> out;
    for (TimePoint t = from; t <= to; t += step) {
        out.push_back(model.advance_to(t));
    }
    return out;
}

TracePlayer::TracePlayer(std::vector<WeatherSample> samples) : samples_(std::move(samples)) {
    if (samples_.empty()) throw core::InvalidArgument("TracePlayer: empty trace");
}

WeatherSample TracePlayer::at(TimePoint t) const {
    if (t <= samples_.front().time) return samples_.front();
    if (t >= samples_.back().time) return samples_.back();
    const auto it = std::lower_bound(
        samples_.begin(), samples_.end(), t,
        [](const WeatherSample& s, TimePoint tp) { return s.time < tp; });
    if (it->time == t) return *it;
    const WeatherSample& hi = *it;
    const WeatherSample& lo = *(it - 1);
    const double span = static_cast<double>((hi.time - lo.time).count());
    const double w = span > 0.0 ? static_cast<double>((t - lo.time).count()) / span : 0.0;
    const auto lerp = [w](double a, double b) { return a + w * (b - a); };

    WeatherSample s;
    s.time = t;
    s.temperature = Celsius{lerp(lo.temperature.value(), hi.temperature.value())};
    s.humidity = RelHumidity{lerp(lo.humidity.value(), hi.humidity.value())}.clamped();
    s.wind = MetersPerSecond{lerp(lo.wind.value(), hi.wind.value())};
    s.irradiance = WattsPerSquareMeter{lerp(lo.irradiance.value(), hi.irradiance.value())};
    s.cloud_fraction = lerp(lo.cloud_fraction, hi.cloud_fraction);
    s.precip_mm_per_h = lo.precip_mm_per_h;  // step interpolation
    s.dew_point = s.humidity.value() > 0.0 ? dew_point(s.temperature, s.humidity)
                                           : Celsius{-100.0};
    s.snowing = s.precip_mm_per_h > 0.0 && s.temperature < Celsius{0.5};
    return s;
}

}  // namespace zerodeg::weather
