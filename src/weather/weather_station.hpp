// The SMEAR III weather station stand-in.
//
// The station samples a WeatherSource on a fixed cadence (SMEAR III
// publishes minute-resolution data; we default to 10 minutes, plenty for the
// figures) and exposes the accumulated series that Figures 3 and 4 plot.
// The source is usually the synthetic WeatherModel, but a TraceSource
// carrying recorded data drops in unchanged.
#pragma once

#include <memory>

#include "core/event_queue.hpp"
#include "core/timeseries.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg::weather {

class WeatherStation {
public:
    /// Convenience: wrap a synthetic model.
    WeatherStation(core::Simulator& sim, WeatherModel model, TimePoint first_sample,
                   core::Duration cadence = core::Duration::minutes(10));

    /// Generic: any weather source (e.g. a TraceSource of recorded data).
    WeatherStation(core::Simulator& sim, std::unique_ptr<WeatherSource> source,
                   TimePoint first_sample, core::Duration cadence = core::Duration::minutes(10));

    /// Most recent full sample (valid after the first sampling event).
    [[nodiscard]] const WeatherSample& current() const { return current_; }

    /// Sample the source *now* without recording (used by thermal stepping
    /// between station samples).
    WeatherSample observe_now();

    [[nodiscard]] const core::TimeSeries& temperature_series() const { return temperature_; }
    [[nodiscard]] const core::TimeSeries& humidity_series() const { return humidity_; }
    [[nodiscard]] const core::TimeSeries& wind_series() const { return wind_; }
    [[nodiscard]] const core::TimeSeries& irradiance_series() const { return irradiance_; }

    [[nodiscard]] WeatherSource& source() { return *source_; }

private:
    core::Simulator& sim_;
    std::unique_ptr<WeatherSource> source_;
    WeatherSample current_;
    core::TimeSeries temperature_{"outside_temp_degC"};
    core::TimeSeries humidity_{"outside_rh_pct"};
    core::TimeSeries wind_{"wind_mps"};
    core::TimeSeries irradiance_{"ghi_wm2"};

    void take_sample();
};

}  // namespace zerodeg::weather
