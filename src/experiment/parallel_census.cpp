#include "experiment/parallel_census.hpp"

#include <memory>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/watchdog.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep_journal.hpp"

namespace zerodeg::experiment {

FaultCensus run_season_census(const ExperimentConfig& config) {
    ExperimentRunner run(config);
    run.run();
    return take_census(run);
}

ParallelCensus::ParallelCensus(CensusPlan plan, std::size_t jobs)
    : plan_(std::move(plan)), runner_(jobs) {}

std::vector<ExperimentConfig> ParallelCensus::build_configs() const {
    // Configs are built serially up front so make_config need not be
    // thread-safe; only the seasons themselves fan out.  Validation happens
    // here too: a bad campaign dies with a per-cell diagnostic before any
    // worker starts.
    std::vector<ExperimentConfig> configs;
    configs.reserve(plan_.seeds);
    for (std::size_t i = 0; i < plan_.seeds; ++i) {
        const std::uint64_t seed = plan_.base_seed + i;
        if (plan_.make_config) {
            configs.push_back(plan_.make_config(i, seed));
        } else {
            ExperimentConfig cfg;
            cfg.master_seed = seed;
            configs.push_back(std::move(cfg));
        }
        core::with_context("census cell " + std::to_string(i),
                           [&] { validate(configs.back()); });
    }
    return configs;
}

SweepJournalKey ParallelCensus::journal_key() const {
    SweepJournalKey key;
    key.base_seed = plan_.base_seed;
    key.cells = plan_.seeds;
    // Combined fingerprint over every cell, order-sensitive, so a changed
    // sweep axis (not just a changed default) invalidates old journals.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const ExperimentConfig& cfg : build_configs()) {
        const std::uint64_t fp = fingerprint(cfg);
        h ^= fp + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    key.config_hash = h;
    return key;
}

CensusResult ParallelCensus::run_impl(SweepJournal* journal) const {
    const std::vector<ExperimentConfig> configs = build_configs();

    // Split cells into journal hits (reused verbatim) and cells still to
    // simulate.  find() runs before the fan-out; record() during it.
    std::vector<FaultCensus> censuses(configs.size());
    std::vector<std::size_t> missing;
    missing.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const FaultCensus* hit = journal ? journal->find(i) : nullptr;
        if (hit) {
            censuses[i] = *hit;
        } else {
            missing.push_back(i);
        }
    }

    // Optional deadline supervision: each cell attempt runs under a watched
    // scope whose cancel token is installed thread-locally, so leaf code
    // (fault-injected stalls, long loops) can honour a cancellation without
    // plumbing.  A cancelled attempt throws TransientError, which CellRetry
    // absorbs up to the cell's attempt budget — a hung node is detected,
    // cancelled, retried and reported, exactly like the paper's reboots.
    std::unique_ptr<core::Watchdog> watchdog;
    if (plan_.cell_deadline_ms > 0) {
        watchdog = std::make_unique<core::Watchdog>(plan_.cell_deadline_ms);
    }

    if (!missing.empty()) {
        const std::vector<FaultCensus> fresh = runner_.map(
            missing.size(),
            [this, &configs, &missing, journal, &watchdog](std::size_t k) {
                const std::size_t i = missing[k];
                FaultCensus census;
                if (watchdog) {
                    core::Watchdog::Scope scope =
                        watchdog->watch("cell " + std::to_string(i));
                    core::ScopedCellToken cell_token(scope.token());
                    census = plan_.run_cell ? plan_.run_cell(configs[i])
                                            : run_season_census(configs[i]);
                } else {
                    census = plan_.run_cell ? plan_.run_cell(configs[i])
                                            : run_season_census(configs[i]);
                }
                // Checkpoint each cell the moment it finishes: if a later
                // cell crashes the whole process, this one is already safe.
                if (journal) journal->record(i, census);
                return census;
            },
            core::CellRetry{plan_.cell_attempts});
        for (std::size_t k = 0; k < missing.size(); ++k) censuses[missing[k]] = fresh[k];
    }

    CensusResult result;
    result.censuses = std::move(censuses);
    result.summary = summarize(result.censuses);
    if (watchdog) {
        result.harness.hung_cells = watchdog->hung_count();
        result.harness.hung_cell_labels = watchdog->hung_labels();
    }
    return result;
}

CensusResult ParallelCensus::run() const { return run_impl(nullptr); }

CensusResult ParallelCensus::run(SweepJournal& journal) const {
    // Belt and braces: the journal already validated its header against the
    // key it was opened with, but nothing stops a caller opening it with the
    // wrong key.  Recompute the campaign identity and refuse a mismatch.
    const SweepJournalKey want = journal_key();
    const SweepJournalKey& got = journal.key();
    if (got.base_seed != want.base_seed || got.config_hash != want.config_hash ||
        got.cells != want.cells) {
        throw core::StaleJournal("journal '" + journal.path().string() +
                                 "' was opened for a different campaign than this plan");
    }
    return run_impl(&journal);
}

CensusResult run_census(const CensusPlan& plan, std::size_t jobs) {
    return ParallelCensus(plan, jobs).run();
}

}  // namespace zerodeg::experiment
