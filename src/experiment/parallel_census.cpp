#include "experiment/parallel_census.hpp"

#include <utility>

#include "experiment/runner.hpp"

namespace zerodeg::experiment {

FaultCensus run_season_census(const ExperimentConfig& config) {
    ExperimentRunner run(config);
    run.run();
    return take_census(run);
}

ParallelCensus::ParallelCensus(CensusPlan plan, std::size_t jobs)
    : plan_(std::move(plan)), runner_(jobs) {}

CensusResult ParallelCensus::run() const {
    // Configs are built serially up front so make_config need not be
    // thread-safe; only the seasons themselves fan out.
    std::vector<ExperimentConfig> configs;
    configs.reserve(plan_.seeds);
    for (std::size_t i = 0; i < plan_.seeds; ++i) {
        const std::uint64_t seed = plan_.base_seed + i;
        if (plan_.make_config) {
            configs.push_back(plan_.make_config(i, seed));
        } else {
            ExperimentConfig cfg;
            cfg.master_seed = seed;
            configs.push_back(std::move(cfg));
        }
    }

    CensusResult result;
    result.censuses = runner_.map(
        configs.size(), [&configs](std::size_t i) { return run_season_census(configs[i]); });
    result.summary = summarize(result.censuses);
    return result;
}

CensusResult run_census(const CensusPlan& plan, std::size_t jobs) {
    return ParallelCensus(plan, jobs).run();
}

}  // namespace zerodeg::experiment
