#include "experiment/runner.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::experiment {

namespace {

using core::Duration;
using core::LogLevel;
using core::TimePoint;

constexpr double kRecycledAgeHours = 22000.0;  // the fleet was headed for recycling

}  // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)),
      sim_(config_.start),
      fleet_(hardware::make_paper_fleet(config_.master_seed)),
      injector_(config_.faults, config_.master_seed) {
    // Weather: the synthetic SMEAR III station, or a recorded trace.
    if (config_.weather_trace.empty()) {
        station_ = std::make_unique<weather::WeatherStation>(
            sim_, weather::WeatherModel(config_.weather, config_.master_seed), config_.start);
    } else {
        station_ = std::make_unique<weather::WeatherStation>(
            sim_, std::make_unique<weather::TraceSource>(config_.weather_trace),
            config_.start);
    }

    const weather::WeatherSample initial = station_->current();
    tent_ = std::make_unique<thermal::TentModel>(config_.tent, initial.temperature);
    basement_ = std::make_unique<thermal::BasementModel>();

    // Load: one job definition, per-host memory-fault streams.  The
    // scheduler is inert until hosts register, so it is constructed even
    // for traffic seasons (its census stats then read zero).
    load_ = std::make_unique<workload::LoadScheduler>(
        sim_, workload::LoadJob(config_.load, config_.master_seed), config_.memory,
        config_.master_seed);
    if (config_.workload == WorkloadKind::kTraffic) {
        traffic_ = std::make_unique<workload::TrafficEngine>(config_.traffic,
                                                             config_.master_seed, config_.start);
    }

    // Network: a building switch (monitor + basement hosts), and the two
    // whining loaner switches in the tent.
    hardware::SwitchConfig building_cfg;
    building_cfg.ports = 24;
    const std::size_t building = net_.add_switch(hardware::NetworkSwitch(
        "building-switch", building_cfg, core::RngStream{config_.master_seed, "switch.building"}));

    hardware::SwitchConfig defective_cfg;
    defective_cfg.inherent_defect = true;
    defective_cfg.defect_mean_hours_to_failure = config_.switch_defect_mean_hours;
    tent_switch_a_ = net_.add_switch(hardware::NetworkSwitch(
        "tent-switch-a", defective_cfg, core::RngStream{config_.master_seed, "switch.a"}));
    tent_switch_b_ = net_.add_switch(hardware::NetworkSwitch(
        "tent-switch-b", defective_cfg, core::RngStream{config_.master_seed, "switch.b"}));
    net_.uplink(tent_switch_a_, building);
    net_.uplink(tent_switch_b_, building);
    net_.attach({kMonitorNodeId, "monitor"}, building);

    monitoring::CollectorRetryPolicy retry = config_.collector_retry;
    retry.master_seed = config_.master_seed;
    collector_ = std::make_unique<monitoring::Collector>(
        sim_, net_, kMonitorNodeId, core::Duration::minutes(20), retry);

    // Tent instrumentation.
    tent_logger_ = std::make_unique<monitoring::LascarLogger>(
        sim_, *tent_, config_.logger_start, monitoring::LascarConfig{},
        core::RngStream{config_.master_seed, "lascar"});
    for (TimePoint t = config_.logger_start + config_.readout_interval; t < config_.end;
         t += config_.readout_interval) {
        tent_logger_->schedule_readout({t});
    }
    tent_meter_ = std::make_unique<monitoring::TechnolineMeter>(
        sim_, [this] { return fleet_.wall_power(hardware::Placement::kTent); }, config_.start,
        monitoring::PowerMeterConfig{}, core::RngStream{config_.master_seed, "technoline"});

    wire_hosts();

    // Tent modifications on their dates.
    for (const TentModEvent& ev : config_.tent_mods) {
        if (ev.when < config_.start) continue;
        sim_.schedule_at(ev.when, [this, ev] {
            tent_->apply_modification(ev.mod);
            event_log_.record(sim_.now(), LogLevel::kInfo, "tent",
                              std::string("modification applied: ") + thermal::to_string(ev.mod));
        });
    }

    // The integration tick.
    sim_.schedule_every(config_.start, config_.tick, [this] { tick(); }, "experiment-tick");
}

ExperimentRunner::~ExperimentRunner() = default;

void ExperimentRunner::wire_hosts() {
    std::size_t tent_port_toggle = 0;
    for (hardware::HostRecord& rec : fleet_.hosts()) {
        // Network attachment.
        const std::size_t sw = rec.placement == hardware::Placement::kTent
                                   ? (tent_port_toggle++ % 2 == 0 ? tent_switch_a_
                                                                  : tent_switch_b_)
                                   : std::size_t{0};
        net_.attach({rec.server->id(), rec.server->name()}, sw);
        register_host_with_services(rec);
    }
}

void ExperimentRunner::register_host_with_services(hardware::HostRecord& rec) {
    hardware::Server* server = rec.server.get();
    injector_.add_host(server->id(), server->spec().known_unreliable);
    component_faults_.emplace(
        server->id(),
        faults::ComponentFaultProcess(
            server->id(), server->spec().fans,
            static_cast<int>(server->storage().drives().size()), config_.component_faults,
            core::RngStream{config_.master_seed,
                            "faults.components." + std::to_string(server->id())}));

    if (traffic_) {
        // Traffic seasons drive the CPUs from request service instead of
        // the archival churn.  Side membership for cloning is fixed at
        // registration (the split is static; the mid-season replacement
        // registers with its own tent placement).
        workload::TrafficEngine::HostBinding tb;
        tb.host_id = server->name();
        tb.in_tent = rec.placement == hardware::Placement::kTent;
        tb.operational = [server] { return server->operational(); };
        tb.set_load = [server](double busy) { server->set_cpu_load(busy); };
        traffic_->add_host(std::move(tb));
    } else {
        workload::LoadScheduler::HostBinding load_binding;
        load_binding.host_id = server->id();
        load_binding.ecc = server->spec().ecc_memory;
        load_binding.operational = [server] { return server->operational(); };
        load_->add_host(std::move(load_binding), rec.install_date);
    }

    monitoring::Collector::HostBinding coll;
    coll.host_id = server->id();
    coll.reachable = [server] { return server->operational(); };
    coll.pending_bytes = [this, server](TimePoint since) -> std::uint64_t {
        // rsync delta: ~2 KiB of md5sums/logs per completed 10-min cycle
        // plus ~1 KiB of sensor dumps per 20-min sweep interval.
        const Duration gap = sim_.now() - since;
        if (gap.count() <= 0) return 0;
        const auto cycles = static_cast<std::uint64_t>(gap.count() / 600);
        const auto sweeps = static_cast<std::uint64_t>(gap.count() / 1200);
        (void)server;
        return cycles * 2048 + sweeps * 1024;
    };
    collector_->add_host(std::move(coll), rec.install_date);
}

void ExperimentRunner::tick() {
    const TimePoint now = sim_.now();

    // Traffic is simulated over the interval that just elapsed, so the busy
    // fractions it publishes are the cpu loads whose heat this tick's
    // thermal step integrates (utilization -> power -> heat -> hazard).
    // The first tick closes a zero-length interval and is skipped.
    if (traffic_ && now > config_.start) traffic_->advance(now);

    const weather::WeatherSample outside = station_->observe_now();

    // Enclosures: equipment heat then thermal step.
    tent_->set_equipment_power(fleet_.wall_power(hardware::Placement::kTent));
    basement_->set_equipment_power(fleet_.wall_power(hardware::Placement::kBasement));
    tent_->step(config_.tick, outside);
    basement_->step(config_.tick, outside);

    const thermal::EnclosureAir tent_air = tent_->air();
    const thermal::EnclosureAir basement_air = basement_->air();
    tent_truth_temp_.append(now, tent_air.temperature.value());
    tent_truth_rh_.append(now, tent_air.humidity.value());
    basement_temp_.append(now, basement_air.temperature.value());
    tent_envelope_.observe(config_.tick, tent_air.temperature, tent_air.humidity,
                           tent_air.dew_point);

    // Network wear.
    net_.step(config_.tick);
    check_switches();

    // Hosts: the two engines are bit-identical (test_hazard_table proves it
    // per release); the per-object loop is the readable reference, the
    // batched pass the throughput path.
    if (config_.engine == TickEngine::kBatched) {
        host_pass_batched(now, outside, tent_air, basement_air);
    } else {
        host_pass_per_object(now, outside, tent_air, basement_air);
    }
}

void ExperimentRunner::host_pass_per_object(const TimePoint now,
                                            const weather::WeatherSample& outside,
                                            const thermal::EnclosureAir& tent_air,
                                            const thermal::EnclosureAir& basement_air) {
    bool condensation_observed = false;
    for (hardware::HostRecord& rec : fleet_.hosts()) {
        hardware::Server& server = *rec.server;
        if (rec.install_date > now) continue;

        const bool in_tent = rec.placement == hardware::Placement::kTent;
        const thermal::EnclosureAir& air =
            in_tent ? tent_air : basement_air;  // indoors ~ basement conditions

        if (server.state() == hardware::RunState::kPoweredOff) {
            server.power_on(air.temperature);
            // Archive: the averaged archival duty cycle.  Traffic: idle
            // until the engine publishes the first real busy fraction.
            server.set_cpu_load(traffic_ ? 0.0 : 0.3);
            event_log_.record(now, LogLevel::kInfo, server.name(),
                              std::string("installed and powered on (") +
                                  hardware::to_string(rec.placement) + ")");
        }

        // Wind through the opened tent raises effective case airflow.
        double airflow = 1.0;
        if (in_tent && (tent_->has_modification(thermal::TentMod::kBottomOpened) ||
                        tent_->has_modification(thermal::TentMod::kFanInstalled))) {
            airflow = 1.0 + 0.04 * outside.wind.value();
        }
        server.step(config_.tick, air.temperature, airflow);

        if (server.operational()) {
            // Stress-driven system-failure process.
            faults::StressState stress;
            stress.intake = air.temperature;
            stress.humidity = air.humidity;
            stress.age_hours = kRecycledAgeHours + server.uptime_hours();
            const auto last = last_intake_.find(server.id());
            if (last != last_intake_.end()) {
                stress.cycling_rate_k_per_h =
                    std::abs(air.temperature.value() - last->second) /
                    (static_cast<double>(config_.tick.count()) / 3600.0);
            }
            last_intake_[server.id()] = air.temperature.value();
            const auto severity = injector_.advance_host(
                server.id(), config_.tick, stress, now, server.name(), in_tent, fault_log_);
            if (severity) handle_failure(rec, *severity);

            // The lm-sensors anomaly watch (Section 4.2.1).
            if (const auto reading = server.read_cpu_sensor()) {
                if (reading->value() < -100.0) handle_sensor_incident(rec, *reading);
            }

            // Component-level wear (fans, disks, media).
            const auto it_cf = component_faults_.find(server.id());
            if (it_cf != component_faults_.end()) {
                const auto events = it_cf->second.advance(
                    config_.tick, air.temperature, server.hdd_temperature(), air.humidity);
                if (!events.empty()) apply_component_events(rec, events);
            }
        }

        // Condensation is tracked on the first tent host's case surface.
        if (in_tent && !condensation_observed && server.operational()) {
            condensation_.observe(now, server.case_surface_temperature(), tent_air.temperature,
                                  tent_air.humidity);
            condensation_observed = true;
        }
    }
}

void ExperimentRunner::BatchScratch::clear() {
    recs.clear();
    in_tent.clear();
    operational.clear();
    announce.clear();
    intake_c.clear();
    humidity.clear();
    age_hours.clear();
    cycling.clear();
    unreliable.clear();
    hazard.clear();
}

// The SoA fast path: gather per-host stress into contiguous arrays, run the
// shared hazard kernel over them in one sweep, then scatter the results in
// fleet order.  Every arithmetic expression, RNG draw, log append, and
// scheduler call happens in the same order and with the same operands as
// host_pass_per_object — the gather stage touches only per-server state
// (Server has no access to the event log or simulator), and all shared side
// effects (injector RNG, fault/event logs, schedule_at, condensation) are
// sequenced host-by-host in the scatter stage.
void ExperimentRunner::host_pass_batched(const TimePoint now,
                                         const weather::WeatherSample& outside,
                                         const thermal::EnclosureAir& tent_air,
                                         const thermal::EnclosureAir& basement_air) {
    BatchScratch& b = batch_;
    b.clear();

    const bool tent_breezy = tent_->has_modification(thermal::TentMod::kBottomOpened) ||
                             tent_->has_modification(thermal::TentMod::kFanInstalled);
    const double tent_airflow = tent_breezy ? 1.0 + 0.04 * outside.wind.value() : 1.0;
    const double dt_hours = static_cast<double>(config_.tick.count()) / 3600.0;

    // Gather: thermal step + stress capture.  Power-on announcements are
    // deferred to the scatter loop so event-log order matches the reference
    // engine (a mid-season install must not log ahead of an earlier host's
    // same-tick failure records).
    for (hardware::HostRecord& rec : fleet_.hosts()) {
        hardware::Server& server = *rec.server;
        if (rec.install_date > now) continue;

        const bool in_tent = rec.placement == hardware::Placement::kTent;
        const thermal::EnclosureAir& air =
            in_tent ? tent_air : basement_air;  // indoors ~ basement conditions

        bool announce = false;
        if (server.state() == hardware::RunState::kPoweredOff) {
            server.power_on(air.temperature);
            // Archive: the averaged archival duty cycle.  Traffic: idle
            // until the engine publishes the first real busy fraction.
            server.set_cpu_load(traffic_ ? 0.0 : 0.3);
            announce = true;
        }

        server.step(config_.tick, air.temperature, in_tent ? tent_airflow : 1.0);

        const bool operational = server.operational();
        double cycling = 0.0;
        if (operational) {
            const auto last = last_intake_.find(server.id());
            if (last != last_intake_.end()) {
                cycling = std::abs(air.temperature.value() - last->second) /
                          (static_cast<double>(config_.tick.count()) / 3600.0);
            }
            last_intake_[server.id()] = air.temperature.value();
        }

        b.recs.push_back(&rec);
        b.in_tent.push_back(in_tent ? 1 : 0);
        b.operational.push_back(operational ? 1 : 0);
        b.announce.push_back(announce ? 1 : 0);
        b.intake_c.push_back(air.temperature.value());
        b.humidity.push_back(air.humidity.value());
        b.age_hours.push_back(kRecycledAgeHours + server.uptime_hours());
        b.cycling.push_back(cycling);
        b.unreliable.push_back(server.spec().known_unreliable ? 1 : 0);
    }

    // Kernel: one table-backed hazard sweep over the whole fleet.
    const std::size_t n = b.recs.size();
    b.hazard.resize(n);
    if (n > 0) {
        faults::StressSoa soa;
        soa.intake_c = b.intake_c.data();
        soa.humidity = b.humidity.data();
        soa.age_hours = b.age_hours.data();
        soa.cycling_rate_k_per_h = b.cycling.data();
        soa.known_unreliable = b.unreliable.data();
        injector_.model().hazard_per_hour(soa, n, b.hazard.data());
    }

    // Scatter: commit hazards and run the shared-state consequences in
    // fleet order, exactly as the per-object loop interleaves them.
    bool condensation_observed = false;
    for (std::size_t i = 0; i < n; ++i) {
        hardware::HostRecord& rec = *b.recs[i];
        hardware::Server& server = *rec.server;
        const bool in_tent = b.in_tent[i] != 0;
        const thermal::EnclosureAir& air = in_tent ? tent_air : basement_air;

        if (b.announce[i] != 0) {
            event_log_.record(now, LogLevel::kInfo, server.name(),
                              std::string("installed and powered on (") +
                                  hardware::to_string(rec.placement) + ")");
        }

        if (b.operational[i] != 0) {
            // Stress-driven system-failure process (hazard precomputed).
            const auto severity = injector_.commit_host(server.id(), b.hazard[i] * dt_hours,
                                                        now, server.name(), in_tent, fault_log_);
            if (severity) handle_failure(rec, *severity);

            // The lm-sensors anomaly watch (Section 4.2.1).
            if (const auto reading = server.read_cpu_sensor()) {
                if (reading->value() < -100.0) handle_sensor_incident(rec, *reading);
            }

            // Component-level wear (fans, disks, media).
            const auto it_cf = component_faults_.find(server.id());
            if (it_cf != component_faults_.end()) {
                const auto events = it_cf->second.advance(
                    config_.tick, air.temperature, server.hdd_temperature(), air.humidity);
                if (!events.empty()) apply_component_events(rec, events);
            }
        }

        // Condensation is tracked on the first tent host's case surface —
        // operational() re-checked live because a same-tick crash (handled
        // just above) must skip this host, as it does in the reference loop.
        if (in_tent && !condensation_observed && server.operational()) {
            condensation_.observe(now, server.case_surface_temperature(), tent_air.temperature,
                                  tent_air.humidity);
            condensation_observed = true;
        }
    }
}

void ExperimentRunner::handle_failure(hardware::HostRecord& rec,
                                      faults::FaultSeverity severity) {
    hardware::Server* server = rec.server.get();
    const TimePoint now = sim_.now();
    server->crash(faults::to_string(severity));
    event_log_.record(now, LogLevel::kFault, server->name(),
                      std::string("system failure (") + faults::to_string(severity) + ")");

    const TimePoint visit = next_operator_visit(now, config_.operator_hour);
    if (severity == faults::FaultSeverity::kTransient) {
        const int id = server->id();
        sim_.schedule_at(visit, [this, id] {
            hardware::Server* s = fleet_.find(id);
            if (s != nullptr && s->reset()) {
                event_log_.record(sim_.now(), LogLevel::kInfo, s->name(),
                                  "inspected and reset; no cause found; resumed in place");
            }
        });
    } else {
        const int id = server->id();
        sim_.schedule_at(visit, [this, id] {
            hardware::HostRecord* r = fleet_.record(id);
            if (r != nullptr) retire_and_replace(*r);
        });
    }
}

void ExperimentRunner::retire_and_replace(hardware::HostRecord& rec) {
    hardware::Server* server = rec.server.get();
    const TimePoint now = sim_.now();
    const bool was_in_tent = rec.placement == hardware::Placement::kTent;

    // "After this, the host was left to operate in an indoors environment."
    fleet_.set_placement(server->id(), hardware::Placement::kIndoors);
    (void)server->reset();
    event_log_.record(now, LogLevel::kWarning, server->name(),
                      "failed again under Memtest86+; moved indoors permanently");

    if (was_in_tent && !replacement_installed_) {
        replacement_installed_ = true;
        const int failed_id = server->id();
        sim_.schedule_at(now + config_.replacement_lead, [this, failed_id] {
            hardware::Server& repl = fleet_.add_host(
                kReplacementHostId, hardware::Vendor::kB, hardware::Placement::kTent, sim_.now(),
                /*pair_id=*/0, config_.master_seed, /*replaces_id=*/failed_id);
            hardware::HostRecord* rec19 = fleet_.record(kReplacementHostId);
            net_.attach({repl.id(), repl.name()}, tent_switch_a_);
            register_host_with_services(*rec19);
            event_log_.record(sim_.now(), core::LogLevel::kInfo, repl.name(),
                              "replacement host installed in tent for host-" +
                                  std::to_string(failed_id));
        });
    }
}

void ExperimentRunner::handle_sensor_incident(hardware::HostRecord& rec, core::Celsius reading) {
    hardware::Server* server = rec.server.get();
    const int id = server->id();
    if (std::find(sensor_incident_handled_.begin(), sensor_incident_handled_.end(), id) !=
        sensor_incident_handled_.end()) {
        return;
    }
    sensor_incident_handled_.push_back(id);

    const TimePoint now = sim_.now();
    event_log_.record(now, LogLevel::kWarning, server->name(),
                      "lm-sensors reporting clearly erroneous " +
                          core::to_string(reading));
    faults::FaultRecord fr;
    fr.time = now;
    fr.host_id = id;
    fr.source = server->name();
    fr.component = faults::FaultComponent::kSensorChip;
    fr.severity = faults::FaultSeverity::kTransient;
    fr.description = "sensor chip erratic after extreme cold exposure";
    fr.in_tent = rec.placement == hardware::Placement::kTent;
    fault_log_.record(std::move(fr));

    // The operator tries to redetect the chip — which makes it vanish —
    // then risks a warm reboot a week later, which restores it.
    sim_.schedule_at(next_operator_visit(now, config_.operator_hour), [this, id] {
        hardware::Server* s = fleet_.find(id);
        if (s == nullptr) return;
        s->sensor_chip().attempt_redetect();
        event_log_.record(sim_.now(), LogLevel::kWarning, s->name(),
                          "sensor redetect attempted; chip no longer detected");
        sim_.schedule_in(Duration::days(7), [this, id] {
            hardware::Server* host = fleet_.find(id);
            if (host == nullptr) return;
            host->sensor_chip().warm_reboot();
            event_log_.record(sim_.now(), LogLevel::kInfo, host->name(),
                              "warm reboot; sensor chip working again");
        });
    });
}

void ExperimentRunner::apply_component_events(
    hardware::HostRecord& rec, const std::vector<faults::ComponentEvent>& events) {
    hardware::Server& server = *rec.server;
    const TimePoint now = sim_.now();
    const bool in_tent = rec.placement == hardware::Placement::kTent;

    for (const faults::ComponentEvent& ev : events) {
        faults::FaultRecord fr;
        fr.time = now;
        fr.host_id = server.id();
        fr.source = server.name();
        fr.in_tent = in_tent;
        switch (ev.kind) {
            case faults::ComponentEventKind::kFanSeized: {
                auto& fans = server.fans();
                if (ev.component_index >= 0 &&
                    static_cast<std::size_t>(ev.component_index) < fans.size()) {
                    fans[static_cast<std::size_t>(ev.component_index)].seize();
                }
                fr.component = faults::FaultComponent::kFan;
                fr.severity = faults::FaultSeverity::kPermanent;
                fr.description = "case fan #" + std::to_string(ev.component_index) +
                                 " seized (bearing)";
                event_log_.record(now, LogLevel::kWarning, server.name(), fr.description);
                break;
            }
            case faults::ComponentEventKind::kDiskFailed: {
                auto& drives = server.storage().drives();
                if (ev.component_index >= 0 &&
                    static_cast<std::size_t>(ev.component_index) < drives.size()) {
                    drives[static_cast<std::size_t>(ev.component_index)].fail();
                }
                fr.component = faults::FaultComponent::kDisk;
                fr.severity = faults::FaultSeverity::kPermanent;
                fr.description = "drive #" + std::to_string(ev.component_index) + " failed";
                event_log_.record(now, LogLevel::kFault, server.name(), fr.description);
                if (!server.storage().data_available()) {
                    // A vendor-B single drive, or the last leg of an array:
                    // the machine is gone with it.
                    server.crash("storage array lost");
                    event_log_.record(now, LogLevel::kFault, server.name(),
                                      "storage array lost; host down");
                } else if (server.storage().degraded()) {
                    event_log_.record(now, LogLevel::kWarning, server.name(),
                                      std::string("array degraded (") +
                                          hardware::to_string(server.storage().layout()) +
                                          "), continuing");
                }
                break;
            }
            case faults::ComponentEventKind::kDiskMediaError: {
                auto& drives = server.storage().drives();
                if (ev.component_index >= 0 &&
                    static_cast<std::size_t>(ev.component_index) < drives.size()) {
                    drives[static_cast<std::size_t>(ev.component_index)]
                        .smart()
                        .add_pending_sectors(ev.detail);
                }
                fr.component = faults::FaultComponent::kDisk;
                fr.severity = faults::FaultSeverity::kTransient;
                fr.description = "drive #" + std::to_string(ev.component_index) + " grew " +
                                 std::to_string(ev.detail) + " pending sectors";
                event_log_.record(now, LogLevel::kWarning, server.name(), fr.description);
                break;
            }
        }
        fault_log_.record(std::move(fr));
    }
}

void ExperimentRunner::check_switches() {
    for (const std::size_t idx : {tent_switch_a_, tent_switch_b_}) {
        hardware::NetworkSwitch& sw = net_.switch_at(idx);
        if (sw.operational()) continue;
        if (std::find(switch_replacement_pending_.begin(), switch_replacement_pending_.end(),
                      idx) != switch_replacement_pending_.end()) {
            continue;  // operator already on the way
        }
        switch_replacement_pending_.push_back(idx);

        faults::FaultRecord fr;
        fr.time = sim_.now();
        fr.host_id = 0;
        fr.source = sw.name();
        fr.component = faults::FaultComponent::kSwitch;
        fr.severity = faults::FaultSeverity::kPermanent;
        fr.description = "8-port switch failed (defect inherent; unit whined since day one)";
        fr.in_tent = true;
        event_log_.record(fr.time, LogLevel::kFault, fr.source, fr.description);
        fault_log_.record(std::move(fr));

        // The operator swaps in a replacement at the next visit.  The first
        // spare is the third whining unit — which "manifested an identical
        // failure state" under test — so later replacements are healthy.
        sim_.schedule_at(next_operator_visit(sim_.now(), config_.operator_hour), [this, idx] {
            const bool spare_also_defective = spare_switches_used_ == 0;
            ++spare_switches_used_;
            hardware::SwitchConfig cfg;
            cfg.inherent_defect = spare_also_defective;
            cfg.defect_mean_hours_to_failure = config_.switch_defect_mean_hours;
            const std::string new_name =
                spare_also_defective ? "tent-switch-spare (also whining)" : "tent-switch-new";
            net_.replace_switch(
                idx,
                hardware::NetworkSwitch(
                    new_name, cfg,
                    core::RngStream{config_.master_seed,
                                    "switch.spare." + std::to_string(spare_switches_used_)}));
            switch_replacement_pending_.erase(
                std::remove(switch_replacement_pending_.begin(),
                            switch_replacement_pending_.end(), idx),
                switch_replacement_pending_.end());
            event_log_.record(sim_.now(), LogLevel::kInfo, new_name,
                              "installed as replacement");
        });
    }
}

void ExperimentRunner::run_until(core::TimePoint t) { sim_.run_until(t); }

void ExperimentRunner::run() {
    run_until(config_.end);
    condensation_.finish(config_.end);
}

}  // namespace zerodeg::experiment
