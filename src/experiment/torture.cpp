#include "experiment/torture.hpp"

#include <array>
#include <ostream>
#include <sstream>

#include "core/error.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep_journal.hpp"

namespace zerodeg::experiment {

std::string render_census_table(const CensusResult& result, std::uint64_t base_seed) {
    std::ostringstream out;
    for (std::size_t i = 0; i < result.censuses.size(); ++i) {
        const FaultCensus& c = result.censuses[i];
        out << "seed " << base_seed + i << ": " << c.system_failures << " system failure(s), "
            << c.wrong_hashes << " wrong hash(es)";
        // Traffic columns appear only for traffic seasons, keeping archive
        // output byte-identical to earlier releases.
        if (c.requests_completed + c.requests_dropped > 0) {
            out << ", " << c.requests_completed << " request(s) served, "
                << fmt_pct(c.deadline_miss_fraction()) << " deadline misses";
        }
        out << '\n';
    }
    const CensusSummary& s = result.summary;
    out << "\nmean fleet failure rate: " << fmt_pct(s.mean_fleet_failure_rate)
        << " (paper 5.6%, Intel 4.46%)\n"
        << "mean wrong hashes/season: " << fmt(s.mean_wrong_hashes, 1) << " over "
        << fmt(s.mean_runs, 0) << " runs\n"
        << "seasons with sensor incident: " << fmt_pct(s.frac_runs_with_sensor_incident, 0)
        << '\n';
    if (s.mean_requests_completed > 0.0) {
        out << "mean requests served/season: " << fmt(s.mean_requests_completed, 0)
            << ", mean deadline-miss fraction: " << fmt_pct(s.mean_deadline_miss_fraction)
            << '\n';
    }
    // Harness-level incidents (hung nodes the watchdog rebooted) are part of
    // the printed record, like the paper's operator interventions — but the
    // line only appears when there were any, keeping fault-free output
    // byte-identical to earlier releases.
    if (result.harness.hung_cells > 0) {
        out << "harness hung nodes: " << result.harness.hung_cells
            << " cancelled by watchdog (";
        for (std::size_t i = 0; i < result.harness.hung_cell_labels.size(); ++i) {
            if (i > 0) out << ", ";
            out << result.harness.hung_cell_labels[i];
        }
        out << ")\n";
    }
    return out.str();
}

FaultCensus synthetic_census(const ExperimentConfig& config) {
    // Everything derives from one named stream of the cell's master seed, so
    // a synthetic cell is as deterministic as a simulated season: same seed,
    // same census, no matter which thread or attempt produces it.
    core::RngStream s(config.master_seed, "torture.synthetic-cell");
    FaultCensus c;
    c.tent_hosts = 18;
    c.basement_hosts = 18;
    c.tent_hosts_failed = static_cast<std::size_t>(s.uniform_int(0, 3));
    c.basement_hosts_failed = static_cast<std::size_t>(s.uniform_int(0, 2));
    c.transient_failures = static_cast<std::size_t>(s.uniform_int(0, 4));
    c.permanent_failures = static_cast<std::size_t>(s.uniform_int(0, 1));
    c.system_failures = c.transient_failures + c.permanent_failures;
    c.sensor_incidents = static_cast<std::size_t>(s.uniform_int(0, 1));
    c.switch_failures = static_cast<std::size_t>(s.uniform_int(0, 1));
    c.fan_faults = static_cast<std::size_t>(s.uniform_int(0, 2));
    c.disk_faults = static_cast<std::size_t>(s.uniform_int(0, 2));
    c.load_runs = static_cast<std::uint64_t>(s.uniform_int(5000, 9000));
    c.wrong_hashes = static_cast<std::uint64_t>(s.uniform_int(0, 20));
    c.wrong_hashes_tent = c.wrong_hashes / 2;
    c.wrong_hashes_basement = c.wrong_hashes - c.wrong_hashes_tent;
    c.page_ops = static_cast<std::uint64_t>(s.uniform_int(1'000'000, 9'000'000));
    c.page_ops_non_ecc = c.page_ops / 3;
    return c;
}

namespace {

void scrub_journal(const std::filesystem::path& journal_path) {
    std::filesystem::path tmp = journal_path;
    tmp += ".tmp";
    core::real_fs().remove(journal_path);
    core::real_fs().remove(tmp);
}

}  // namespace

TortureReport torture_campaign(const CensusPlan& plan, std::size_t jobs,
                               const std::filesystem::path& journal_path,
                               const TortureOptions& options, std::ostream& log) {
    TortureReport report;
    const ParallelCensus campaign(plan, jobs);
    const SweepJournalKey key = campaign.journal_key();

    // Reference: the uninterrupted run every crashed-and-resumed pass must
    // reproduce byte for byte.
    const std::string want = render_census_table(campaign.run(), plan.base_seed);

    // Count the write points of one journaled run: each is a crash point.
    {
        scrub_journal(journal_path);
        core::FaultyFs counter(core::FaultPlan{});
        SweepJournal journal(journal_path, key, false, &counter);
        const std::string got = render_census_table(campaign.run(journal), plan.base_seed);
        if (got != want) {
            // A journaled clean run must already match; anything else would
            // make every crash point "fail" for an unrelated reason.
            throw core::Error("torture: journaled uninterrupted run differs from reference");
        }
        report.io_ops = counter.op_count();
    }

    const std::array<core::CrashPhase, 4> phases = {
        core::CrashPhase::kBeforeOp, core::CrashPhase::kTornWrite, core::CrashPhase::kAfterOp,
        core::CrashPhase::kTornTail};
    const std::size_t phase_count = options.include_torn_tail ? 4 : 3;

    for (std::size_t op = 0; op < report.io_ops; ++op) {
        for (std::size_t p = 0; p < phase_count; ++p) {
            scrub_journal(journal_path);
            core::FaultPlan fault_plan;
            fault_plan.seed = 0x70e7 + op;  // varies the torn-byte choices per op
            fault_plan.crash_at_op = op;
            fault_plan.crash_phase = phases[p];
            core::FaultyFs faulty(fault_plan);

            bool crashed = false;
            try {
                SweepJournal journal(journal_path, key, false, &faulty);
                (void)campaign.run(journal);
            } catch (const core::SimulatedCrash&) {
                crashed = true;
            }
            ++report.crash_points;
            if (options.verbose) {
                log << "torture: op " << op << " phase " << core::to_string(phases[p])
                    << (crashed ? " crashed" : " completed before the crash point") << '\n';
            }

            // The survivor's path: open whatever the dead process left on
            // disk and finish the campaign against the real filesystem.
            std::string got;
            std::size_t repairs = 0;
            try {
                SweepJournal journal(journal_path, key, true);
                repairs = journal.recovered_tail_records();
                got = render_census_table(campaign.run(journal), plan.base_seed);
            } catch (const core::CorruptData&) {
                // Damage beyond the torn-tail contract (e.g. the tear bit
                // into the header).  The documented operator action — and
                // the CLI's exit-1 message — is: delete the journal, rerun.
                ++report.journal_resets;
                scrub_journal(journal_path);
                SweepJournal journal(journal_path, key, false);
                got = render_census_table(campaign.run(journal), plan.base_seed);
            }
            ++report.resumes;
            report.tail_repairs += repairs;
            if (got != want) {
                ++report.mismatches;
                log << "torture MISMATCH: crash at op " << op << " phase "
                    << core::to_string(phases[p]) << " (jobs " << jobs
                    << "): resumed output differs from uninterrupted run\n";
            }
        }
    }

    scrub_journal(journal_path);
    return report;
}

}  // namespace zerodeg::experiment
