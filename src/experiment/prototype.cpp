#include "experiment/prototype.hpp"

#include <algorithm>

#include "core/event_queue.hpp"
#include "core/stats.hpp"
#include "hardware/server.hpp"
#include "thermal/enclosure.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg::experiment {

PrototypeResult run_prototype(PrototypeConfig config) {
    weather::WeatherConfig wx = weather::helsinki_2010_config();
    if (config.calm_weekend) {
        wx.synoptic_sigma = core::Celsius{0.8};
        wx.jitter_sigma = core::Celsius{0.3};
        wx.diurnal_amplitude_winter = core::Celsius{0.8};
        wx.cold_snaps.clear();  // the deep front came the following week
    }
    weather::WeatherModel model(wx, config.master_seed);
    thermal::PrototypeBoxModel boxes(model.deterministic_temperature(config.start));
    hardware::Server pc(0, "prototype-pc", hardware::vendor_a_spec(), config.master_seed);

    PrototypeResult result;
    result.outside_series.set_name("outside_temp_degC");
    result.cpu_series.set_name("cpu_temp_degC");

    core::RunningStats outside_stats;
    core::Celsius box_min{1000.0};
    core::Celsius cpu_min{1000.0};

    bool first = true;
    for (core::TimePoint t = config.start; t <= config.end; t += config.tick) {
        const weather::WeatherSample outside = model.advance_to(t);
        boxes.set_equipment_power(pc.wall_power());
        boxes.step(config.tick, outside);
        const thermal::EnclosureAir air = boxes.air();

        if (first) {
            pc.power_on(air.temperature);
            pc.set_cpu_load(0.1);  // a mostly idle generic PC
            first = false;
        }
        pc.step(config.tick, air.temperature);

        outside_stats.add(outside.temperature.value());
        result.outside_series.append(t, outside.temperature.value());
        box_min = std::min(box_min, air.temperature);

        if (const auto reading = pc.read_cpu_sensor()) {
            cpu_min = std::min(cpu_min, *reading);
            result.cpu_series.append(t, reading->value());
        }
    }

    result.outside_min = core::Celsius{outside_stats.min()};
    result.outside_mean = core::Celsius{outside_stats.mean()};
    result.box_min = box_min;
    result.cpu_min_reported = cpu_min;
    result.survived = pc.operational();
    result.smart_ok = true;
    for (const hardware::HardDrive& d : pc.storage().drives()) {
        result.smart_ok = result.smart_ok && d.smart().overall_health_ok();
    }
    return result;
}

}  // namespace zerodeg::experiment
