// The prototype phase (Section 3.1): one generic PC between two plastic
// boxes on the terrace, Friday Feb 12 to Monday Feb 15, watched through
// S.M.A.R.T. and lm-sensors.  The local weather unit recorded a minimum of
// -10.2 degC and a mean of -9.2 degC; lm-sensors showed the CPU as cold as
// -4 degC; the machine survived the whole weekend.
#pragma once

#include <cstdint>

#include "core/sim_time.hpp"
#include "core/timeseries.hpp"
#include "core/units.hpp"

namespace zerodeg::experiment {

struct PrototypeConfig {
    std::uint64_t master_seed = 20100211;
    core::TimePoint start = core::TimePoint::from_civil({2010, 2, 12, 16, 0, 0});
    core::TimePoint end = core::TimePoint::from_civil({2010, 2, 15, 10, 0, 0});
    core::Duration tick = core::Duration::minutes(10);
    /// The paper's weekend was meteorologically calm (a 1 degC gap between
    /// minimum -10.2 and mean -9.2 over three days); the prototype's weather
    /// uses damped synoptic/diurnal variability to reproduce that regime.
    bool calm_weekend = true;
};

struct PrototypeResult {
    core::Celsius outside_min{0.0};
    core::Celsius outside_mean{0.0};
    core::Celsius box_min{0.0};
    core::Celsius cpu_min_reported{0.0};  ///< via lm-sensors, noisy
    bool survived = false;
    bool smart_ok = false;
    core::TimeSeries outside_series;
    core::TimeSeries cpu_series;
};

/// Run the prototype weekend.
[[nodiscard]] PrototypeResult run_prototype(PrototypeConfig config = {});

}  // namespace zerodeg::experiment
