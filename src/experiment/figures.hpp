// Figure-data export: dump a finished run's series as CSV so the paper's
// figures can be replotted with any external tool (gnuplot, matplotlib, R).
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"

namespace zerodeg::experiment {

/// Files written by export_figure_data, relative to `directory`.
struct FigureFiles {
    std::string outside_temperature = "fig3_outside_temp.csv";
    std::string tent_temperature = "fig3_tent_temp.csv";      ///< outliers removed
    std::string outside_humidity = "fig4_outside_rh.csv";
    std::string tent_humidity = "fig4_tent_rh.csv";           ///< outliers removed
    std::string tent_power = "tent_power_w.csv";
    std::string events = "events.log";
    std::string fault_log = "faults.log";
};

/// Write all figure series and logs of a finished run into `directory`
/// (which must exist).  Returns the list of file paths written, in a fixed
/// order independent of `jobs`.  Each output file is an independent job;
/// `jobs > 1` writes them concurrently on a worker pool (`jobs == 0` means
/// one worker per hardware thread), with byte-identical file contents.
/// Throws IoError if any file cannot be created.
std::vector<std::string> export_figure_data(const ExperimentRunner& run,
                                            const std::string& directory,
                                            const FigureFiles& files = FigureFiles(),
                                            std::size_t jobs = 1);

}  // namespace zerodeg::experiment
