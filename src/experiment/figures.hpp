// Figure-data export: dump a finished run's series as CSV so the paper's
// figures can be replotted with any external tool (gnuplot, matplotlib, R).
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"

namespace zerodeg::core {
class FileSystem;
}  // namespace zerodeg::core

namespace zerodeg::experiment {

/// Files written by export_figure_data, relative to `directory`.
struct FigureFiles {
    std::string outside_temperature = "fig3_outside_temp.csv";
    std::string tent_temperature = "fig3_tent_temp.csv";      ///< outliers removed
    std::string outside_humidity = "fig4_outside_rh.csv";
    std::string tent_humidity = "fig4_tent_rh.csv";           ///< outliers removed
    std::string tent_power = "tent_power_w.csv";
    std::string events = "events.log";
    std::string fault_log = "faults.log";
    std::string collection = "collection.csv";  ///< collector telemetry + attempt log
    /// Per-tick latency/SLO aggregates; written only for traffic seasons
    /// (run.has_traffic()), so archive exports keep their exact file set.
    std::string traffic_slo = "traffic_slo.csv";
};

/// Write all figure series and logs of a finished run into `directory`
/// (which must exist).  Returns the list of file paths written, in a fixed
/// order independent of `jobs`.  Each output file is an independent job;
/// `jobs > 1` writes them concurrently on a worker pool (`jobs == 0` means
/// one worker per hardware thread), with byte-identical file contents.
///
/// Every file is rendered in memory and persisted through the core::io
/// FileSystem seam (`fs`, nullptr = core::real_fs()): short writes and
/// ENOSPC are detected with dropped-byte accounting, transient faults are
/// absorbed by a bounded retry per file, and the torture harness can crash
/// the export at any chosen write.  Throws IoError if a file cannot be
/// created, TransientError when injected faults outlast the retry budget.
std::vector<std::string> export_figure_data(const ExperimentRunner& run,
                                            const std::string& directory,
                                            const FigureFiles& files = FigureFiles(),
                                            std::size_t jobs = 1,
                                            core::FileSystem* fs = nullptr);

}  // namespace zerodeg::experiment
