// Crash-safe checkpointing for Monte-Carlo sweeps.
//
// A SweepJournal records each finished cell of a census campaign as it
// completes, so a killed sweep can resume without redoing the cells that
// already ran.  Because a FaultCensus is all integers and cells are keyed by
// seed index, a resumed campaign folds the exact same integers in the exact
// same order as an uninterrupted one — byte-identical output, the property
// tests/test_sweep_journal.cpp pins for --jobs in {1, 2, 8}.
//
// The journal binds itself to its campaign: the header records the base
// seed, a fingerprint of every cell's config (experiment::fingerprint), and
// the cell count.  Resuming against a journal whose identity differs throws
// core::StaleJournal — a checkpoint from a different campaign is rejected,
// never silently reused.  Each cell record also carries its own checksum, so
// torn or hand-edited files fail loudly as CorruptData.
//
// Durability model: the whole journal is rewritten to `<path>.tmp` and
// renamed over `<path>` on every record.  rename(2) is atomic on POSIX, so a
// crash at any instant leaves either the previous complete journal or the
// new complete journal on disk — never a half-written one.  Campaign cells
// run for minutes; a full rewrite of a few-KB text file per cell is noise.
//
// All disk access goes through the core::io FileSystem seam, so the torture
// harness (tools/zerodeg_torture) can crash a campaign at every single write
// point and inject short writes / ENOSPC / failed renames; transient faults
// are absorbed by a bounded deterministic retry of the tmp+rename sequence.
// One corruption case is recoverable: a *torn tail record* (the checksum of
// the final record line fails, i.e. a crash tore the last append).  That
// record is skipped with a warning on stderr and truncated off the file —
// the cell is simply re-simulated — while damage anywhere else, and a
// header naming a different campaign (StaleJournal), still fail loudly.
//
// Besides `cell` records a journal may carry `poison` records: cells the
// distributed supervisor quarantined after their lease expired under too
// many distinct workers.  A poison record holds a slot (so the campaign can
// resolve without wedging) but never data; a real cell record arriving later
// (e.g. from a returning zombie worker) replaces the poison entry, keeping
// the file byte-identical to a healthy campaign's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>

#include "experiment/census.hpp"

namespace zerodeg::core {
class FileSystem;
}  // namespace zerodeg::core

namespace zerodeg::experiment {

/// The identity a journal must match to be resumed against a campaign.
struct SweepJournalKey {
    std::uint64_t base_seed = 0;
    std::uint64_t config_hash = 0;  ///< combined fingerprint of every cell's config
    std::size_t cells = 0;

    [[nodiscard]] bool operator==(const SweepJournalKey& other) const = default;
};

/// One parsed cell record — the unit both the journal file and the shard
/// protocol's CELL frames traffic in.
struct CellRecord {
    std::size_t index = 0;
    FaultCensus census;
};

/// Why a cell sits in quarantine instead of holding data: how many distinct
/// workers lost their lease over it, and the supervisor's one-line reason.
struct QuarantineRecord {
    std::size_t attempts = 0;
    std::string reason;
};

/// "cell <index> <f1> ... <f21> <fnv1a-hex16>" — one complete, checksummed
/// cell-record line.  Shared verbatim between the journal file and the shard
/// protocol (experiment/shard_protocol.hpp), so a cell streamed from a worker
/// is bit-for-bit the journal record the coordinator persists.
[[nodiscard]] std::string encode_cell_record(std::size_t index, const FaultCensus& census);

/// Parse and verify one cell-record line.  Throws core::CorruptData when the
/// checksum is missing, unparseable or wrong, core::ParseError on grammar
/// damage inside a checksum-verified payload, and core::CorruptData when
/// `cells_limit` > 0 and the index is not below it.
[[nodiscard]] CellRecord decode_cell_record(std::string_view line, std::size_t cells_limit = 0);

class SweepJournal {
public:
    /// Open the journal at `path` for the campaign identified by `key`.
    /// With `resume` set, an existing file is loaded and validated: a wrong
    /// magic line or a failed record checksum throws CorruptData, a header
    /// that names a different campaign throws StaleJournal — except that a
    /// damaged *final* record (torn tail append) is skipped with a warning
    /// and truncated off the file instead of rejecting the journal.
    /// Without `resume` (or when no file exists) the journal starts empty
    /// and the file is (re)created with just the header.  All disk access
    /// goes through `fs` (nullptr = core::real_fs()).
    SweepJournal(std::filesystem::path path, SweepJournalKey key, bool resume = false,
                 core::FileSystem* fs = nullptr);

    SweepJournal(const SweepJournal&) = delete;
    SweepJournal& operator=(const SweepJournal&) = delete;

    /// Persist one finished cell.  Thread-safe: workers record cells as they
    /// complete, in any order.  The file on disk is atomically replaced
    /// before record() returns, so a crash immediately after still resumes
    /// past this cell.
    void record(std::size_t index, const FaultCensus& census);

    /// Quarantine a poisoned cell: persist a `poison` record holding its
    /// slot.  A later record() for the same index replaces the quarantine
    /// with real data (a zombie worker's late delivery heals the journal);
    /// quarantining a cell that already holds data is a no-op.  Thread-safe
    /// like record().  `reason` must be a single line.
    void quarantine(std::size_t index, std::size_t attempts, const std::string& reason);

    /// The recorded census for `index`, or nullptr if that cell has not
    /// completed.  Call from the coordinating thread before the fan-out
    /// starts — not concurrently with record().
    [[nodiscard]] const FaultCensus* find(std::size_t index) const;

    [[nodiscard]] std::size_t completed() const { return cells_.size(); }
    [[nodiscard]] bool complete() const { return cells_.size() == key_.cells; }

    /// Quarantined cells, by index.  Disjoint from the completed cells by
    /// construction.  Read from the coordinating thread.
    [[nodiscard]] const std::map<std::size_t, QuarantineRecord>& quarantined() const {
        return quarantined_;
    }

    /// Every cell accounted for — completed or quarantined.  A resolved but
    /// incomplete campaign has holes and must be reported loudly.
    [[nodiscard]] bool resolved() const {
        return cells_.size() + quarantined_.size() == key_.cells;
    }
    [[nodiscard]] const SweepJournalKey& key() const { return key_; }
    [[nodiscard]] const std::filesystem::path& path() const { return path_; }

    /// Torn tail records dropped (and truncated off the file) during load.
    [[nodiscard]] std::size_t recovered_tail_records() const { return recovered_tail_; }

    /// Transient write/rename faults absorbed by the bounded retry loop so
    /// far (only ever non-zero under fault injection or a genuinely flaky
    /// disk).  Read after the campaign — not concurrently with record().
    [[nodiscard]] int io_retries() const { return io_retries_; }

private:
    void load();           ///< parse + validate an existing file
    void rewrite() const;  ///< atomic tmp-write + rename; caller holds mutex_

    std::filesystem::path path_;
    SweepJournalKey key_;
    core::FileSystem* fs_;
    std::map<std::size_t, FaultCensus> cells_;  ///< ordered: file stays in index order
    std::map<std::size_t, QuarantineRecord> quarantined_;  ///< poisoned cells, no data
    std::size_t recovered_tail_ = 0;
    mutable int io_retries_ = 0;
    mutable std::mutex mutex_;
};

}  // namespace zerodeg::experiment
