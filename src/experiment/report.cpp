#include "experiment/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "core/error.hpp"

namespace zerodeg::experiment {

std::string fmt(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

std::string fmt_pct(double fraction, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

TablePrinter::TablePrinter(std::ostream& out, std::vector<std::string> headers,
                           std::vector<int> widths)
    : out_(out), headers_(std::move(headers)), widths_(std::move(widths)) {
    if (headers_.size() != widths_.size()) {
        throw core::InvalidArgument("TablePrinter: headers/widths mismatch");
    }
    row(headers_);
    rule();
}

void TablePrinter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths_.size(); ++i) {
        const std::string cell = i < cells.size() ? cells[i] : "";
        char buf[256];
        std::snprintf(buf, sizeof buf, "%-*s", widths_[i], cell.c_str());
        out_ << buf << (i + 1 < widths_.size() ? "  " : "");
    }
    out_ << '\n';
}

void TablePrinter::rule() {
    for (std::size_t i = 0; i < widths_.size(); ++i) {
        out_ << std::string(static_cast<std::size_t>(widths_[i]), '-')
             << (i + 1 < widths_.size() ? "  " : "");
    }
    out_ << '\n';
}

void print_comparison(std::ostream& out, const std::string& title,
                      const std::vector<ComparisonRow>& rows) {
    out << "\n== " << title << " ==\n";
    TablePrinter table(out, {"quantity", "paper", "this repro", "note"}, {44, 20, 20, 40});
    for (const ComparisonRow& r : rows) {
        table.row({r.quantity, r.paper, r.measured, r.note});
    }
}

void ascii_plot(std::ostream& out, const core::TimeSeries& a, const core::TimeSeries* b,
                int width, int height) {
    if (a.empty()) {
        out << "(no data)\n";
        return;
    }
    core::TimePoint from = a.front().time;
    core::TimePoint to = a.back().time;
    double lo = a.stats().min;
    double hi = a.stats().max;
    if (b != nullptr && !b->empty()) {
        from = std::min(from, b->front().time);
        to = std::max(to, b->back().time);
        lo = std::min(lo, b->stats().min);
        hi = std::max(hi, b->stats().max);
    }
    if (hi <= lo) hi = lo + 1.0;

    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
    const auto plot_series = [&](const core::TimeSeries& s, char mark) {
        const double span = static_cast<double>((to - from).count());
        for (int x = 0; x < width; ++x) {
            const core::TimePoint t =
                from + core::Duration{static_cast<std::int64_t>(span * x / (width - 1))};
            const auto v = s.interpolate(t);
            if (!v) continue;
            const int y = static_cast<int>(std::lround((hi - *v) / (hi - lo) * (height - 1)));
            if (y >= 0 && y < height) {
                grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = mark;
            }
        }
    };
    plot_series(a, '*');
    if (b != nullptr) plot_series(*b, 'o');

    char label[32];
    std::snprintf(label, sizeof label, "%8.1f |", hi);
    out << label << grid.front() << '\n';
    for (int y = 1; y + 1 < height; ++y) {
        out << "         |" << grid[static_cast<std::size_t>(y)] << '\n';
    }
    std::snprintf(label, sizeof label, "%8.1f |", lo);
    out << label << grid.back() << '\n';
    out << "          " << from.date_string() << std::string(
               static_cast<std::size_t>(std::max(0, width - 20)), ' ')
        << to.date_string() << '\n';
    out << "          legend: * = " << a.name();
    if (b != nullptr) out << ", o = " << b->name();
    out << '\n';
}

}  // namespace zerodeg::experiment
