// Crash-consistency torture for checkpointed sweeps.
//
// The contract under test is PR 2's headline claim: a campaign killed at
// *any* instant resumes from its journal to output byte-identical to an
// uninterrupted run, for any --jobs.  torture_campaign() proves it
// exhaustively rather than by spot checks: it counts the I/O operations of
// one journaled run, then replays the campaign once per (operation, crash
// phase) pair under a FaultyFs that kills the "process" exactly there —
// before the op, mid-write (torn prefix), after the op, and after a rename
// with torn tail bytes (the page-cache-never-flushed case).  Each death is
// followed by a resume against the real filesystem and a byte-compare of
// the rendered census tables.
//
// The engine is a library so both `zerodeg census --torture` (torture the
// campaign you were about to run) and tools/zerodeg_torture (standalone
// harness with fast synthetic cells) share one implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>

#include "experiment/parallel_census.hpp"

namespace zerodeg::experiment {

struct TortureOptions {
    std::size_t jobs = 1;
    bool include_torn_tail = true;  ///< also exercise the post-rename torn-tail phase
    bool verbose = false;           ///< log every crash point, not just failures
};

struct TortureReport {
    std::size_t io_ops = 0;         ///< write points of one uninterrupted journaled run
    std::size_t crash_points = 0;   ///< (op, phase) pairs exercised
    std::size_t resumes = 0;        ///< successful resume-and-finish passes
    std::size_t tail_repairs = 0;   ///< resumes that dropped a torn tail record
    std::size_t journal_resets = 0; ///< resumes that found damage beyond the tail
                                    ///< contract (deleted the journal, restarted)
    std::size_t mismatches = 0;     ///< resumed output differed from the reference

    [[nodiscard]] bool passed() const { return mismatches == 0 && crash_points > 0; }
};

/// The census tables exactly as `zerodeg census` prints them (seed lines +
/// summary + harness incidents).  The torture byte-comparison runs on this
/// render, so "byte-identical" here means byte-identical CLI output.
[[nodiscard]] std::string render_census_table(const CensusResult& result,
                                              std::uint64_t base_seed);

/// A deterministic stand-in for run_season_census: a census derived purely
/// from the config's master seed via a named RNG stream, no simulation.
/// Lets the torture harness exercise every journal code path in
/// milliseconds; `zerodeg census --torture` uses real seasons instead.
[[nodiscard]] FaultCensus synthetic_census(const ExperimentConfig& config);

/// Crash `plan`'s campaign at every journal write point (times every crash
/// phase), resume each time, and compare against an uninterrupted run.
/// `journal_path` is scratch: it is deleted and recreated per crash point.
/// Progress and failures go to `log`.
[[nodiscard]] TortureReport torture_campaign(const CensusPlan& plan, std::size_t jobs,
                                             const std::filesystem::path& journal_path,
                                             const TortureOptions& options, std::ostream& log);

}  // namespace zerodeg::experiment
