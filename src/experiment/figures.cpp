#include "experiment/figures.hpp"

#include <functional>
#include <sstream>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/io.hpp"
#include "experiment/parallel_census.hpp"
#include "monitoring/outlier_filter.hpp"
#include "monitoring/telemetry_io.hpp"
#include "workload/slo.hpp"

namespace zerodeg::experiment {

namespace {

std::string render_series(const core::TimeSeries& series) {
    std::ostringstream out;
    core::write_series_csv(out, series);
    return out.str();
}

}  // namespace

std::vector<std::string> export_figure_data(const ExperimentRunner& run,
                                            const std::string& directory,
                                            const FigureFiles& files, std::size_t jobs,
                                            core::FileSystem* fs) {
    core::FileSystem& disk = fs ? *fs : core::real_fs();

    // One job per output file: render the content in memory, then persist it
    // through the io seam in a single durable write (bounded transient-fault
    // retry per file).  Jobs only read the (finished) run and write their
    // own file, so they can fan out across a pool; the returned path list
    // keeps this fixed order no matter how the writes interleave.
    struct ExportJob {
        std::string path;
        std::function<std::string()> render;
    };
    std::vector<ExportJob> exports;

    exports.push_back({directory + "/" + files.outside_temperature,
                       [&run] { return render_series(run.station().temperature_series()); }});
    exports.push_back({directory + "/" + files.outside_humidity,
                       [&run] { return render_series(run.station().humidity_series()); }});
    // Tent series get the paper's outlier-removal treatment.
    exports.push_back({directory + "/" + files.tent_temperature, [&run] {
                           core::TimeSeries tent_temp = run.tent_logger().temperature_series();
                           (void)monitoring::remove_readout_outliers(tent_temp,
                                                                     run.tent_logger().readouts());
                           return render_series(tent_temp);
                       }});
    exports.push_back({directory + "/" + files.tent_humidity, [&run] {
                           core::TimeSeries tent_rh = run.tent_logger().humidity_series();
                           (void)monitoring::remove_readout_outliers(tent_rh,
                                                                     run.tent_logger().readouts());
                           return render_series(tent_rh);
                       }});
    exports.push_back({directory + "/" + files.tent_power,
                       [&run] { return render_series(run.tent_meter().power_series()); }});
    exports.push_back({directory + "/" + files.events, [&run] {
                           std::ostringstream out;
                           run.event_log().print(out);
                           return out.str();
                       }});
    exports.push_back({directory + "/" + files.fault_log, [&run] {
                           std::ostringstream out;
                           for (const faults::FaultRecord& r : run.fault_log().records()) {
                               out << r.time.to_string() << '\t' << r.source << '\t'
                                   << faults::to_string(r.component) << '\t'
                                   << faults::to_string(r.severity) << '\t'
                                   << (r.in_tent ? "tent" : "basement") << '\t' << r.description
                                   << '\n';
                           }
                           return out.str();
                       }});
    exports.push_back({directory + "/" + files.collection, [&run] {
                           return monitoring::render_collection_csv(run.collector());
                       }});
    if (run.has_traffic()) {
        exports.push_back({directory + "/" + files.traffic_slo, [&run] {
                               return workload::render_slo_csv(run.traffic().slo());
                           }});
    }

    const SweepRunner runner(jobs);
    (void)runner.map(exports.size(), [&exports, &disk](std::size_t i) {
        (void)core::write_file_durable(disk, exports[i].path, exports[i].render(),
                                       core::IoRetryPolicy{}, "export_figure_data");
        return 0;  // map wants a value; the artifact is the file
    });

    std::vector<std::string> written;
    written.reserve(exports.size());
    for (const ExportJob& job : exports) written.push_back(job.path);
    return written;
}

}  // namespace zerodeg::experiment
