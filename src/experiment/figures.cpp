#include "experiment/figures.hpp"

#include <fstream>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "monitoring/outlier_filter.hpp"

namespace zerodeg::experiment {

namespace {

std::string write_series(const std::string& directory, const std::string& file,
                         const core::TimeSeries& series) {
    const std::string path = directory + "/" + file;
    std::ofstream out(path);
    if (!out) throw core::IoError("export_figure_data: cannot create " + path);
    core::write_series_csv(out, series);
    return path;
}

}  // namespace

std::vector<std::string> export_figure_data(const ExperimentRunner& run,
                                            const std::string& directory,
                                            const FigureFiles& files) {
    std::vector<std::string> written;

    written.push_back(
        write_series(directory, files.outside_temperature, run.station().temperature_series()));
    written.push_back(
        write_series(directory, files.outside_humidity, run.station().humidity_series()));

    // Tent series get the paper's outlier-removal treatment.
    core::TimeSeries tent_temp = run.tent_logger().temperature_series();
    core::TimeSeries tent_rh = run.tent_logger().humidity_series();
    (void)monitoring::remove_readout_outliers(tent_temp, run.tent_logger().readouts());
    (void)monitoring::remove_readout_outliers(tent_rh, run.tent_logger().readouts());
    written.push_back(write_series(directory, files.tent_temperature, tent_temp));
    written.push_back(write_series(directory, files.tent_humidity, tent_rh));

    written.push_back(
        write_series(directory, files.tent_power, run.tent_meter().power_series()));

    {
        const std::string path = directory + "/" + files.events;
        std::ofstream out(path);
        if (!out) throw core::IoError("export_figure_data: cannot create " + path);
        run.event_log().print(out);
        written.push_back(path);
    }
    {
        const std::string path = directory + "/" + files.fault_log;
        std::ofstream out(path);
        if (!out) throw core::IoError("export_figure_data: cannot create " + path);
        for (const faults::FaultRecord& r : run.fault_log().records()) {
            out << r.time.to_string() << '\t' << r.source << '\t'
                << faults::to_string(r.component) << '\t' << faults::to_string(r.severity)
                << '\t' << (r.in_tent ? "tent" : "basement") << '\t' << r.description << '\n';
        }
        written.push_back(path);
    }
    return written;
}

}  // namespace zerodeg::experiment
