#include "experiment/figures.hpp"

#include <fstream>
#include <functional>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "experiment/parallel_census.hpp"
#include "monitoring/outlier_filter.hpp"

namespace zerodeg::experiment {

namespace {

void write_series(const std::string& path, const core::TimeSeries& series) {
    std::ofstream out(path);
    if (!out) throw core::IoError("export_figure_data: cannot create " + path);
    core::write_series_csv(out, series);
}

}  // namespace

std::vector<std::string> export_figure_data(const ExperimentRunner& run,
                                            const std::string& directory,
                                            const FigureFiles& files, std::size_t jobs) {
    // One job per output file.  Jobs only read the (finished) run and write
    // their own file, so they can fan out across a pool; the returned path
    // list keeps this fixed order no matter how the writes interleave.
    struct ExportJob {
        std::string path;
        std::function<void(const std::string&)> write;
    };
    std::vector<ExportJob> exports;

    exports.push_back({directory + "/" + files.outside_temperature, [&run](const std::string& p) {
                           write_series(p, run.station().temperature_series());
                       }});
    exports.push_back({directory + "/" + files.outside_humidity, [&run](const std::string& p) {
                           write_series(p, run.station().humidity_series());
                       }});
    // Tent series get the paper's outlier-removal treatment.
    exports.push_back({directory + "/" + files.tent_temperature, [&run](const std::string& p) {
                           core::TimeSeries tent_temp = run.tent_logger().temperature_series();
                           (void)monitoring::remove_readout_outliers(tent_temp,
                                                                     run.tent_logger().readouts());
                           write_series(p, tent_temp);
                       }});
    exports.push_back({directory + "/" + files.tent_humidity, [&run](const std::string& p) {
                           core::TimeSeries tent_rh = run.tent_logger().humidity_series();
                           (void)monitoring::remove_readout_outliers(tent_rh,
                                                                     run.tent_logger().readouts());
                           write_series(p, tent_rh);
                       }});
    exports.push_back({directory + "/" + files.tent_power, [&run](const std::string& p) {
                           write_series(p, run.tent_meter().power_series());
                       }});
    exports.push_back({directory + "/" + files.events, [&run](const std::string& p) {
                           std::ofstream out(p);
                           if (!out) throw core::IoError("export_figure_data: cannot create " + p);
                           run.event_log().print(out);
                       }});
    exports.push_back({directory + "/" + files.fault_log, [&run](const std::string& p) {
                           std::ofstream out(p);
                           if (!out) throw core::IoError("export_figure_data: cannot create " + p);
                           for (const faults::FaultRecord& r : run.fault_log().records()) {
                               out << r.time.to_string() << '\t' << r.source << '\t'
                                   << faults::to_string(r.component) << '\t'
                                   << faults::to_string(r.severity) << '\t'
                                   << (r.in_tent ? "tent" : "basement") << '\t' << r.description
                                   << '\n';
                           }
                       }});

    const SweepRunner runner(jobs);
    (void)runner.map(exports.size(), [&exports](std::size_t i) {
        exports[i].write(exports[i].path);
        return 0;  // map wants a value; the artifact is the file
    });

    std::vector<std::string> written;
    written.reserve(exports.size());
    for (const ExportJob& job : exports) written.push_back(job.path);
    return written;
}

}  // namespace zerodeg::experiment
