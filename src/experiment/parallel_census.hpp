// Parallel Monte-Carlo execution over independent experiment seasons.
//
// Each seed's season is already a closed world — every stochastic process
// derives its named RNG streams from that season's master seed alone (see
// core/rng.hpp) — so seasons shard across worker threads with no shared
// mutable state at all.  Determinism then only requires that the *reduce*
// side be ordered: results land in a slot indexed by seed, and summaries are
// folded in seed order.  `ParallelCensus` with any `jobs` value is therefore
// bit-identical to the serial loop it replaces, a property pinned by
// tests/test_parallel_determinism.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.hpp"
#include "core/task_pool.hpp"
#include "experiment/census.hpp"
#include "experiment/config.hpp"

namespace zerodeg::experiment {

class SweepJournal;
struct SweepJournalKey;

/// Shards an ordered set of independent simulation cells across a worker
/// pool and returns results in cell order.  `jobs <= 1` runs inline on the
/// calling thread (no threads are created), which is both the serial
/// reference for parity tests and the sensible default on small sweeps.
class SweepRunner {
public:
    /// `jobs` == 0 means one worker per hardware thread.
    explicit SweepRunner(std::size_t jobs = 1)
        : jobs_(jobs == 0 ? core::TaskPool::hardware_workers() : jobs) {}

    [[nodiscard]] std::size_t jobs() const { return jobs_; }

    /// map(count, fn) -> {fn(0), fn(1), ..., fn(count-1)}, in index order
    /// regardless of scheduling.  `fn` must be safe to call concurrently
    /// from `jobs` threads (independent cells; no shared mutable state).
    /// `retry` gives every cell a bounded attempt budget for TransientError
    /// failures (see core/parallel.hpp); the default retains fail-fast.
    template <typename Fn>
    [[nodiscard]] auto map(std::size_t count, Fn&& fn, core::CellRetry retry = {}) const {
        if (jobs_ <= 1 || count <= 1) return core::serial_map(count, fn, retry);
        core::TaskPool pool(std::min(jobs_, count));
        return core::parallel_map(pool, count, fn, retry);
    }

private:
    std::size_t jobs_;
};

/// The seed plan of a census: which seasons to simulate.
struct CensusPlan {
    std::uint64_t base_seed = 20100219;
    std::size_t seeds = 10;
    /// Builds the config for cell `index` (master seed `base_seed + index`).
    /// Called serially on the calling thread before the fan-out, so it need
    /// not be thread-safe.  Leave empty for the paper-default season with
    /// only the master seed varied.
    std::function<ExperimentConfig(std::size_t index, std::uint64_t seed)> make_config;
    /// The unit of work of one cell; leave empty for run_season_census.
    /// This is the seam crash/fault-injection tests use — note the journal's
    /// config hash cannot see a code-level override, so don't mix journals
    /// across different run_cell implementations.
    std::function<FaultCensus(const ExperimentConfig&)> run_cell;
    /// Total attempts a cell throwing core::TransientError gets before the
    /// failure is treated as permanent (1 = fail on the first throw).
    int cell_attempts = 1;
    /// Wall-clock budget per cell attempt; a cell still running past it is
    /// cancelled by a core::Watchdog (cooperatively, at its next
    /// cancellation point — e.g. a FaultyFs stall fault polling the cell
    /// token) and the cancellation is charged against `cell_attempts` like
    /// any transient failure.  0 disables supervision (the default: real
    /// seasons have no cancellation points, only harness-injected hangs do).
    std::int64_t cell_deadline_ms = 0;
};

/// Harness-level incidents of a campaign — the operator's-eye view the
/// paper reports as reboot walks to the tent.  Not part of FaultCensus (the
/// journal's 21-integer record format is unchanged): a hung *harness* node
/// is a property of one run's scheduling, not of the simulated season.
struct CensusHarnessStats {
    std::size_t hung_cells = 0;  ///< watchdog cancellations (retries count again)
    std::vector<std::string> hung_cell_labels;  ///< sorted, e.g. "cell 4"
};

struct CensusResult {
    std::vector<FaultCensus> censuses;  ///< [i] is the season of base_seed + i
    CensusSummary summary;              ///< ordered reduce over `censuses`
    CensusHarnessStats harness;         ///< hung-node incidents, empty without a watchdog
};

/// Run `plan.seeds` full seasons across `jobs` workers and take the census
/// of each.  Results are ordered by seed, and the summary is folded in seed
/// order, so the output is byte-identical for every `jobs` value.
class ParallelCensus {
public:
    explicit ParallelCensus(CensusPlan plan, std::size_t jobs = 1);

    [[nodiscard]] CensusResult run() const;

    /// Checkpointing run: cells already recorded in `journal` are reused
    /// verbatim (their seasons are not re-simulated) and every freshly
    /// finished cell is recorded — atomically, before the sweep moves on —
    /// so a killed campaign resumes where it died.  The journal must have
    /// been opened with this campaign's journal_key().
    [[nodiscard]] CensusResult run(SweepJournal& journal) const;

    /// The identity a checkpoint journal must match to be resumed against
    /// this plan: base seed, combined config fingerprint, cell count.
    [[nodiscard]] SweepJournalKey journal_key() const;

    [[nodiscard]] const CensusPlan& plan() const { return plan_; }
    [[nodiscard]] std::size_t jobs() const { return runner_.jobs(); }

private:
    [[nodiscard]] std::vector<ExperimentConfig> build_configs() const;
    [[nodiscard]] CensusResult run_impl(SweepJournal* journal) const;

    CensusPlan plan_;
    SweepRunner runner_;
};

/// One-shot convenience over ParallelCensus.
[[nodiscard]] CensusResult run_census(const CensusPlan& plan, std::size_t jobs = 1);

/// Simulate one full season for `config` and take its census (the unit of
/// work every sweep cell runs).
[[nodiscard]] FaultCensus run_season_census(const ExperimentConfig& config);

}  // namespace zerodeg::experiment
