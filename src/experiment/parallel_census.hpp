// Parallel Monte-Carlo execution over independent experiment seasons.
//
// Each seed's season is already a closed world — every stochastic process
// derives its named RNG streams from that season's master seed alone (see
// core/rng.hpp) — so seasons shard across worker threads with no shared
// mutable state at all.  Determinism then only requires that the *reduce*
// side be ordered: results land in a slot indexed by seed, and summaries are
// folded in seed order.  `ParallelCensus` with any `jobs` value is therefore
// bit-identical to the serial loop it replaces, a property pinned by
// tests/test_parallel_determinism.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.hpp"
#include "core/task_pool.hpp"
#include "experiment/census.hpp"
#include "experiment/config.hpp"

namespace zerodeg::experiment {

/// Shards an ordered set of independent simulation cells across a worker
/// pool and returns results in cell order.  `jobs <= 1` runs inline on the
/// calling thread (no threads are created), which is both the serial
/// reference for parity tests and the sensible default on small sweeps.
class SweepRunner {
public:
    /// `jobs` == 0 means one worker per hardware thread.
    explicit SweepRunner(std::size_t jobs = 1)
        : jobs_(jobs == 0 ? core::TaskPool::hardware_workers() : jobs) {}

    [[nodiscard]] std::size_t jobs() const { return jobs_; }

    /// map(count, fn) -> {fn(0), fn(1), ..., fn(count-1)}, in index order
    /// regardless of scheduling.  `fn` must be safe to call concurrently
    /// from `jobs` threads (independent cells; no shared mutable state).
    template <typename Fn>
    [[nodiscard]] auto map(std::size_t count, Fn&& fn) const {
        if (jobs_ <= 1 || count <= 1) return core::serial_map(count, fn);
        core::TaskPool pool(std::min(jobs_, count));
        return core::parallel_map(pool, count, fn);
    }

private:
    std::size_t jobs_;
};

/// The seed plan of a census: which seasons to simulate.
struct CensusPlan {
    std::uint64_t base_seed = 20100219;
    std::size_t seeds = 10;
    /// Builds the config for cell `index` (master seed `base_seed + index`).
    /// Called serially on the calling thread before the fan-out, so it need
    /// not be thread-safe.  Leave empty for the paper-default season with
    /// only the master seed varied.
    std::function<ExperimentConfig(std::size_t index, std::uint64_t seed)> make_config;
};

struct CensusResult {
    std::vector<FaultCensus> censuses;  ///< [i] is the season of base_seed + i
    CensusSummary summary;              ///< ordered reduce over `censuses`
};

/// Run `plan.seeds` full seasons across `jobs` workers and take the census
/// of each.  Results are ordered by seed, and the summary is folded in seed
/// order, so the output is byte-identical for every `jobs` value.
class ParallelCensus {
public:
    explicit ParallelCensus(CensusPlan plan, std::size_t jobs = 1);

    [[nodiscard]] CensusResult run() const;

    [[nodiscard]] const CensusPlan& plan() const { return plan_; }
    [[nodiscard]] std::size_t jobs() const { return runner_.jobs(); }

private:
    CensusPlan plan_;
    SweepRunner runner_;
};

/// One-shot convenience over ParallelCensus.
[[nodiscard]] CensusResult run_census(const CensusPlan& plan, std::size_t jobs = 1);

/// Simulate one full season for `config` and take its census (the unit of
/// work every sweep cell runs).
[[nodiscard]] FaultCensus run_season_census(const ExperimentConfig& config);

}  // namespace zerodeg::experiment
