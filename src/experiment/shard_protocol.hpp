// The worker/coordinator wire protocol of distributed sweeps ("zdsp1").
//
// Frames are text, checksummed exactly like v2 journal records: the payload
// followed by a fnv1a hex16 word, so damage anywhere (a bit flip, a torn
// buffer, a hostile edit) fails loudly as CorruptData before any field is
// trusted.  The transport layer underneath (core/transport.hpp) adds length
// prefixes; this layer adds meaning and integrity.
//
//   HELLO    worker -> coordinator   "I shard <shard>/<of> of the campaign
//                                    (base_seed, config_hash, cells)."
//   WELCOME  coordinator -> worker   "Same campaign; I already hold
//                                    <completed> cells — stream yours."
//   REJECT   coordinator -> worker   "Different campaign (or damaged
//                                    frame); go away: <reason>."
//   CELL     worker -> coordinator   One finished cell, embedding the
//                                    journal's own checksummed record line
//                                    verbatim — the coordinator persists
//                                    bit-for-bit what a local run would.
//   ACK      coordinator -> worker   "Cell <index> is durably journaled."
//
// Delivery contract: at-least-once with idempotent replay.  A worker resends
// any unacked CELL (after drops, reconnects or its own death — its local
// journal has every payload); the coordinator dedupes by cell index, so
// duplicates are harmless and the merged journal converges on the same bytes
// as an uninterrupted local campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "experiment/sweep_journal.hpp"

namespace zerodeg::experiment {

enum class FrameType { kHello, kWelcome, kReject, kCell, kAck };
[[nodiscard]] const char* to_string(FrameType type);

/// The HELLO handshake: which campaign, and which shard of it.
struct ShardHello {
    SweepJournalKey key;
    std::size_t shard = 0;  ///< this worker's shard index, 0-based
    std::size_t of = 1;     ///< total shard count
};

/// One decoded frame; `type` selects which fields are meaningful.
struct Frame {
    FrameType type = FrameType::kAck;
    ShardHello hello;           ///< kHello
    std::size_t completed = 0;  ///< kWelcome: cells the coordinator already holds
    std::string reason;         ///< kReject
    CellRecord cell;            ///< kCell
    std::size_t ack_index = 0;  ///< kAck
};

[[nodiscard]] std::string encode_hello(const ShardHello& hello);
[[nodiscard]] std::string encode_welcome(std::size_t completed);
[[nodiscard]] std::string encode_reject(std::string_view reason);
/// Embeds encode_cell_record(index, census) verbatim.
[[nodiscard]] std::string encode_cell(std::size_t index, const FaultCensus& census);
[[nodiscard]] std::string encode_ack(std::size_t index);

/// Verify the frame checksum, then parse.  Throws core::CorruptData on any
/// damage (checksum, magic, grammar, a bad embedded cell record).
[[nodiscard]] Frame decode_frame(std::string_view bytes);

}  // namespace zerodeg::experiment
