// The worker/coordinator wire protocol of distributed sweeps ("zdsp1").
//
// Frames are text, checksummed exactly like v2 journal records: the payload
// followed by a fnv1a hex16 word, so damage anywhere (a bit flip, a torn
// buffer, a hostile edit) fails loudly as CorruptData before any field is
// trusted.  The transport layer underneath (core/transport.hpp) adds length
// prefixes; this layer adds meaning and integrity.
//
//   HELLO    worker -> coordinator   "I shard <shard>/<of> of the campaign
//                                    (base_seed, config_hash, cells)."
//   WELCOME  coordinator -> worker   "Same campaign; I already hold
//                                    <completed> cells — stream yours."
//   REJECT   coordinator -> worker   "Different campaign (or damaged
//                                    frame); go away: <reason>."
//   CELL     worker -> coordinator   One finished cell, embedding the
//                                    journal's own checksummed record line
//                                    verbatim — the coordinator persists
//                                    bit-for-bit what a local run would.
//   ACK      coordinator -> worker   "Cell <index> is durably journaled."
//   LEASE    coordinator -> worker   "You hold lease <id> over these cells;
//                                    report in within <deadline_ops> protocol
//                                    ops or I reassign them."
//   HEARTBEAT worker -> coordinator  "Still alive (on lease <id>)"; with
//                                    lease_id == kNoLease it doubles as the
//                                    pull request for the next lease.
//   PROGRESS worker -> coordinator   "Lease <id>: simulated <done>/<of>
//                                    cells" — liveness plus the feed for the
//                                    coordinator's progress/ETA line.
//   DONE     coordinator -> worker   "Campaign resolved (<completed> cells,
//                                    <quarantined> quarantined); hang up."
//
// Delivery contract: at-least-once with idempotent replay.  A worker resends
// any unacked CELL (after drops, reconnects or its own death — its local
// journal has every payload); the coordinator dedupes by cell index, so
// duplicates are harmless and the merged journal converges on the same bytes
// as an uninterrupted local campaign.  Lease grants self-heal the same way:
// a lost LEASE is re-sent when the holder's next HEARTBEAT shows it is still
// pulling, and a worker ignores a LEASE re-announcing the id it already
// holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/sweep_journal.hpp"

namespace zerodeg::experiment {

enum class FrameType {
    kHello,
    kWelcome,
    kReject,
    kCell,
    kAck,
    kLease,
    kHeartbeat,
    kProgress,
    kDone,
};
[[nodiscard]] const char* to_string(FrameType type);

/// The lease_id a HEARTBEAT carries when the worker holds no lease — the
/// "give me work" pull request.
inline constexpr std::uint64_t kNoLease = std::numeric_limits<std::uint64_t>::max();

/// The HELLO handshake: which campaign, and which shard of it.  `of == 0` is
/// the lease-mode spelling: the worker owns no static shard and pulls leases
/// instead (`shard` is then just a self-chosen label for diagnostics).
struct ShardHello {
    SweepJournalKey key;
    std::size_t shard = 0;  ///< static: shard index; lease mode: worker label
    std::size_t of = 1;     ///< static shard count, or 0 for lease mode
};

/// A coordinator-granted work lease: compute these cells, check in (any
/// frame) at least every `deadline_ops` coordinator protocol ops.
struct Lease {
    std::uint64_t id = 0;
    std::uint64_t deadline_ops = 0;
    std::vector<std::size_t> cells;  ///< strictly ascending cell indices
};

/// One decoded frame; `type` selects which fields are meaningful.
struct Frame {
    FrameType type = FrameType::kAck;
    ShardHello hello;            ///< kHello
    std::size_t completed = 0;   ///< kWelcome / kDone: cells the coordinator holds
    std::string reason;          ///< kReject
    CellRecord cell;             ///< kCell
    std::size_t ack_index = 0;   ///< kAck
    Lease lease;                 ///< kLease
    std::uint64_t lease_id = kNoLease;  ///< kHeartbeat / kProgress
    std::size_t progress_done = 0;      ///< kProgress: cells simulated so far
    std::size_t progress_of = 0;        ///< kProgress: cells in the lease
    std::size_t quarantined = 0;        ///< kDone: poisoned cells at resolve
};

[[nodiscard]] std::string encode_hello(const ShardHello& hello);
[[nodiscard]] std::string encode_welcome(std::size_t completed);
[[nodiscard]] std::string encode_reject(std::string_view reason);
/// Embeds encode_cell_record(index, census) verbatim.
[[nodiscard]] std::string encode_cell(std::size_t index, const FaultCensus& census);
[[nodiscard]] std::string encode_ack(std::size_t index);
[[nodiscard]] std::string encode_lease(const Lease& lease);
[[nodiscard]] std::string encode_heartbeat(std::uint64_t lease_id);
[[nodiscard]] std::string encode_progress(std::uint64_t lease_id, std::size_t done,
                                          std::size_t of);
[[nodiscard]] std::string encode_done(std::size_t completed, std::size_t quarantined);

/// Verify the frame checksum, then parse.  Throws core::CorruptData on any
/// damage (checksum, magic, grammar, a bad embedded cell record).
[[nodiscard]] Frame decode_frame(std::string_view bytes);

}  // namespace zerodeg::experiment
