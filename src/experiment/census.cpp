#include "experiment/census.hpp"

#include <set>

namespace zerodeg::experiment {

double FaultCensus::tent_failure_rate() const {
    if (tent_hosts == 0) return 0.0;
    return static_cast<double>(tent_hosts_failed) / static_cast<double>(tent_hosts);
}

double FaultCensus::fleet_failure_rate() const {
    const std::size_t total = tent_hosts + basement_hosts;
    if (total == 0) return 0.0;
    return static_cast<double>(tent_hosts_failed + basement_hosts_failed) /
           static_cast<double>(total);
}

double FaultCensus::deadline_miss_fraction() const {
    const std::uint64_t issued = requests_completed + requests_dropped;
    if (issued == 0) return 0.0;
    return static_cast<double>(deadline_misses) / static_cast<double>(issued);
}

double FaultCensus::page_fault_ratio() const {
    if (page_ops_non_ecc == 0) return 0.0;
    return static_cast<double>(wrong_hashes) / static_cast<double>(page_ops_non_ecc);
}

FaultCensus take_census(const ExperimentRunner& run) {
    FaultCensus census;
    const hardware::Fleet& fleet = run.fleet();
    const faults::FaultLog& log = run.fault_log();

    std::set<int> tent_ids;
    std::set<int> basement_ids;
    for (const hardware::HostRecord& rec : fleet.hosts()) {
        // A host that was moved indoors (host #15) still counts as a tent
        // host for census purposes — its failures happened in the tent.
        const bool tent = rec.placement == hardware::Placement::kTent ||
                          rec.placement == hardware::Placement::kIndoors;
        (tent ? tent_ids : basement_ids).insert(rec.server->id());
    }
    census.tent_hosts = tent_ids.size();
    census.basement_hosts = basement_ids.size();

    std::set<int> tent_failed;
    std::set<int> basement_failed;
    for (const faults::FaultRecord& r : log.records()) {
        switch (r.component) {
            case faults::FaultComponent::kSystem:
                ++census.system_failures;
                if (r.severity == faults::FaultSeverity::kTransient) {
                    ++census.transient_failures;
                } else {
                    ++census.permanent_failures;
                }
                if (tent_ids.contains(r.host_id)) tent_failed.insert(r.host_id);
                if (basement_ids.contains(r.host_id)) basement_failed.insert(r.host_id);
                break;
            case faults::FaultComponent::kSensorChip:
                ++census.sensor_incidents;
                break;
            case faults::FaultComponent::kSwitch:
                ++census.switch_failures;
                break;
            case faults::FaultComponent::kFan:
                ++census.fan_faults;
                break;
            case faults::FaultComponent::kDisk:
                ++census.disk_faults;
                break;
            default:
                break;
        }
    }
    census.tent_hosts_failed = tent_failed.size();
    census.basement_hosts_failed = basement_failed.size();

    const workload::LoadScheduler& load = run.load();
    census.load_runs = load.total_runs();
    census.wrong_hashes = load.total_wrong_hashes();
    census.page_ops = load.total_page_ops();
    // all_stats() lookup rather than stats(): traffic seasons register no
    // hosts with the archive scheduler, and absent hosts count zero.
    const std::map<int, workload::HostLoadStats>& load_stats = load.all_stats();
    for (const hardware::HostRecord& rec : fleet.hosts()) {
        if (!rec.server->spec().ecc_memory) {
            const auto it = load_stats.find(rec.server->id());
            if (it != load_stats.end()) census.page_ops_non_ecc += it->second.page_ops;
        }
    }
    for (const workload::WrongHashIncident& inc : load.incidents()) {
        if (tent_ids.contains(inc.host_id)) {
            ++census.wrong_hashes_tent;
        } else {
            ++census.wrong_hashes_basement;
        }
    }

    if (run.has_traffic()) {
        const workload::SloTracker& slo = run.traffic().slo();
        census.requests_completed = slo.completed();
        census.requests_dropped = slo.dropped();
        census.deadline_misses = slo.deadline_misses();
        census.p99_sojourn_us =
            static_cast<std::uint64_t>(slo.sojourn_percentile(99.0) * 1e6 + 0.5);
    }
    return census;
}

CensusSummary summarize(const std::vector<FaultCensus>& censuses) {
    CensusSummary s;
    s.seeds = censuses.size();
    if (censuses.empty()) return s;
    std::size_t with_sensor = 0;
    std::size_t with_switch = 0;
    for (const FaultCensus& c : censuses) {
        s.mean_tent_failure_rate += c.tent_failure_rate();
        s.mean_fleet_failure_rate += c.fleet_failure_rate();
        s.mean_system_failures += static_cast<double>(c.system_failures);
        s.mean_wrong_hashes += static_cast<double>(c.wrong_hashes);
        s.mean_runs += static_cast<double>(c.load_runs);
        s.mean_page_fault_ratio += c.page_fault_ratio();
        s.mean_requests_completed += static_cast<double>(c.requests_completed);
        s.mean_deadline_miss_fraction += c.deadline_miss_fraction();
        if (c.sensor_incidents > 0) ++with_sensor;
        if (c.switch_failures > 0) ++with_switch;
    }
    const auto n = static_cast<double>(censuses.size());
    s.mean_tent_failure_rate /= n;
    s.mean_fleet_failure_rate /= n;
    s.mean_system_failures /= n;
    s.mean_wrong_hashes /= n;
    s.mean_runs /= n;
    s.mean_page_fault_ratio /= n;
    s.mean_requests_completed /= n;
    s.mean_deadline_miss_fraction /= n;
    s.frac_runs_with_sensor_incident = static_cast<double>(with_sensor) / n;
    s.frac_runs_with_switch_failures = static_cast<double>(with_switch) / n;
    return s;
}

}  // namespace zerodeg::experiment
