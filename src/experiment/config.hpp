// Experiment configuration: the dates, events and knobs of Sections 3-4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_time.hpp"
#include "faults/component_faults.hpp"
#include "faults/fault_injector.hpp"
#include "faults/memory_faults.hpp"
#include "monitoring/retry_policy.hpp"
#include "thermal/enclosure.hpp"
#include "weather/trace_io.hpp"
#include "weather/weather_model.hpp"
#include "workload/load_job.hpp"
#include "workload/traffic.hpp"

namespace zerodeg::experiment {

using core::Duration;
using core::TimePoint;

/// A scheduled tent modification (the R/I/B/F letters under Fig. 3).
struct TentModEvent {
    TimePoint when;
    thermal::TentMod mod;
};

/// Which host-loop implementation the runner's tick uses.  The two engines
/// are bit-identical by construction (the batched one routes the same
/// arithmetic through contiguous arrays); the per-object path is kept as
/// the reference for differential tests.
enum class TickEngine : int {
    kPerObject = 0,  ///< original one-host-at-a-time loop
    kBatched = 1,    ///< SoA gather/kernel/scatter fast path
};

[[nodiscard]] const char* to_string(TickEngine engine);

/// Which workload drives the fleet's CPUs and disks for the season.
enum class WorkloadKind : int {
    kArchive = 0,  ///< batch archival churn (scheduler.hpp): disk + memory
    kTraffic = 1,  ///< request-serving traffic (traffic.hpp): CPU + latency
};

[[nodiscard]] const char* to_string(WorkloadKind kind);

struct ExperimentConfig {
    std::uint64_t master_seed = 20100219;

    /// Tick-engine selection.  Deliberately excluded from fingerprint():
    /// both engines produce byte-identical results, so journals written by
    /// one resume cleanly under the other.
    TickEngine engine = TickEngine::kBatched;

    /// Main phase window ("start of testing" Feb 19; Fig. 2's last mark is
    /// the Mar 26 replacement of #15; the census in Section 4 was written
    /// with the newest hosts two weeks in).
    TimePoint start = TimePoint::from_date(2010, 2, 19);
    TimePoint end = TimePoint::from_date(2010, 3, 27);

    /// Simulation tick (thermal/fault integration step).
    Duration tick = Duration::minutes(10);

    weather::WeatherConfig weather = weather::helsinki_2010_config();
    /// When non-empty, this recorded trace drives the experiment instead of
    /// the synthetic model — the seam for plugging in real SMEAR III data
    /// (see weather::read_trace).
    std::vector<weather::WeatherSample> weather_trace;
    thermal::TentConfig tent{};

    /// Tent modifications, in the paper's order R, I, B, F (+ the ongoing
    /// half-open front door).  Dates are not printed in the paper; these
    /// are placed to reproduce Fig. 3's stepwise drops in inside-minus-
    /// outside temperature.
    std::vector<TentModEvent> tent_mods = {
        {TimePoint::from_civil({2010, 2, 26, 12, 0, 0}), thermal::TentMod::kReflectiveFoil},
        {TimePoint::from_civil({2010, 3, 4, 15, 0, 0}), thermal::TentMod::kInnerTentRemoved},
        {TimePoint::from_civil({2010, 3, 12, 13, 0, 0}), thermal::TentMod::kBottomOpened},
        {TimePoint::from_civil({2010, 3, 16, 11, 0, 0}), thermal::TentMod::kFrontDoorHalfOpen},
        {TimePoint::from_civil({2010, 3, 22, 14, 0, 0}), thermal::TentMod::kFanInstalled},
    };

    /// Collection retry/backoff for the monitoring sweep.  The default is
    /// the paper's behaviour (one attempt per sweep, unbounded host
    /// buffers); the runner stamps `master_seed` into the policy so retry
    /// jitter replays with the season.
    monitoring::CollectorRetryPolicy collector_retry;

    /// The Lascar logger "arrived late": inside data starts here.
    TimePoint logger_start = TimePoint::from_date(2010, 3, 1);
    /// Manual USB readouts (indoor-outlier sources), every ~5 days.
    Duration readout_interval = Duration::days(5);

    faults::InjectorParams faults{};
    faults::ComponentFaultParams component_faults{};
    faults::MemoryFaultParams memory{};
    workload::LoadJobConfig load{};

    /// Which workload the season runs.  kArchive keeps the paper's batch
    /// churn; kTraffic swaps in the request-serving engine, whose per-tick
    /// busy fractions drive cpu load (and so heat, and so hazard).
    WorkloadKind workload = WorkloadKind::kArchive;
    /// Default traffic season: open-loop at the request_gen defaults (sized
    /// so the six-host early fleet sits near rho = 0.5), plus two flash
    /// crowds that transiently push the by-then-larger fleet past saturation
    /// — the backlog drains afterwards, showing up as deadline misses.
    workload::TrafficConfig traffic = [] {
        workload::TrafficConfig t;
        t.open.flash_crowds = {
            {TimePoint::from_civil({2010, 3, 1, 18, 0, 0}), Duration::hours(2), 4.0},
            {TimePoint::from_civil({2010, 3, 20, 19, 0, 0}), Duration::hours(1), 3.0},
        };
        return t;
    }();

    /// Operator behavior: crashed hosts are found and reset at the next
    /// weekday 10:00 (host #15 crashed Saturday 04:40 and was reset Monday).
    int operator_hour = 10;
    /// A permanently-failed tent host is replaced this long after retirement
    /// (Fig. 2: #15 out Mar 17, #19 in Mar 26).
    Duration replacement_lead = Duration::days(9);

    /// Defective loaner switches (Section 4.2.1): mean hours to failure.
    double switch_defect_mean_hours = 170.0;
};

/// Next operator visit strictly after `t`: the next weekday at
/// `operator_hour` local.
[[nodiscard]] TimePoint next_operator_visit(TimePoint t, int operator_hour);

/// Throw InvalidArgument naming the offending knob when `config` cannot
/// describe a runnable season (end before start, nonpositive tick, empty
/// corpus, ...).  Called per cell before a sweep fans out, so a bad campaign
/// dies with a diagnostic instead of a mid-run crash on worker N.
void validate(const ExperimentConfig& config);

/// A 64-bit fingerprint over the campaign-defining knobs (dates, tick,
/// seeds, tent schedule, workload sizing, weather script).  Two configs with
/// the same fingerprint describe the same campaign cell for checkpoint
/// purposes: a sweep journal records this hash and refuses to resume when it
/// changes.  It is a change detector, not a cryptographic commitment — and it
/// deliberately cannot see code-level overrides such as CensusPlan::run_cell.
[[nodiscard]] std::uint64_t fingerprint(const ExperimentConfig& config);

}  // namespace zerodeg::experiment
