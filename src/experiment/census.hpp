// The fault census of Section 4: who failed, where, how often — and the
// comparison against Intel's 4.46% air-economizer failure rate [1].
#pragma once

#include <vector>

#include "experiment/runner.hpp"

namespace zerodeg::experiment {

struct FaultCensus {
    std::size_t tent_hosts = 0;
    std::size_t basement_hosts = 0;
    std::size_t tent_hosts_failed = 0;      ///< distinct tent hosts with >= 1 system failure
    std::size_t basement_hosts_failed = 0;
    std::size_t system_failures = 0;        ///< total system-failure events
    std::size_t transient_failures = 0;
    std::size_t permanent_failures = 0;
    std::size_t sensor_incidents = 0;
    std::size_t switch_failures = 0;
    std::size_t fan_faults = 0;
    std::size_t disk_faults = 0;  ///< whole-drive deaths + media events
    std::uint64_t load_runs = 0;
    std::uint64_t wrong_hashes = 0;
    std::uint64_t wrong_hashes_tent = 0;
    std::uint64_t wrong_hashes_basement = 0;
    std::uint64_t page_ops = 0;
    /// Page operations on hosts without ECC — the denominator of the
    /// paper's "one in 570 million" ratio (ECC hosts absorb their flips).
    std::uint64_t page_ops_non_ecc = 0;

    /// Traffic-workload season accounting (all zero for archive seasons).
    std::uint64_t requests_completed = 0;
    std::uint64_t requests_dropped = 0;     ///< no operational host / host died
    std::uint64_t deadline_misses = 0;      ///< slow completions + all drops
    std::uint64_t p99_sojourn_us = 0;       ///< season-wide p99, microseconds

    /// Deadline misses per issued request (completed + dropped).
    [[nodiscard]] double deadline_miss_fraction() const;

    /// Fraction of tent hosts with >= 1 system failure (the paper's 5.6%:
    /// one of eighteen installed hosts).
    [[nodiscard]] double tent_failure_rate() const;
    [[nodiscard]] double fleet_failure_rate() const;
    /// Wrong hashes per page operation (the paper: ~1 per 570 million).
    [[nodiscard]] double page_fault_ratio() const;
    /// Intel's reported comparator.
    static constexpr double kIntelFailureRate = 0.0446;
};

/// Build the census from a finished run.
[[nodiscard]] FaultCensus take_census(const ExperimentRunner& run);

/// Aggregate census over many seeds (the Monte Carlo view the bench prints).
struct CensusSummary {
    double mean_tent_failure_rate = 0.0;
    double mean_fleet_failure_rate = 0.0;
    double mean_system_failures = 0.0;
    double mean_wrong_hashes = 0.0;
    double mean_runs = 0.0;
    double mean_page_fault_ratio = 0.0;
    double frac_runs_with_sensor_incident = 0.0;
    double frac_runs_with_switch_failures = 0.0;
    double mean_requests_completed = 0.0;
    double mean_deadline_miss_fraction = 0.0;
    std::size_t seeds = 0;
};

[[nodiscard]] CensusSummary summarize(const std::vector<FaultCensus>& censuses);

}  // namespace zerodeg::experiment
