#include "experiment/shard_protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace zerodeg::experiment {

namespace {

constexpr std::string_view kMagic = "zdsp1";

std::string hex16(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t parse_hex(const std::string& field) {
    if (field.empty() || field[0] == '-' || field[0] == '+') {
        throw core::CorruptData("frame: expected a hex word, got '" + field + "'");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(field.c_str(), &end, 16);
    if (end != field.c_str() + field.size() || errno == ERANGE) {
        throw core::CorruptData("frame: expected a hex word, got '" + field + "'");
    }
    return v;
}

std::uint64_t parse_u64(const std::string& field, const char* what) {
    if (field.empty() || field[0] == '-' || field[0] == '+') {
        throw core::CorruptData(std::string("frame: bad ") + what + " '" + field + "'");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
    if (end != field.c_str() + field.size() || errno == ERANGE) {
        throw core::CorruptData(std::string("frame: bad ") + what + " '" + field + "'");
    }
    return v;
}

/// payload -> "payload <fnv1a-hex16>", the same sealing journal records use.
std::string seal(const std::string& payload) {
    return payload + ' ' + hex16(core::fnv1a(payload));
}

}  // namespace

const char* to_string(FrameType type) {
    switch (type) {
        case FrameType::kHello: return "hello";
        case FrameType::kWelcome: return "welcome";
        case FrameType::kReject: return "reject";
        case FrameType::kCell: return "cell";
        case FrameType::kAck: return "ack";
        case FrameType::kLease: return "lease";
        case FrameType::kHeartbeat: return "heartbeat";
        case FrameType::kProgress: return "progress";
        case FrameType::kDone: return "done";
    }
    return "?";
}

std::string encode_hello(const ShardHello& hello) {
    std::ostringstream out;
    out << kMagic << " hello " << hello.key.base_seed << ' ' << hex16(hello.key.config_hash)
        << ' ' << hello.key.cells << ' ' << hello.shard << ' ' << hello.of;
    return seal(out.str());
}

std::string encode_welcome(std::size_t completed) {
    return seal(std::string(kMagic) + " welcome " + std::to_string(completed));
}

std::string encode_reject(std::string_view reason) {
    return seal(std::string(kMagic) + " reject " + std::string(reason));
}

std::string encode_cell(std::size_t index, const FaultCensus& census) {
    return seal(std::string(kMagic) + " cell " + encode_cell_record(index, census));
}

std::string encode_ack(std::size_t index) {
    return seal(std::string(kMagic) + " ack " + std::to_string(index));
}

std::string encode_lease(const Lease& lease) {
    if (lease.cells.empty()) {
        throw core::InvalidArgument("a lease must cover at least one cell");
    }
    std::ostringstream out;
    out << kMagic << " lease " << lease.id << ' ' << lease.deadline_ops << ' '
        << lease.cells.size();
    for (const std::size_t cell : lease.cells) out << ' ' << cell;
    return seal(out.str());
}

std::string encode_heartbeat(std::uint64_t lease_id) {
    return seal(std::string(kMagic) + " heartbeat " + std::to_string(lease_id));
}

std::string encode_progress(std::uint64_t lease_id, std::size_t done, std::size_t of) {
    return seal(std::string(kMagic) + " progress " + std::to_string(lease_id) + ' ' +
                std::to_string(done) + ' ' + std::to_string(of));
}

std::string encode_done(std::size_t completed, std::size_t quarantined) {
    return seal(std::string(kMagic) + " done " + std::to_string(completed) + ' ' +
                std::to_string(quarantined));
}

Frame decode_frame(std::string_view bytes) {
    const std::string row(bytes);
    const std::size_t sep = row.rfind(' ');
    if (sep == std::string::npos) {
        throw core::CorruptData("malformed frame '" + row + "' (no checksum)");
    }
    const std::string payload = row.substr(0, sep);
    if (core::fnv1a(payload) != parse_hex(row.substr(sep + 1))) {
        throw core::CorruptData("frame checksum mismatch on '" + row + "'");
    }

    std::istringstream ss(payload);
    std::string magic, type;
    ss >> magic >> type;
    if (magic != kMagic) {
        throw core::CorruptData("unknown frame magic '" + magic +
                                "' (speaking a different protocol version?)");
    }

    Frame frame;
    const auto no_trailing = [&] {
        std::string junk;
        if (ss >> junk) {
            throw core::CorruptData("trailing junk '" + junk + "' in " + type + " frame");
        }
    };
    const auto next = [&](const char* what) {
        std::string token;
        if (!(ss >> token)) {
            throw core::CorruptData(std::string("truncated ") + type + " frame (missing " +
                                    what + ")");
        }
        return token;
    };

    if (type == "hello") {
        frame.type = FrameType::kHello;
        frame.hello.key.base_seed = parse_u64(next("base_seed"), "base_seed");
        frame.hello.key.config_hash = parse_hex(next("config_hash"));
        frame.hello.key.cells = static_cast<std::size_t>(parse_u64(next("cells"), "cells"));
        frame.hello.shard = static_cast<std::size_t>(parse_u64(next("shard"), "shard"));
        frame.hello.of = static_cast<std::size_t>(parse_u64(next("of"), "of"));
        no_trailing();
        // of == 0 is the lease-mode hello (no static shard claimed); a
        // *static* hello naming an out-of-range shard is still nonsense.
        if (frame.hello.of != 0 && frame.hello.shard >= frame.hello.of) {
            throw core::CorruptData("hello frame names shard " +
                                    std::to_string(frame.hello.shard) + " of " +
                                    std::to_string(frame.hello.of));
        }
    } else if (type == "welcome") {
        frame.type = FrameType::kWelcome;
        frame.completed = static_cast<std::size_t>(parse_u64(next("completed"), "completed"));
        no_trailing();
    } else if (type == "reject") {
        frame.type = FrameType::kReject;
        // The reason is free text: everything after "zdsp1 reject ".
        const std::string prefix = std::string(kMagic) + " reject ";
        frame.reason = payload.size() > prefix.size() ? payload.substr(prefix.size()) : "";
    } else if (type == "cell") {
        frame.type = FrameType::kCell;
        // The embedded record line is the journal's own checksummed format;
        // decode_cell_record re-verifies it independently of the frame seal.
        const std::string prefix = std::string(kMagic) + " cell ";
        if (payload.size() <= prefix.size()) {
            throw core::CorruptData("truncated cell frame (no record)");
        }
        frame.cell = decode_cell_record(payload.substr(prefix.size()));
    } else if (type == "ack") {
        frame.type = FrameType::kAck;
        frame.ack_index = static_cast<std::size_t>(parse_u64(next("index"), "index"));
        no_trailing();
    } else if (type == "lease") {
        frame.type = FrameType::kLease;
        frame.lease.id = parse_u64(next("id"), "id");
        frame.lease.deadline_ops = parse_u64(next("deadline_ops"), "deadline_ops");
        const auto count = static_cast<std::size_t>(parse_u64(next("count"), "count"));
        if (count == 0) {
            throw core::CorruptData("lease frame grants zero cells");
        }
        frame.lease.cells.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const auto cell = static_cast<std::size_t>(parse_u64(next("cell"), "cell"));
            if (!frame.lease.cells.empty() && cell <= frame.lease.cells.back()) {
                throw core::CorruptData("lease frame cells not strictly ascending");
            }
            frame.lease.cells.push_back(cell);
        }
        no_trailing();
    } else if (type == "heartbeat") {
        frame.type = FrameType::kHeartbeat;
        frame.lease_id = parse_u64(next("lease_id"), "lease_id");
        no_trailing();
    } else if (type == "progress") {
        frame.type = FrameType::kProgress;
        frame.lease_id = parse_u64(next("lease_id"), "lease_id");
        frame.progress_done = static_cast<std::size_t>(parse_u64(next("done"), "done"));
        frame.progress_of = static_cast<std::size_t>(parse_u64(next("of"), "of"));
        no_trailing();
        if (frame.progress_done > frame.progress_of) {
            throw core::CorruptData("progress frame reports " +
                                    std::to_string(frame.progress_done) + "/" +
                                    std::to_string(frame.progress_of) + " cells");
        }
    } else if (type == "done") {
        frame.type = FrameType::kDone;
        frame.completed = static_cast<std::size_t>(parse_u64(next("completed"), "completed"));
        frame.quarantined =
            static_cast<std::size_t>(parse_u64(next("quarantined"), "quarantined"));
        no_trailing();
    } else {
        throw core::CorruptData("unknown frame type '" + type + "'");
    }
    return frame;
}

}  // namespace zerodeg::experiment
