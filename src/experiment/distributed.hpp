// Worker/coordinator execution of census sweeps over the transport seam.
//
// A campaign of `seeds` cells is sharded round-robin across `of` workers
// (cell i belongs to shard i % of).  Each worker simulates its cells into a
// *local* SweepJournal — durable before a single byte hits the wire — then
// streams the finished records as checksummed CELL frames (shard_protocol)
// to a coordinator, which journals them into the merged campaign journal and
// acks.  Delivery is at-least-once with idempotent replay: a worker resends
// unacked cells after drops, reconnects, or its own death (the local journal
// has every payload); the coordinator dedupes by cell index.  The merged
// journal is therefore byte-identical to an uninterrupted local run no
// matter which process died when — the property distributed_torture pins by
// killing the worker at every send point and the coordinator at every frame.
//
// Degradation: a worker that cannot reach (or re-reach) the coordinator does
// not fail the campaign — it finishes its cells into the local journal and
// reports them as buffered.  Re-running the worker once the coordinator is
// back re-streams them without re-simulating anything.
//
// Everything here is deterministic given (plan, shard layout, fault seeds):
// workers stream cells in index order and wait for each ack before sending
// the next, so the sequence of transport operations — and hence the crash
// points the torture harness enumerates — replays exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/transport.hpp"
#include "experiment/parallel_census.hpp"
#include "monitoring/retry_policy.hpp"

namespace zerodeg::core {
class FileSystem;
}  // namespace zerodeg::core

namespace zerodeg::experiment {

/// Which slice of the campaign a worker owns: cells where
/// index % of == shard.
struct ShardSpec {
    std::size_t shard = 0;
    std::size_t of = 1;
};

/// The cell indices of `spec` within a campaign of `cells` cells, ascending.
[[nodiscard]] std::vector<std::size_t> shard_cells(std::size_t cells, const ShardSpec& spec);

/// The config of a single campaign cell, exactly as ParallelCensus would
/// build it (same seed derivation, same per-cell validation context).
[[nodiscard]] ExperimentConfig cell_config(const CensusPlan& plan, std::size_t index);

/// One cell's unit of work: plan.run_cell if set, else run_season_census.
[[nodiscard]] FaultCensus run_cell(const CensusPlan& plan, const ExperimentConfig& config);

struct WorkerOptions {
    std::size_t jobs = 1;  ///< fan-out for the local simulate phase
    bool resume = true;    ///< reuse cells already in the local journal
    /// Frame resend budget: a CELL frame gets max_attempts tries (sends
    /// swallowed by the link or left unacked past the ack timeout count as
    /// failed attempts).  The backoff fields are not waited out in wall time
    /// — the ack timeout itself is the pacing — but max_attempts is honoured
    /// exactly, so a zero-retry policy (max_attempts = 1) sends each frame
    /// once and buffers on the first loss.
    monitoring::CollectorRetryPolicy retry{.max_attempts = 4};
    /// How long to wait for an ack before charging a resend attempt.
    /// -1 would block forever; keep it finite so lost acks are survivable.
    int ack_timeout_ms = 2000;
    /// Called to (re)establish the coordinator link after TransportClosed.
    /// May return nullptr ("coordinator is gone") to trigger degraded mode.
    std::function<std::unique_ptr<core::Transport>()> reconnect;
    int max_reconnects = 3;           ///< reconnect budget per worker run
    core::FileSystem* fs = nullptr;   ///< local journal I/O seam
    std::function<void(const std::string&)> log;  ///< optional progress lines
};

struct WorkerReport {
    std::size_t shard = 0;
    std::size_t of = 1;
    std::size_t cells_owned = 0;
    std::size_t cells_computed = 0;  ///< simulated fresh this run
    std::size_t cells_reused = 0;    ///< found in the local journal
    std::size_t link_sends = 0;      ///< every send() issued on the link
    std::size_t resends = 0;         ///< CELL frames sent beyond the first try
    std::size_t drops_absorbed = 0;  ///< sends swallowed by the faulty link
    std::size_t acked = 0;           ///< ACK frames heard (dedup by index)
    std::size_t buffered = 0;        ///< cells journaled locally but never acked
    std::uint64_t buffered_bytes = 0;  ///< wire bytes of those unacked records
    int reconnects = 0;
    bool coordinator_reached = false;  ///< handshake completed at least once
    bool degraded = false;  ///< finished without the coordinator holding every cell
};

/// Run one worker: simulate the shard's missing cells into the local journal
/// at `journal_path` (opened with the *full-campaign* key, so the file is a
/// valid resume point for a local run too), then stream them over `link`.
/// `link` may be nullptr: offline mode, simulate + journal only.  Throws
/// core::StaleJournal if the coordinator rejects the handshake, and lets
/// core::SimulatedCrash propagate (the torture harness's kill switch).
[[nodiscard]] WorkerReport run_worker(const CensusPlan& plan, const ShardSpec& spec,
                                      const std::filesystem::path& journal_path,
                                      std::unique_ptr<core::Transport> link,
                                      const WorkerOptions& opts = {});

/// Deterministic kill schedule for the coordinator, by global frame number.
struct CoordinatorCrashPlan {
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    /// Crash while handling the Nth frame received (0-based, counted across
    /// all links in arrival order).
    std::size_t crash_at_frame = kNever;
    /// Where in the handling of that frame to die:
    enum class Phase {
        kOnFrame,      ///< frame decoded, nothing durable yet
        kAfterRecord,  ///< journal updated (or hello validated), no reply sent
        kAfterReply,   ///< reply (ack/welcome) already on the wire
    };
    Phase phase = Phase::kOnFrame;
};

struct CoordinatorOptions {
    bool resume = true;
    CoordinatorCrashPlan crash;
    /// Give up waiting for workers after this many consecutive idle polls
    /// with *no live links* while the journal is still incomplete.  0 =
    /// wait until request_stop().
    int idle_give_up_polls = 0;
    /// Bounded tries for each reply frame swallowed as TransientError by a
    /// faulty link before the ack is abandoned (the worker will resend).
    int reply_attempts = 4;
    core::FileSystem* fs = nullptr;
    std::function<void(const std::string&)> log;
};

struct CoordinatorReport {
    std::size_t frames = 0;          ///< frames received (all types, all links)
    std::size_t cells_recorded = 0;  ///< fresh cells journaled
    std::size_t duplicates = 0;      ///< CELL frames deduped by index
    std::size_t acks_sent = 0;
    std::size_t rejected_hellos = 0;
    std::size_t corrupt_frames = 0;  ///< frames that failed decode (rejected)
    std::size_t links_accepted = 0;
    std::size_t links_dropped = 0;  ///< links that died mid-conversation
    bool completed = false;         ///< merged journal holds every cell
};

/// The collector service: accepts worker links from a Listener, journals
/// streamed cells into the merged campaign journal, acks, dedupes replays.
/// Single-threaded: serve() multiplexes links by polling, and returns when
/// the journal is complete, request_stop() is called, or the idle budget
/// runs out with no links.  A CoordinatorCrashPlan kill throws
/// core::SimulatedCrash out of serve() with all links closed, so peers
/// observe a real process death.
class CoordinatorService {
public:
    CoordinatorService(CensusPlan plan, std::filesystem::path journal_path,
                       CoordinatorOptions opts = {});

    /// Blocks serving workers on `listener`.  Returns the report; throws
    /// core::SimulatedCrash on a planned kill.
    CoordinatorReport serve(core::Listener& listener);

    /// Thread-safe: ask a blocked serve() to wind down at its next poll.
    void request_stop();

    [[nodiscard]] const SweepJournalKey& key() const;
    [[nodiscard]] bool complete() const;
    [[nodiscard]] std::size_t merged() const;  ///< cells already in the journal

    /// The campaign result assembled from the merged journal.  Requires
    /// complete() — throws core::Error otherwise.
    [[nodiscard]] CensusResult result() const;

    ~CoordinatorService();
    CoordinatorService(const CoordinatorService&) = delete;
    CoordinatorService& operator=(const CoordinatorService&) = delete;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// In-process distributed campaign: one coordinator thread + `workers`
/// worker threads over loopback links, every link wrapped in a
/// FaultyTransport.  This is the harness run_distributed-based tests and the
/// torture campaign drive; the CLI wires the same pieces over unix sockets.
struct DistributedOptions {
    std::size_t workers = 2;
    std::size_t worker_jobs = 1;
    bool resume = true;
    /// Per-worker link fault plans; missing entries get a clean plan.
    std::vector<core::TransportFaultPlan> worker_faults;
    CoordinatorCrashPlan coordinator_crash;
    monitoring::CollectorRetryPolicy retry{.max_attempts = 4};
    int ack_timeout_ms = 250;  ///< loopback acks are instant; keep kills fast
    /// Restart a worker that died to a planned link crash, once, over a
    /// clean link — the torture harness's "operator reboots the node".
    bool restart_crashed_workers = false;
    core::FileSystem* fs = nullptr;  ///< journal I/O seam for every process
};

struct DistributedOutcome {
    CoordinatorReport coordinator;
    std::vector<WorkerReport> workers;     ///< final report per shard
    std::vector<bool> worker_crashed;      ///< planned link kill fired
    std::size_t worker_restarts = 0;
    bool coordinator_crashed = false;
    CensusResult result;  ///< valid when coordinator.completed
};

/// Journal layout under a scratch directory.
[[nodiscard]] std::filesystem::path merged_journal_path(const std::filesystem::path& scratch);
[[nodiscard]] std::filesystem::path worker_journal_path(const std::filesystem::path& scratch,
                                                        std::size_t shard);

[[nodiscard]] DistributedOutcome run_distributed(const CensusPlan& plan,
                                                 const std::filesystem::path& scratch,
                                                 const DistributedOptions& opts = {});

/// Cross-process crash torture: enumerate every worker send point and every
/// coordinator frame from a clean counting run, then kill each process at
/// each point (both crash phases for workers, all three for the
/// coordinator), resume, and byte-compare the merged journal and rendered
/// census table against the uninterrupted reference.
struct DistributedTortureOptions {
    std::size_t workers = 2;
    std::size_t jobs = 1;
    bool verbose = false;
};

struct DistributedTortureReport {
    std::size_t worker_send_points = 0;  ///< send ops enumerated across workers
    std::size_t coordinator_frames = 0;
    std::size_t crash_points = 0;  ///< kills actually exercised
    std::size_t resumes = 0;
    std::size_t mismatches = 0;
    [[nodiscard]] bool passed() const { return mismatches == 0 && crash_points > 0; }
};

[[nodiscard]] DistributedTortureReport distributed_torture(const CensusPlan& plan,
                                                           const std::filesystem::path& scratch,
                                                           const DistributedTortureOptions& opts,
                                                           std::ostream& log);

}  // namespace zerodeg::experiment
