// Worker/coordinator execution of census sweeps over the transport seam.
//
// Scheduling is pull-based lease assignment: workers ask the coordinator for
// work (a HEARTBEAT carrying no lease id), the coordinator grants a LEASE
// over the lowest unassigned cell indices, the worker simulates them into a
// *local* SweepJournal — durable before a single byte hits the wire — then
// streams the finished records as checksummed CELL frames (shard_protocol)
// to the coordinator, which journals them into the merged campaign journal
// and acks.  Delivery is at-least-once with idempotent replay: a worker
// resends unacked cells after drops, reconnects, or its own death (the local
// journal has every payload); the coordinator dedupes by cell index.
//
// Liveness is deterministic: lease deadlines are counted in coordinator
// protocol ops (frames handled), never in wall time — the same pure
// hash-of-(seed, channel, op#) clock discipline FaultyTransport uses.  A
// lease holder that stays silent for `lease_deadline_ops` ops (while other
// workers' chatter advances the clock) is declared permanently dead: its
// link is closed, its unfinished cells return to the pool and are granted to
// survivors.  A dead *link* (EOF, netsim switch death) fails the lease
// immediately.  A returning "zombie" worker streams its stale local journal
// first; the dedupe path absorbs every late cell, so the merged journal is
// byte-identical to an uninterrupted local run no matter which process died
// when — the property distributed_torture pins, including permanent-death
// schedules that kill a worker forever at every send op.
//
// Poison-cell quarantine: a cell whose lease fails under kMaxLeaseAttempts
// *distinct* workers is assumed to kill whoever touches it.  It is journaled
// as a `poison` record (holding the slot so the campaign resolves instead of
// wedging) and reported loudly; CoordinatorService::result() then throws
// core::LeaseExpired rather than hand back a table with holes.
//
// Compatibility spelling: a ShardSpec with of > 0 still names the historic
// static `cell % of` shard.  Online it behaves exactly like a lease worker —
// it pre-simulates its shard durably, streams it, then pulls leases for
// whatever remains — and offline it degrades to simulating the static shard
// into the local journal, reporting the cells as buffered.  Re-running the
// worker once the coordinator is back re-streams them without re-simulating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/transport.hpp"
#include "experiment/parallel_census.hpp"
#include "monitoring/retry_policy.hpp"

namespace zerodeg::core {
class FileSystem;
}  // namespace zerodeg::core

namespace zerodeg::experiment {

/// A lease that fails under this many distinct workers marks its cell as
/// poison: quarantined, reported, never granted again.
inline constexpr std::size_t kMaxLeaseAttempts = 3;

/// Which slice of the campaign a worker owns.  `of > 0`: the static shard of
/// cells where index % of == shard.  `of == 0`: lease mode — no static
/// ownership, the coordinator assigns work; `shard` is just a label.
struct ShardSpec {
    std::size_t shard = 0;
    std::size_t of = 1;
};

/// The cell indices of `spec` within a campaign of `cells` cells, ascending.
/// Requires a static spec (of > 0).
[[nodiscard]] std::vector<std::size_t> shard_cells(std::size_t cells, const ShardSpec& spec);

/// The config of a single campaign cell, exactly as ParallelCensus would
/// build it (same seed derivation, same per-cell validation context).
[[nodiscard]] ExperimentConfig cell_config(const CensusPlan& plan, std::size_t index);

/// One cell's unit of work: plan.run_cell if set, else run_season_census.
[[nodiscard]] FaultCensus run_cell(const CensusPlan& plan, const ExperimentConfig& config);

struct WorkerOptions {
    std::size_t jobs = 1;  ///< fan-out for the local simulate phase
    bool resume = true;    ///< reuse cells already in the local journal
    /// Frame resend budget: a CELL frame gets max_attempts tries (sends
    /// swallowed by the link or left unacked past the ack timeout count as
    /// failed attempts).  The backoff fields are not waited out in wall time
    /// — the ack timeout itself is the pacing — but max_attempts is honoured
    /// exactly.  Note a cell undelivered within one lease is not lost: the
    /// coordinator re-grants the lease on the worker's next pull, so even a
    /// zero-retry policy converges while the link stays alive.
    monitoring::CollectorRetryPolicy retry{.max_attempts = 4};
    /// How long to wait for an ack (or the next lease) before charging a
    /// resend attempt / sending the next pull.  -1 would block forever; keep
    /// it finite so lost frames are survivable.
    int ack_timeout_ms = 2000;
    /// Called to (re)establish the coordinator link after TransportClosed.
    /// May return nullptr ("coordinator is gone") to trigger degraded mode.
    std::function<std::unique_ptr<core::Transport>()> reconnect;
    int max_reconnects = 3;           ///< reconnect budget per worker run
    core::FileSystem* fs = nullptr;   ///< local journal I/O seam
    std::function<void(const std::string&)> log;  ///< optional progress lines
};

struct WorkerReport {
    std::size_t shard = 0;
    std::size_t of = 1;              ///< 0 = lease mode
    std::size_t cells_owned = 0;     ///< static shard size, or distinct cells touched
    std::size_t cells_computed = 0;  ///< simulated fresh this run
    std::size_t cells_reused = 0;    ///< found in the local journal
    std::size_t leases_held = 0;     ///< LEASE grants processed
    std::size_t heartbeats_sent = 0;
    std::size_t link_sends = 0;      ///< every send() issued on the link
    std::size_t resends = 0;         ///< CELL frames sent beyond the first try
    std::size_t drops_absorbed = 0;  ///< sends swallowed by the faulty link
    std::size_t acked = 0;           ///< ACK frames heard (dedup by index)
    std::size_t buffered = 0;        ///< cells journaled locally but never acked
    std::uint64_t buffered_bytes = 0;  ///< wire bytes of those unacked records
    int reconnects = 0;
    bool coordinator_reached = false;  ///< handshake completed at least once
    bool done_received = false;        ///< coordinator declared the campaign resolved
    bool degraded = false;  ///< finished with unacked cells and no DONE
};

/// Run one worker: pull leases over `link` (see the file comment for the
/// static-shard compatibility spelling), simulating granted cells into the
/// local journal at `journal_path` — opened with the *full-campaign* key, so
/// the file is a valid resume point for a local run too — and streaming them
/// until the coordinator sends DONE.  `link` may be nullptr: offline mode,
/// simulate + journal only (static specs only; a lease worker has nothing to
/// do offline).  Throws core::StaleJournal if the coordinator rejects the
/// handshake, and lets core::SimulatedCrash propagate (the torture
/// harness's kill switch).
[[nodiscard]] WorkerReport run_worker(const CensusPlan& plan, const ShardSpec& spec,
                                      const std::filesystem::path& journal_path,
                                      std::unique_ptr<core::Transport> link,
                                      const WorkerOptions& opts = {});

/// Deterministic kill schedule for the coordinator, by global frame number.
struct CoordinatorCrashPlan {
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    /// Crash while handling the Nth frame received (0-based, counted across
    /// all links in arrival order).
    std::size_t crash_at_frame = kNever;
    /// Where in the handling of that frame to die:
    enum class Phase {
        kOnFrame,      ///< frame decoded, nothing durable yet
        kAfterRecord,  ///< journal/lease state updated, no reply sent
        kAfterReply,   ///< reply (ack/welcome/lease) already on the wire
    };
    Phase phase = Phase::kOnFrame;
};

struct CoordinatorOptions {
    bool resume = true;
    CoordinatorCrashPlan crash;
    /// Give up after this many consecutive idle polls — polls that accepted
    /// no link and handled no valid frame — while the journal is still
    /// unresolved.  0 = wait until request_stop().  Any valid frame resets
    /// the budget: a slow-simulating but heartbeating worker keeps the
    /// coordinator alive (corrupt frames do not).
    int idle_give_up_polls = 0;
    /// Bounded tries for each reply frame swallowed as TransientError by a
    /// faulty link before the reply is abandoned (the worker's own resend or
    /// re-pull covers the loss).
    int reply_attempts = 4;
    /// Cells per lease grant.
    std::size_t lease_chunk = 4;
    /// A lease holder silent for this many coordinator protocol ops (frames
    /// handled, across all links) is declared permanently dead and its lease
    /// reassigned.  Counted in ops, not wall time: a lone slow worker can
    /// never expire (nothing advances the clock), only a worker that stays
    /// silent while the rest of the campaign makes progress.
    std::uint64_t lease_deadline_ops = 1024;
    /// Distinct failed holders after which a cell is quarantined as poison.
    std::size_t max_lease_attempts = kMaxLeaseAttempts;
    core::FileSystem* fs = nullptr;
    std::function<void(const std::string&)> log;
};

struct CoordinatorReport {
    std::size_t frames = 0;          ///< frames received (all types, all links)
    std::size_t cells_recorded = 0;  ///< fresh cells journaled
    std::size_t duplicates = 0;      ///< CELL frames deduped by index
    std::size_t acks_sent = 0;
    std::size_t leases_granted = 0;  ///< fresh LEASE grants (re-sends excluded)
    std::size_t leases_expired = 0;  ///< leases withdrawn (deadline or dead link)
    std::size_t heartbeats = 0;
    std::size_t progress_frames = 0;
    std::size_t rejected_hellos = 0;
    std::size_t corrupt_frames = 0;  ///< frames that failed decode (rejected)
    std::size_t links_accepted = 0;
    std::size_t links_dropped = 0;  ///< links that died mid-conversation
    std::size_t quarantined = 0;    ///< poison cells in the merged journal
    bool resolved = false;          ///< every cell recorded or quarantined
    bool completed = false;         ///< merged journal holds every cell
};

/// The campaign supervisor: accepts worker links from a Listener, grants
/// leases, journals streamed cells into the merged campaign journal, acks,
/// dedupes replays, reassigns the leases of dead workers and quarantines
/// poison cells.  Single-threaded: serve() multiplexes links by polling, and
/// returns when the campaign resolves, request_stop() is called, or the idle
/// budget runs out.  A CoordinatorCrashPlan kill throws
/// core::SimulatedCrash out of serve() with all links closed, so peers
/// observe a real process death.
class CoordinatorService {
public:
    CoordinatorService(CensusPlan plan, std::filesystem::path journal_path,
                       CoordinatorOptions opts = {});

    /// Blocks serving workers on `listener`.  Returns the report; throws
    /// core::SimulatedCrash on a planned kill.
    CoordinatorReport serve(core::Listener& listener);

    /// Thread-safe: ask a blocked serve() to wind down at its next poll.
    void request_stop();

    [[nodiscard]] const SweepJournalKey& key() const;
    [[nodiscard]] bool complete() const;
    [[nodiscard]] std::size_t merged() const;  ///< cells already in the journal
    [[nodiscard]] std::size_t quarantined() const;  ///< poison cells held

    /// The campaign result assembled from the merged journal.  Requires
    /// complete(): throws core::LeaseExpired when poison cells were
    /// quarantined (the table would have holes), core::Error when simply
    /// incomplete.
    [[nodiscard]] CensusResult result() const;

    ~CoordinatorService();
    CoordinatorService(const CoordinatorService&) = delete;
    CoordinatorService& operator=(const CoordinatorService&) = delete;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// In-process distributed campaign: one coordinator thread + `workers`
/// lease-mode worker threads over loopback links, every link wrapped in a
/// FaultyTransport.  This is the harness run_distributed-based tests and the
/// torture campaign drive; the CLI wires the same pieces over unix sockets.
struct DistributedOptions {
    std::size_t workers = 2;
    std::size_t worker_jobs = 1;
    bool resume = true;
    /// Per-worker link fault plans; missing entries get a clean plan.
    std::vector<core::TransportFaultPlan> worker_faults;
    CoordinatorCrashPlan coordinator_crash;
    monitoring::CollectorRetryPolicy retry{.max_attempts = 4};
    int ack_timeout_ms = 250;  ///< loopback acks are instant; keep kills fast
    std::size_t lease_chunk = 2;
    std::uint64_t lease_deadline_ops = 1024;
    std::size_t max_lease_attempts = kMaxLeaseAttempts;
    /// Restart a worker that died to a planned link crash, once, over a
    /// clean link — the torture harness's "operator reboots the node".
    /// Without it the survivors absorb the dead worker's lease and the
    /// campaign still completes (permanent-death torture).
    bool restart_crashed_workers = false;
    core::FileSystem* fs = nullptr;  ///< journal I/O seam for every process
};

struct DistributedOutcome {
    CoordinatorReport coordinator;
    std::vector<WorkerReport> workers;     ///< final report per worker
    std::vector<bool> worker_crashed;      ///< planned link kill fired
    std::size_t worker_restarts = 0;
    bool coordinator_crashed = false;
    CensusResult result;  ///< valid when coordinator.completed
};

/// Journal layout under a scratch directory.
[[nodiscard]] std::filesystem::path merged_journal_path(const std::filesystem::path& scratch);
[[nodiscard]] std::filesystem::path worker_journal_path(const std::filesystem::path& scratch,
                                                        std::size_t shard);

[[nodiscard]] DistributedOutcome run_distributed(const CensusPlan& plan,
                                                 const std::filesystem::path& scratch,
                                                 const DistributedOptions& opts = {});

/// Cross-process crash torture: enumerate every worker send point and every
/// coordinator frame from a clean counting run, then kill each process at
/// each point.  Three matrices plus a poison scenario:
///   * transient worker kills — the operator reboots the node
///     (restart_crashed_workers) and the campaign converges;
///   * permanent worker kills — no reboot; the survivors must absorb the
///     dead worker's lease (needs >= 2 workers);
///   * coordinator kills at every frame, all three phases, resumed by a
///     second clean run;
///   * a poison cell every worker crashes on — quarantine must engage and
///     the campaign must resolve with exactly that cell poisoned.
/// Every completed campaign is byte-compared (merged journal + rendered
/// census table) against an uninterrupted local reference.  Lease schedules
/// vary with thread interleaving, so a planned kill op that a given run
/// never reaches is checked as a clean campaign instead of counted as a
/// failure (`unfired_kills` reports how many).
struct DistributedTortureOptions {
    std::size_t workers = 2;
    std::size_t jobs = 1;
    bool verbose = false;
};

struct DistributedTortureReport {
    std::size_t worker_send_points = 0;  ///< send ops enumerated across workers
    std::size_t coordinator_frames = 0;
    std::size_t crash_points = 0;      ///< kills scheduled (fired or not)
    std::size_t permanent_kills = 0;   ///< permanent-death schedules exercised
    std::size_t unfired_kills = 0;     ///< schedules the run never reached
    std::size_t quarantine_checks = 0; ///< poison scenarios that engaged quarantine
    std::size_t resumes = 0;
    std::size_t mismatches = 0;
    [[nodiscard]] bool passed() const {
        return mismatches == 0 && crash_points > 0 && quarantine_checks > 0;
    }
};

[[nodiscard]] DistributedTortureReport distributed_torture(const CensusPlan& plan,
                                                           const std::filesystem::path& scratch,
                                                           const DistributedTortureOptions& opts,
                                                           std::ostream& log);

}  // namespace zerodeg::experiment
