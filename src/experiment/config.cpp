#include "experiment/config.hpp"

namespace zerodeg::experiment {

TimePoint next_operator_visit(TimePoint t, int operator_hour) {
    core::CivilDateTime c = t.to_civil();
    c.hour = operator_hour;
    c.minute = 0;
    c.second = 0;
    TimePoint visit = TimePoint::from_civil(c);
    if (visit <= t) visit += Duration::days(1);
    // Skip the weekend: Saturday -> Monday, Sunday -> Monday.
    while (visit.iso_weekday() > 5) visit += Duration::days(1);
    return visit;
}

}  // namespace zerodeg::experiment
