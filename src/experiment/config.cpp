#include "experiment/config.hpp"

#include <bit>
#include <cstdint>
#include <string>

#include "core/error.hpp"

namespace zerodeg::experiment {

const char* to_string(TickEngine engine) {
    switch (engine) {
        case TickEngine::kPerObject: return "per-object";
        case TickEngine::kBatched: return "batched";
    }
    throw core::InvalidArgument("to_string(TickEngine): bad enum value");
}

const char* to_string(WorkloadKind kind) {
    switch (kind) {
        case WorkloadKind::kArchive: return "archive";
        case WorkloadKind::kTraffic: return "traffic";
    }
    throw core::InvalidArgument("to_string(WorkloadKind): bad enum value");
}

TimePoint next_operator_visit(TimePoint t, int operator_hour) {
    core::CivilDateTime c = t.to_civil();
    c.hour = operator_hour;
    c.minute = 0;
    c.second = 0;
    TimePoint visit = TimePoint::from_civil(c);
    if (visit <= t) visit += Duration::days(1);
    // Skip the weekend: Saturday -> Monday, Sunday -> Monday.
    while (visit.iso_weekday() > 5) visit += Duration::days(1);
    return visit;
}

void validate(const ExperimentConfig& config) {
    const auto fail = [](const std::string& why) {
        throw core::InvalidArgument("ExperimentConfig: " + why);
    };
    if (config.end <= config.start) {
        fail("end (" + config.end.to_string() + ") must be after start (" +
             config.start.to_string() + ")");
    }
    if (config.tick.count() <= 0) fail("tick must be positive");
    if (config.readout_interval.count() <= 0) fail("readout_interval must be positive");
    if (config.operator_hour < 0 || config.operator_hour > 23) {
        fail("operator_hour must be in [0, 23], got " + std::to_string(config.operator_hour));
    }
    if (config.replacement_lead.count() < 0) fail("replacement_lead must be nonnegative");
    if (config.switch_defect_mean_hours <= 0.0) {
        fail("switch_defect_mean_hours must be positive");
    }
    if (config.load.target_blocks == 0) fail("load.target_blocks must be nonzero");
    if (config.load.corpus.total_bytes == 0) fail("load.corpus.total_bytes must be nonzero");
    if (config.load.corpus.mean_file_bytes == 0) {
        fail("load.corpus.mean_file_bytes must be nonzero");
    }
    if (config.load.corpus.top_level_dirs == 0) fail("load.corpus.top_level_dirs must be nonzero");
    for (std::size_t i = 1; i < config.tent_mods.size(); ++i) {
        if (config.tent_mods[i].when < config.tent_mods[i - 1].when) {
            fail("tent_mods must be in chronological order (event " + std::to_string(i) +
                 " precedes event " + std::to_string(i - 1) + ")");
        }
    }
    if (!config.weather_trace.empty() && config.weather_trace.size() < 2) {
        fail("weather_trace needs at least 2 samples to interpolate");
    }
    // Traffic knobs are validated even for archive seasons: the defaults are
    // valid, so a rejection always points at a knob someone actually set.
    if (config.traffic.service_rate <= 0.0) fail("traffic.service_rate must be positive");
    if (config.traffic.mean_demand_seconds <= 0.0) {
        fail("traffic.mean_demand_seconds must be positive");
    }
    if (config.traffic.deadline_seconds <= 0.0) fail("traffic.deadline_seconds must be positive");
    if (config.traffic.open.base_rps <= 0.0) fail("traffic.open.base_rps must be positive");
    if (config.traffic.open.diurnal_amplitude < 0.0 ||
        config.traffic.open.diurnal_amplitude >= 1.0) {
        fail("traffic.open.diurnal_amplitude must be in [0, 1)");
    }
    for (std::size_t i = 0; i < config.traffic.open.flash_crowds.size(); ++i) {
        const workload::FlashCrowd& c = config.traffic.open.flash_crowds[i];
        if (c.duration.count() <= 0 || c.multiplier < 1.0) {
            fail("traffic.open.flash_crowds[" + std::to_string(i) +
                 "] needs positive duration and multiplier >= 1");
        }
    }
    if (config.traffic.closed.users < 1) fail("traffic.closed.users must be >= 1");
    if (config.traffic.closed.think_seconds <= 0.0) {
        fail("traffic.closed.think_seconds must be positive");
    }
}

namespace {

// FNV-1a over the canonical byte stream of the mixed-in values.  Stable
// across runs and platforms with the same integer/double widths, which is
// all a journal resumed on the machine that wrote it needs.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= kFnvPrime;
    }
}

void mix(std::uint64_t& h, std::int64_t v) { mix(h, static_cast<std::uint64_t>(v)); }
void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }
void mix(std::uint64_t& h, int v) { mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
void mix(std::uint64_t& h, bool v) { mix(h, static_cast<std::uint64_t>(v ? 1 : 0)); }

}  // namespace

std::uint64_t fingerprint(const ExperimentConfig& config) {
    std::uint64_t h = kFnvOffset;
    // config.engine is deliberately NOT mixed in: the per-object and batched
    // tick engines are byte-identical, so a journal written under either
    // resumes under the other.
    mix(h, config.master_seed);
    mix(h, config.start.seconds_since_epoch());
    mix(h, config.end.seconds_since_epoch());
    mix(h, config.tick.count());
    mix(h, config.logger_start.seconds_since_epoch());
    mix(h, config.readout_interval.count());
    mix(h, config.operator_hour);
    mix(h, config.replacement_lead.count());
    mix(h, config.switch_defect_mean_hours);

    mix(h, static_cast<std::uint64_t>(config.tent_mods.size()));
    for (const TentModEvent& e : config.tent_mods) {
        mix(h, e.when.seconds_since_epoch());
        mix(h, static_cast<int>(e.mod));
    }

    mix(h, static_cast<std::uint64_t>(config.load.corpus.total_bytes));
    mix(h, static_cast<std::uint64_t>(config.load.corpus.mean_file_bytes));
    mix(h, static_cast<std::uint64_t>(config.load.corpus.top_level_dirs));
    mix(h, static_cast<std::uint64_t>(config.load.target_blocks));
    mix(h, config.load.page_op_multiplier);
    mix(h, config.load.cache_clean_runs);

    // Traffic workload: the kind selects the engine, the knobs shape it.
    mix(h, static_cast<int>(config.workload));
    mix(h, static_cast<int>(config.traffic.mode));
    mix(h, config.traffic.open.base_rps);
    mix(h, config.traffic.open.diurnal_amplitude);
    mix(h, config.traffic.open.peak_hour);
    mix(h, static_cast<std::uint64_t>(config.traffic.open.flash_crowds.size()));
    for (const workload::FlashCrowd& c : config.traffic.open.flash_crowds) {
        mix(h, c.start.seconds_since_epoch());
        mix(h, c.duration.count());
        mix(h, c.multiplier);
    }
    mix(h, config.traffic.closed.users);
    mix(h, config.traffic.closed.think_seconds);
    mix(h, config.traffic.mean_demand_seconds);
    mix(h, config.traffic.service_rate);
    mix(h, config.traffic.deadline_seconds);
    mix(h, config.traffic.clone_across_split);

    // Weather script: the anchors/snaps define the campaign's climate; the
    // OU knobs shift every cell's sample path.
    mix(h, static_cast<std::uint64_t>(config.weather.anchors.size()));
    for (const auto& a : config.weather.anchors) {
        mix(h, a.date.seconds_since_epoch());
        mix(h, a.mean.value());
    }
    mix(h, static_cast<std::uint64_t>(config.weather.cold_snaps.size()));
    for (const auto& s : config.weather.cold_snaps) {
        mix(h, s.start.seconds_since_epoch());
        mix(h, s.duration.count());
        mix(h, s.ramp.count());
        mix(h, s.depth.value());
    }
    mix(h, config.weather.diurnal_amplitude_winter.value());
    mix(h, config.weather.diurnal_amplitude_spring.value());
    mix(h, config.weather.synoptic_sigma.value());
    mix(h, config.weather.synoptic_tau.count());
    mix(h, config.weather.jitter_sigma.value());
    mix(h, config.weather.jitter_tau.count());
    mix(h, config.weather.wind_mean);
    mix(h, config.weather.wind_sigma);
    mix(h, config.weather.cloud_mean);
    mix(h, config.weather.cloud_sigma);
    mix(h, config.weather.precip_cloud_threshold);
    mix(h, config.weather.precip_rate_mm_per_h);

    // A recorded trace replaces the synthetic model wholesale; hash its
    // shape and endpoints rather than every sample.
    mix(h, static_cast<std::uint64_t>(config.weather_trace.size()));
    if (!config.weather_trace.empty()) {
        mix(h, config.weather_trace.front().time.seconds_since_epoch());
        mix(h, config.weather_trace.front().temperature.value());
        mix(h, config.weather_trace.back().time.seconds_since_epoch());
        mix(h, config.weather_trace.back().temperature.value());
    }
    return h;
}

}  // namespace zerodeg::experiment
