// Report/figure emitters shared by the bench binaries and examples: fixed-
// width tables, ASCII series plots, and the paper-vs-measured comparison row
// format used throughout EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/timeseries.hpp"

namespace zerodeg::experiment {

/// Fixed-width table printer.
class TablePrinter {
public:
    TablePrinter(std::ostream& out, std::vector<std::string> headers,
                 std::vector<int> widths);

    void row(const std::vector<std::string>& cells);
    void rule();  ///< horizontal rule

private:
    std::ostream& out_;
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

/// "paper said X, we measured Y" comparison row.
struct ComparisonRow {
    std::string quantity;
    std::string paper;
    std::string measured;
    std::string note;
};

void print_comparison(std::ostream& out, const std::string& title,
                      const std::vector<ComparisonRow>& rows);

/// ASCII line plot of one or two series on a shared daily-resampled grid —
/// enough to eyeball the Fig. 3/4 shapes in a terminal.
void ascii_plot(std::ostream& out, const core::TimeSeries& a, const core::TimeSeries* b,
                int width = 100, int height = 18);

/// Format helpers.
[[nodiscard]] std::string fmt(double v, int decimals = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);

}  // namespace zerodeg::experiment
