#include "experiment/distributed.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/io.hpp"
#include "experiment/shard_protocol.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"

namespace zerodeg::experiment {

namespace fs = std::filesystem;

std::vector<std::size_t> shard_cells(std::size_t cells, const ShardSpec& spec) {
    if (spec.of == 0 || spec.shard >= spec.of) {
        throw core::InvalidArgument("shard " + std::to_string(spec.shard) + " of " +
                                    std::to_string(spec.of) + " is not a valid shard spec");
    }
    std::vector<std::size_t> owned;
    for (std::size_t i = spec.shard; i < cells; i += spec.of) owned.push_back(i);
    return owned;
}

ExperimentConfig cell_config(const CensusPlan& plan, std::size_t index) {
    // Mirrors ParallelCensus::build_configs for a single cell: same seed
    // derivation, same per-cell validation context.  Keeping these in step is
    // what lets a worker's journal carry the full-campaign key.
    const std::uint64_t seed = plan.base_seed + index;
    ExperimentConfig cfg;
    if (plan.make_config) {
        cfg = plan.make_config(index, seed);
    } else {
        cfg.master_seed = seed;
    }
    core::with_context("census cell " + std::to_string(index), [&] { validate(cfg); });
    return cfg;
}

FaultCensus run_cell(const CensusPlan& plan, const ExperimentConfig& config) {
    return plan.run_cell ? plan.run_cell(config) : run_season_census(config);
}

namespace {

/// Per-frame resend budget from the retry policy (>= 1 try always).
int frame_attempts(const monitoring::CollectorRetryPolicy& retry) {
    return retry.max_attempts < 1 ? 1 : retry.max_attempts;
}

}  // namespace

WorkerReport run_worker(const CensusPlan& plan, const ShardSpec& spec,
                        const fs::path& journal_path, std::unique_ptr<core::Transport> link,
                        const WorkerOptions& opts) {
    WorkerReport report;
    report.shard = spec.shard;
    report.of = spec.of;

    const auto say = [&](const std::string& line) {
        if (opts.log) opts.log("worker " + std::to_string(spec.shard) + ": " + line);
    };

    // The local journal carries the *full campaign* key: it is a valid (if
    // partial) resume point for a plain local run of the whole sweep, and the
    // coordinator can validate the HELLO against the identical key.
    const SweepJournalKey key = ParallelCensus(plan, 1).journal_key();
    SweepJournal journal(journal_path, key, opts.resume, opts.fs);

    const std::vector<std::size_t> owned = shard_cells(plan.seeds, spec);
    report.cells_owned = owned.size();

    // Phase 1: simulate.  Every owned cell is durable in the local journal
    // before a single byte hits the wire, so a death anywhere in phase 2
    // resumes without re-simulating anything.
    std::vector<std::size_t> missing;
    for (std::size_t idx : owned) {
        if (journal.find(idx)) {
            ++report.cells_reused;
        } else {
            missing.push_back(idx);
        }
    }
    if (!missing.empty()) {
        const SweepRunner runner(opts.jobs);
        (void)runner.map(
            missing.size(),
            [&](std::size_t k) {
                const std::size_t idx = missing[k];
                const FaultCensus census = run_cell(plan, cell_config(plan, idx));
                journal.record(idx, census);
                return census;
            },
            core::CellRetry{plan.cell_attempts});
        report.cells_computed = missing.size();
        say("simulated " + std::to_string(missing.size()) + " cells");
    }

    // Phase 2: stream.  Single-threaded, cells in index order, one frame in
    // flight — the op sequence on the link replays deterministically, which
    // is what lets the torture harness enumerate every send as a kill point.
    std::set<std::size_t> acked;

    const auto counted_send = [&](const std::string& frame) {
        ++report.link_sends;
        link->send(frame);
    };

    // Drain replies until `want` is acked or the wait times out.  Throws
    // TransportClosed when the link dies and StaleJournal on a REJECT.
    const auto await_ack = [&](std::size_t want, int timeout_ms) -> bool {
        std::string bytes;
        while (link->recv_wait(bytes, timeout_ms)) {
            Frame frame;
            try {
                frame = decode_frame(bytes);
            } catch (const core::CorruptData&) {
                continue;  // damaged reply; the resend budget covers it
            }
            if (frame.type == FrameType::kAck) {
                if (acked.insert(frame.ack_index).second) ++report.acked;
                if (frame.ack_index == want) return true;
            } else if (frame.type == FrameType::kReject) {
                throw core::StaleJournal("coordinator rejected shard " +
                                         std::to_string(spec.shard) + ": " + frame.reason);
            }
        }
        return false;
    };

    // HELLO until WELCOME (bounded).  Throws TransportClosed / StaleJournal.
    const std::string hello = encode_hello(ShardHello{key, spec.shard, spec.of});
    const auto handshake = [&]() -> bool {
        for (int attempt = 0; attempt < frame_attempts(opts.retry); ++attempt) {
            try {
                counted_send(hello);
            } catch (const core::TransientError&) {
                ++report.drops_absorbed;
                continue;
            }
            std::string bytes;
            while (link->recv_wait(bytes, opts.ack_timeout_ms)) {
                Frame frame;
                try {
                    frame = decode_frame(bytes);
                } catch (const core::CorruptData&) {
                    continue;
                }
                if (frame.type == FrameType::kWelcome) {
                    report.coordinator_reached = true;
                    say("welcomed; coordinator holds " + std::to_string(frame.completed) +
                        " cells");
                    return true;
                }
                if (frame.type == FrameType::kReject) {
                    throw core::StaleJournal("coordinator rejected shard " +
                                             std::to_string(spec.shard) + ": " + frame.reason);
                }
            }
        }
        return false;
    };

    // (Re)connect and re-handshake.  Returns false once the budget or the
    // factory gives out — the caller degrades to local-journal-only mode.
    const auto reconnect = [&]() -> bool {
        while (report.reconnects < opts.max_reconnects) {
            ++report.reconnects;
            std::unique_ptr<core::Transport> fresh = opts.reconnect ? opts.reconnect() : nullptr;
            if (!fresh) return false;
            link = std::move(fresh);
            try {
                if (handshake()) return true;
            } catch (const core::TransportClosed&) {
                // dead again; spend another reconnect
            }
        }
        return false;
    };

    bool online = false;
    if (link) {
        try {
            online = handshake();
        } catch (const core::TransportClosed&) {
            online = reconnect();
        }
    }

    if (online) {
        for (std::size_t idx : owned) {
            if (acked.count(idx) != 0) continue;  // acks can arrive out of band
            const FaultCensus* census = journal.find(idx);
            const std::string frame = encode_cell(idx, *census);
            bool delivered = false;
            int attempt = 0;
            while (attempt < frame_attempts(opts.retry) && !delivered) {
                ++attempt;
                try {
                    bool sent = true;
                    try {
                        counted_send(frame);
                        if (attempt > 1) ++report.resends;
                    } catch (const core::TransientError&) {
                        ++report.drops_absorbed;  // link ate it; charge the attempt
                        sent = false;
                    }
                    if (sent && await_ack(idx, opts.ack_timeout_ms)) delivered = true;
                } catch (const core::TransportClosed&) {
                    if (!reconnect()) {
                        online = false;
                        break;
                    }
                    attempt = 0;  // fresh link: this cell gets a fresh budget
                }
            }
            if (!online) break;
            // An undelivered cell within an alive link (lost acks) just stays
            // buffered; later cells still get their chance.
        }
    }

    for (std::size_t idx : owned) {
        if (acked.count(idx) == 0) {
            ++report.buffered;
            report.buffered_bytes += encode_cell(idx, *journal.find(idx)).size();
        }
    }
    report.degraded = report.buffered > 0;
    if (report.degraded) {
        say("degraded: " + std::to_string(report.buffered) +
            " cells buffered in the local journal");
    }
    if (link) link->close();
    return report;
}

// ---------------------------------------------------------------------------
// CoordinatorService

struct CoordinatorService::Impl {
    CensusPlan plan;
    CoordinatorOptions opts;
    SweepJournalKey campaign;
    SweepJournal journal;
    CoordinatorReport report;
    std::atomic<bool> stop{false};

    Impl(CensusPlan plan_in, fs::path path, CoordinatorOptions opts_in)
        : plan(std::move(plan_in)),
          opts(std::move(opts_in)),
          campaign(ParallelCensus(plan, 1).journal_key()),
          journal(std::move(path), campaign, opts.resume, opts.fs) {}
};

CoordinatorService::CoordinatorService(CensusPlan plan, fs::path journal_path,
                                       CoordinatorOptions opts)
    : impl_(std::make_unique<Impl>(std::move(plan), std::move(journal_path), std::move(opts))) {}

CoordinatorService::~CoordinatorService() = default;

void CoordinatorService::request_stop() { impl_->stop.store(true); }

const SweepJournalKey& CoordinatorService::key() const { return impl_->campaign; }

bool CoordinatorService::complete() const { return impl_->journal.complete(); }

std::size_t CoordinatorService::merged() const { return impl_->journal.completed(); }

CensusResult CoordinatorService::result() const {
    if (!impl_->journal.complete()) {
        throw core::Error("coordinator journal '" + impl_->journal.path().string() + "' holds " +
                          std::to_string(impl_->journal.completed()) + "/" +
                          std::to_string(impl_->campaign.cells) + " cells; campaign incomplete");
    }
    CensusResult result;
    result.censuses.reserve(impl_->campaign.cells);
    for (std::size_t i = 0; i < impl_->campaign.cells; ++i) {
        result.censuses.push_back(*impl_->journal.find(i));
    }
    result.summary = summarize(result.censuses);
    return result;
}

CoordinatorReport CoordinatorService::serve(core::Listener& listener) {
    using Phase = CoordinatorCrashPlan::Phase;
    Impl& im = *impl_;
    std::vector<std::unique_ptr<core::Transport>> links;

    const auto say = [&](const std::string& line) {
        if (im.opts.log) im.opts.log("coordinator: " + line);
    };

    // Planned process death: close everything a real kill would take down
    // (peers must observe the loss), then unwind as SimulatedCrash.
    const auto crash_check = [&](Phase phase, std::size_t frame_index) {
        if (frame_index != im.opts.crash.crash_at_frame || phase != im.opts.crash.phase) return;
        for (auto& link : links) link->close();
        links.clear();
        listener.close();
        throw core::SimulatedCrash("coordinator killed handling frame " +
                                   std::to_string(frame_index) + " (phase " +
                                   std::to_string(static_cast<int>(phase)) + ")");
    };

    // Bounded reply: a faulty link may swallow sends as TransientError — the
    // worker's resend covers an abandoned ack.  TransportClosed propagates.
    const auto reply = [&](core::Transport& link, const std::string& frame) -> bool {
        const int attempts = im.opts.reply_attempts < 1 ? 1 : im.opts.reply_attempts;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            try {
                link.send(frame);
                return true;
            } catch (const core::TransientError&) {
                // swallowed; retry
            }
        }
        return false;
    };

    const auto handle_frame = [&](core::Transport& link, const std::string& bytes) {
        const std::size_t frame_index = im.report.frames++;
        crash_check(Phase::kOnFrame, frame_index);
        Frame frame;
        try {
            frame = decode_frame(bytes);
            if (frame.type == FrameType::kCell && frame.cell.index >= im.campaign.cells) {
                throw core::CorruptData("cell index " + std::to_string(frame.cell.index) +
                                        " outside campaign of " +
                                        std::to_string(im.campaign.cells));
            }
        } catch (const core::CorruptData& err) {
            ++im.report.corrupt_frames;
            say(std::string("rejecting corrupt frame: ") + err.what());
            reply(link, encode_reject(err.what()));
            return;
        }
        switch (frame.type) {
            case FrameType::kHello: {
                const bool match = frame.hello.key == im.campaign;
                if (!match) ++im.report.rejected_hellos;
                crash_check(Phase::kAfterRecord, frame_index);
                if (match) {
                    say("shard " + std::to_string(frame.hello.shard) + "/" +
                        std::to_string(frame.hello.of) + " joined");
                    reply(link, encode_welcome(im.journal.completed()));
                } else {
                    reply(link, encode_reject(
                                    "campaign mismatch: coordinator serves base_seed " +
                                    std::to_string(im.campaign.cells) + "-cell campaign " +
                                    std::to_string(im.campaign.base_seed)));
                }
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            case FrameType::kCell: {
                if (im.journal.find(frame.cell.index) != nullptr) {
                    ++im.report.duplicates;  // replay after a loss: dedupe, re-ack
                } else {
                    im.journal.record(frame.cell.index, frame.cell.census);
                    ++im.report.cells_recorded;
                }
                crash_check(Phase::kAfterRecord, frame_index);
                if (reply(link, encode_ack(frame.cell.index))) ++im.report.acks_sent;
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            case FrameType::kWelcome:
            case FrameType::kReject:
            case FrameType::kAck:
                break;  // coordinator-to-worker frames echoed back; ignore
        }
    };

    int idle_polls = 0;
    while (true) {
        if (im.stop.load()) break;
        if (im.journal.complete()) {
            im.report.completed = true;
            break;
        }

        bool progress = false;
        while (std::unique_ptr<core::Transport> fresh = listener.accept(0)) {
            links.push_back(std::move(fresh));
            ++im.report.links_accepted;
            progress = true;
        }

        for (auto it = links.begin(); it != links.end();) {
            bool dead = false;
            try {
                std::string bytes;
                while ((*it)->try_recv(bytes)) {
                    progress = true;
                    handle_frame(**it, bytes);
                }
            } catch (const core::TransportClosed&) {
                dead = true;
            }
            if (dead) {
                ++im.report.links_dropped;
                it = links.erase(it);
            } else {
                ++it;
            }
        }

        if (progress) {
            idle_polls = 0;
        } else {
            if (links.empty() && im.opts.idle_give_up_polls > 0 &&
                ++idle_polls >= im.opts.idle_give_up_polls) {
                say("no workers; giving up at " + std::to_string(im.journal.completed()) + "/" +
                    std::to_string(im.campaign.cells) + " cells");
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    im.report.completed = im.journal.complete();
    for (auto& link : links) link->close();
    return im.report;
}

// ---------------------------------------------------------------------------
// In-process distributed harness

fs::path merged_journal_path(const fs::path& scratch) { return scratch / "merged.journal"; }

fs::path worker_journal_path(const fs::path& scratch, std::size_t shard) {
    return scratch / ("worker-" + std::to_string(shard) + ".journal");
}

DistributedOutcome run_distributed(const CensusPlan& plan, const fs::path& scratch,
                                   const DistributedOptions& opts) {
    if (opts.workers == 0) throw core::InvalidArgument("a distributed run needs >= 1 worker");
    fs::create_directories(scratch);

    DistributedOutcome out;
    out.workers.resize(opts.workers);
    out.worker_crashed.assign(opts.workers, false);

    CoordinatorOptions copts;
    copts.resume = opts.resume;
    copts.crash = opts.coordinator_crash;
    copts.fs = opts.fs;
    CoordinatorService service(plan, merged_journal_path(scratch), copts);

    core::LoopbackListener listener;
    std::exception_ptr coordinator_error;
    std::thread coordinator([&] {
        try {
            out.coordinator = service.serve(listener);
        } catch (const core::SimulatedCrash&) {
            out.coordinator_crashed = true;
        } catch (...) {
            coordinator_error = std::current_exception();
        }
        // A finished (or dead) coordinator takes its socket down with it:
        // blocked and future connects observe TransportClosed, not a hang.
        listener.close();
    });

    // One worker pass over a possibly-faulty link.  Returns true if the
    // planned link kill fired (SimulatedCrash); other failures propagate.
    const auto run_one = [&](std::size_t shard, const core::TransportFaultPlan& faults,
                             const std::string& channel, bool resume) -> bool {
        WorkerOptions wopts;
        wopts.jobs = opts.worker_jobs;
        wopts.resume = resume;
        wopts.retry = opts.retry;
        wopts.ack_timeout_ms = opts.ack_timeout_ms;
        wopts.fs = opts.fs;
        wopts.reconnect = [&listener]() -> std::unique_ptr<core::Transport> {
            // Reconnects are clean links: the fault plan modelled the first
            // connection's network; a re-dial is the operator's fresh cable.
            try {
                return listener.connect();
            } catch (const core::TransportClosed&) {
                return nullptr;
            }
        };
        std::unique_ptr<core::Transport> link;
        try {
            link = std::make_unique<core::FaultyTransport>(faults, channel, listener.connect());
        } catch (const core::TransportClosed&) {
            link = nullptr;  // coordinator already gone: offline mode
        }
        try {
            out.workers[shard] = run_worker(plan, ShardSpec{shard, opts.workers},
                                            worker_journal_path(scratch, shard), std::move(link),
                                            wopts);
            return false;
        } catch (const core::SimulatedCrash&) {
            return true;
        }
    };

    std::vector<std::exception_ptr> worker_errors(opts.workers);
    {
        std::vector<std::thread> threads;
        threads.reserve(opts.workers);
        for (std::size_t w = 0; w < opts.workers; ++w) {
            threads.emplace_back([&, w] {
                try {
                    const core::TransportFaultPlan faults = w < opts.worker_faults.size()
                                                               ? opts.worker_faults[w]
                                                               : core::TransportFaultPlan{};
                    out.worker_crashed[w] =
                        run_one(w, faults, "worker." + std::to_string(w), opts.resume);
                } catch (...) {
                    worker_errors[w] = std::current_exception();
                }
            });
        }
        for (std::thread& t : threads) t.join();
    }

    // The operator walks to the tent and reboots dead nodes: each crashed
    // worker gets one clean-link rerun that resumes from its local journal.
    if (opts.restart_crashed_workers) {
        for (std::size_t w = 0; w < opts.workers; ++w) {
            if (!out.worker_crashed[w] || worker_errors[w]) continue;
            ++out.worker_restarts;
            try {
                (void)run_one(w, core::TransportFaultPlan{},
                              "worker." + std::to_string(w) + ".restart", /*resume=*/true);
            } catch (...) {
                worker_errors[w] = std::current_exception();
            }
        }
    }

    service.request_stop();
    coordinator.join();
    if (coordinator_error) std::rethrow_exception(coordinator_error);
    for (const std::exception_ptr& err : worker_errors) {
        if (err) std::rethrow_exception(err);
    }
    if (out.coordinator.completed) out.result = service.result();
    return out;
}

// ---------------------------------------------------------------------------
// Cross-process crash torture

namespace {

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw core::IoError("cannot read '" + path.string() + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void scrub(const fs::path& dir) {
    fs::remove_all(dir);
    fs::create_directories(dir);
}

}  // namespace

DistributedTortureReport distributed_torture(const CensusPlan& plan, const fs::path& scratch,
                                             const DistributedTortureOptions& opts,
                                             std::ostream& log) {
    using Phase = CoordinatorCrashPlan::Phase;
    DistributedTortureReport report;
    fs::create_directories(scratch);

    // The uninterrupted local reference: rendered table + journal bytes.
    const fs::path ref_dir = scratch / "reference";
    scrub(ref_dir);
    const ParallelCensus reference(plan, opts.jobs);
    std::string ref_render;
    std::string ref_journal_bytes;
    {
        SweepJournal journal(merged_journal_path(ref_dir), reference.journal_key(), false);
        ref_render = render_census_table(reference.run(journal), plan.base_seed);
        ref_journal_bytes = slurp(merged_journal_path(ref_dir));
    }

    DistributedOptions base;
    base.workers = opts.workers;
    base.worker_jobs = opts.jobs;
    base.ack_timeout_ms = 2000;

    const auto check = [&](const std::string& what, const fs::path& dir,
                           const DistributedOutcome& outcome) {
        if (!outcome.coordinator.completed) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": campaign incomplete ("
                << outcome.coordinator.cells_recorded << " cells recorded)\n";
            return;
        }
        const std::string render = render_census_table(outcome.result, plan.base_seed);
        const std::string journal_bytes = slurp(merged_journal_path(dir));
        if (render != ref_render) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": rendered census differs from reference\n";
        }
        if (journal_bytes != ref_journal_bytes) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": merged journal bytes differ from reference\n";
        }
    };

    // Counting run: a clean distributed campaign fixes the deterministic op
    // schedule — every worker's send count and the coordinator's frame count
    // become the kill points to enumerate.
    const fs::path clean_dir = scratch / "clean";
    scrub(clean_dir);
    const DistributedOutcome clean = run_distributed(plan, clean_dir, base);
    check("clean distributed run", clean_dir, clean);
    std::vector<std::size_t> send_points;
    for (const WorkerReport& worker : clean.workers) {
        send_points.push_back(worker.link_sends);
        report.worker_send_points += worker.link_sends;
    }
    report.coordinator_frames = clean.coordinator.frames;
    log << "distributed torture: " << opts.workers << " workers, " << report.worker_send_points
        << " worker send points, " << report.coordinator_frames << " coordinator frames\n";

    // Kill each worker at every send op, both phases; the operator reboot
    // (restart_crashed_workers) must converge on the reference bytes.
    const fs::path kill_dir = scratch / "kill";
    for (std::size_t w = 0; w < opts.workers; ++w) {
        for (std::size_t op = 0; op < send_points[w]; ++op) {
            for (const core::NetCrashPhase phase :
                 {core::NetCrashPhase::kBeforeOp, core::NetCrashPhase::kAfterOp}) {
                scrub(kill_dir);
                DistributedOptions run = base;
                run.restart_crashed_workers = true;
                run.worker_faults.assign(opts.workers, core::TransportFaultPlan{});
                run.worker_faults[w].crash_at_send = op;
                run.worker_faults[w].crash_phase = phase;
                const DistributedOutcome outcome = run_distributed(plan, kill_dir, run);
                ++report.crash_points;
                ++report.resumes;
                const std::string what =
                    "worker " + std::to_string(w) + " killed at send " + std::to_string(op) +
                    (phase == core::NetCrashPhase::kBeforeOp ? " (before)" : " (after)");
                if (opts.verbose) log << "  " << what << "\n";
                if (!outcome.worker_crashed[w]) {
                    ++report.mismatches;
                    log << "MISMATCH " << what << ": planned kill never fired\n";
                    continue;
                }
                check(what, kill_dir, outcome);
            }
        }
    }

    // Kill the coordinator at every frame, all three phases: die before
    // anything durable, after the journal write but before the ack, and
    // after the ack.  A second, clean run resumes the merged journal and the
    // workers' local journals and must converge byte-identically.
    for (std::size_t frame = 0; frame < report.coordinator_frames; ++frame) {
        for (const Phase phase : {Phase::kOnFrame, Phase::kAfterRecord, Phase::kAfterReply}) {
            scrub(kill_dir);
            DistributedOptions run = base;
            run.coordinator_crash.crash_at_frame = frame;
            run.coordinator_crash.phase = phase;
            const DistributedOutcome crashed = run_distributed(plan, kill_dir, run);
            ++report.crash_points;
            const std::string what = "coordinator killed at frame " + std::to_string(frame) +
                                     " phase " + std::to_string(static_cast<int>(phase));
            if (opts.verbose) log << "  " << what << "\n";
            if (!crashed.coordinator_crashed) {
                ++report.mismatches;
                log << "MISMATCH " << what << ": planned kill never fired\n";
                continue;
            }
            const DistributedOutcome resumed = run_distributed(plan, kill_dir, base);
            ++report.resumes;
            check(what + " + resume", kill_dir, resumed);
        }
    }

    log << "distributed torture: " << report.crash_points << " kills, " << report.resumes
        << " resumes, " << report.mismatches << " mismatches\n";
    return report;
}

}  // namespace zerodeg::experiment
