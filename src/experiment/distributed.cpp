#include "experiment/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/io.hpp"
#include "experiment/shard_protocol.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"

namespace zerodeg::experiment {

namespace fs = std::filesystem;

std::vector<std::size_t> shard_cells(std::size_t cells, const ShardSpec& spec) {
    if (spec.of == 0 || spec.shard >= spec.of) {
        throw core::InvalidArgument("shard " + std::to_string(spec.shard) + " of " +
                                    std::to_string(spec.of) + " is not a valid static shard spec");
    }
    std::vector<std::size_t> owned;
    for (std::size_t i = spec.shard; i < cells; i += spec.of) owned.push_back(i);
    return owned;
}

ExperimentConfig cell_config(const CensusPlan& plan, std::size_t index) {
    // Mirrors ParallelCensus::build_configs for a single cell: same seed
    // derivation, same per-cell validation context.  Keeping these in step is
    // what lets a worker's journal carry the full-campaign key.
    const std::uint64_t seed = plan.base_seed + index;
    ExperimentConfig cfg;
    if (plan.make_config) {
        cfg = plan.make_config(index, seed);
    } else {
        cfg.master_seed = seed;
    }
    core::with_context("census cell " + std::to_string(index), [&] { validate(cfg); });
    return cfg;
}

FaultCensus run_cell(const CensusPlan& plan, const ExperimentConfig& config) {
    return plan.run_cell ? plan.run_cell(config) : run_season_census(config);
}

namespace {

/// Per-frame resend budget from the retry policy (>= 1 try always).
int frame_attempts(const monitoring::CollectorRetryPolicy& retry) {
    return retry.max_attempts < 1 ? 1 : retry.max_attempts;
}

}  // namespace

WorkerReport run_worker(const CensusPlan& plan, const ShardSpec& spec,
                        const fs::path& journal_path, std::unique_ptr<core::Transport> link,
                        const WorkerOptions& opts) {
    const bool lease_mode = spec.of == 0;
    WorkerReport report;
    report.shard = spec.shard;
    report.of = spec.of;

    const auto say = [&](const std::string& line) {
        if (opts.log) opts.log("worker " + std::to_string(spec.shard) + ": " + line);
    };

    // The local journal carries the *full campaign* key: it is a valid (if
    // partial) resume point for a plain local run of the whole sweep, and the
    // coordinator can validate the HELLO against the identical key.
    const SweepJournalKey key = ParallelCensus(plan, 1).journal_key();
    SweepJournal journal(journal_path, key, opts.resume, opts.fs);

    const SweepRunner runner(opts.jobs);
    std::set<std::size_t> touched;  ///< distinct cells this run handled
    std::set<std::size_t> acked;
    std::optional<Lease> granted;  ///< latest lease off the wire, unprocessed
    bool done = false;             ///< coordinator sent DONE
    bool welcomed = false;         ///< WELCOME seen on the *current* link

    const auto counted_send = [&](const std::string& frame) {
        ++report.link_sends;
        link->send(frame);
    };

    // Best-effort send: a frame the faulty link swallows (TransientError) is
    // charged, not retried here — leases re-grant and cells resend anyway.
    const auto soft_send = [&](const std::string& frame) -> bool {
        try {
            counted_send(frame);
            return true;
        } catch (const core::TransientError&) {
            ++report.drops_absorbed;
            return false;
        }
    };

    const auto send_heartbeat = [&](std::uint64_t lease_id) {
        ++report.heartbeats_sent;
        (void)soft_send(encode_heartbeat(lease_id));
    };

    const auto on_frame = [&](const Frame& frame) {
        switch (frame.type) {
            case FrameType::kAck:
                if (acked.insert(frame.ack_index).second) ++report.acked;
                break;
            case FrameType::kWelcome:
                welcomed = true;
                report.coordinator_reached = true;
                break;
            case FrameType::kLease:
                granted = frame.lease;
                break;
            case FrameType::kDone:
                done = true;
                report.done_received = true;
                say("coordinator done: " + std::to_string(frame.completed) + " cells, " +
                    std::to_string(frame.quarantined) + " quarantined");
                break;
            case FrameType::kReject:
                throw core::StaleJournal("coordinator rejected worker " +
                                         std::to_string(spec.shard) + ": " + frame.reason);
            default:
                break;  // worker-to-coordinator frames echoed back; ignore
        }
    };

    // Drain replies until `until()` holds or a wait times out.  Throws
    // TransportClosed when the link dies and StaleJournal on a REJECT.
    const auto pump = [&](int timeout_ms, const std::function<bool()>& until) -> bool {
        std::string bytes;
        while (!until() && link->recv_wait(bytes, timeout_ms)) {
            Frame frame;
            try {
                frame = decode_frame(bytes);
            } catch (const core::CorruptData&) {
                continue;  // damaged reply; resend/re-pull covers it
            }
            // Outside the decode guard: a REJECT must surface as StaleJournal
            // (which *derives* from CorruptData) instead of being swallowed.
            on_frame(frame);
        }
        return until();
    };

    // Simulate the missing cells of `cells` into the local journal, each
    // durable before it is ever streamed.  When attached to a lease
    // (lease_id != kNoLease) the worker checks in around the work: serial
    // simulation heartbeats before and reports progress after every cell;
    // a jobs>1 fan-out brackets the whole batch instead.
    const auto simulate_cells = [&](const std::vector<std::size_t>& cells,
                                    std::uint64_t lease_id) {
        std::vector<std::size_t> missing;
        for (const std::size_t idx : cells) {
            const bool first = touched.insert(idx).second;
            if (journal.find(idx)) {
                if (first) ++report.cells_reused;
            } else {
                missing.push_back(idx);
            }
        }
        if (missing.empty()) return;
        report.cells_computed += missing.size();
        if (opts.jobs > 1 && missing.size() > 1) {
            if (lease_id != kNoLease) send_heartbeat(lease_id);
            (void)runner.map(
                missing.size(),
                [&](std::size_t k) {
                    const std::size_t idx = missing[k];
                    const FaultCensus census = run_cell(plan, cell_config(plan, idx));
                    journal.record(idx, census);
                    return census;
                },
                core::CellRetry{plan.cell_attempts});
            if (lease_id != kNoLease) {
                (void)soft_send(encode_progress(lease_id, missing.size(), missing.size()));
            }
        } else {
            std::size_t finished = 0;
            for (const std::size_t idx : missing) {
                if (lease_id != kNoLease) send_heartbeat(lease_id);
                const FaultCensus census = run_cell(plan, cell_config(plan, idx));
                journal.record(idx, census);
                ++finished;
                if (lease_id != kNoLease) {
                    (void)soft_send(encode_progress(lease_id, finished, missing.size()));
                }
            }
        }
    };

    // Compatibility phase 1: a static shard is simulated up front, durable
    // in the local journal before a single byte hits the wire, so a death
    // anywhere later resumes without re-simulating anything — and an offline
    // run still leaves the full shard buffered for a later re-stream.
    if (!lease_mode) {
        const std::vector<std::size_t> owned = shard_cells(plan.seeds, spec);
        report.cells_owned = owned.size();
        simulate_cells(owned, kNoLease);
        if (report.cells_computed > 0) {
            say("simulated " + std::to_string(report.cells_computed) + " cells");
        }
    }

    // Stream one journaled cell until acked (bounded resends).  A cell left
    // unacked on an alive link is not lost: the coordinator re-grants it.
    const auto stream_cell = [&](std::size_t idx) {
        if (done || acked.count(idx) != 0) return;
        const FaultCensus* census = journal.find(idx);
        if (census == nullptr) return;
        const std::string frame = encode_cell(idx, *census);
        for (int attempt = 1; attempt <= frame_attempts(opts.retry); ++attempt) {
            if (done || acked.count(idx) != 0) return;
            bool sent = true;
            try {
                counted_send(frame);
                if (attempt > 1) ++report.resends;
            } catch (const core::TransientError&) {
                ++report.drops_absorbed;  // link ate it; charge the attempt
                sent = false;
            }
            if (sent && pump(opts.ack_timeout_ms,
                             [&] { return done || acked.count(idx) != 0; })) {
                return;
            }
        }
    };

    // Everything the local journal holds unacked — resumed cells, a zombie's
    // stale shard, a crashed lease — streams first; dedupe absorbs replays.
    const auto stream_backlog = [&] {
        for (std::size_t i = 0; i < key.cells && !done; ++i) {
            if (acked.count(i) != 0 || journal.find(i) == nullptr) continue;
            if (touched.insert(i).second) ++report.cells_reused;
            stream_cell(i);
        }
    };

    // HELLO until WELCOME (bounded).  Throws TransportClosed / StaleJournal.
    // The handshake is supervisor machinery, not cell delivery: even a
    // zero-retry cell policy re-hellos, else one swallowed frame strands a
    // healthy worker offline for the whole campaign.
    const std::string hello = encode_hello(ShardHello{key, spec.shard, spec.of});
    const auto handshake = [&]() -> bool {
        welcomed = false;
        const int attempts = std::max(frame_attempts(opts.retry), 4);
        for (int attempt = 0; attempt < attempts; ++attempt) {
            if (!soft_send(hello)) continue;
            if (pump(opts.ack_timeout_ms, [&] { return welcomed || done; })) {
                say("welcomed by the coordinator");
                return true;
            }
        }
        return false;
    };

    // (Re)connect and re-handshake.  Returns false once the budget or the
    // factory gives out — the caller degrades to local-journal-only mode.
    const auto reconnect = [&]() -> bool {
        while (report.reconnects < opts.max_reconnects) {
            ++report.reconnects;
            std::unique_ptr<core::Transport> fresh = opts.reconnect ? opts.reconnect() : nullptr;
            if (!fresh) return false;
            link = std::move(fresh);
            try {
                if (handshake()) return true;
            } catch (const core::TransportClosed&) {
                // dead again; spend another reconnect
            }
        }
        return false;
    };

    const auto process_lease = [&](const Lease& lease) {
        ++report.leases_held;
        say("lease " + std::to_string(lease.id) + ": " + std::to_string(lease.cells.size()) +
            " cells");
        simulate_cells(lease.cells, lease.id);
        for (const std::size_t idx : lease.cells) stream_cell(idx);
    };

    // The pull loop: backlog first, then lease after lease until DONE.
    // Returns false when the link is lost for good (degrade).
    const auto serve_leases = [&]() -> bool {
        bool backlog_pending = true;
        while (!done) {
            try {
                if (backlog_pending) {
                    stream_backlog();
                    backlog_pending = false;
                }
                if (granted) {
                    const Lease lease = *granted;
                    granted.reset();
                    process_lease(lease);
                    continue;
                }
                send_heartbeat(kNoLease);  // the pull request
                (void)pump(opts.ack_timeout_ms, [&] { return done || granted.has_value(); });
                // On timeout the loop simply pulls again.
            } catch (const core::TransportClosed&) {
                // Delivered frames drain before the link reports closed — a
                // DONE may be waiting even though our last send bounced.
                try {
                    std::string bytes;
                    while (link->try_recv(bytes)) {
                        Frame frame;
                        try {
                            frame = decode_frame(bytes);
                        } catch (const core::CorruptData&) {
                            continue;
                        }
                        on_frame(frame);  // a drained REJECT still throws
                    }
                } catch (const core::TransportClosed&) {
                }
                if (done) break;
                granted.reset();  // our lease died with the link; let it re-grant
                if (!reconnect()) return false;
                backlog_pending = true;
            }
        }
        return true;
    };

    bool online = false;
    if (link) {
        try {
            online = handshake();
        } catch (const core::TransportClosed&) {
            online = reconnect();
        }
    }
    if (online) {
        if (!serve_leases()) {
            online = false;
            say("coordinator link lost; local journal keeps the finished cells");
        }
    }

    if (lease_mode) report.cells_owned = touched.size();
    for (const std::size_t idx : touched) {
        if (acked.count(idx) != 0) continue;
        const FaultCensus* census = journal.find(idx);
        if (census == nullptr) continue;
        ++report.buffered;
        report.buffered_bytes += encode_cell(idx, *census).size();
    }
    report.degraded = report.buffered > 0 && !report.done_received;
    if (report.degraded) {
        say("degraded: " + std::to_string(report.buffered) +
            " cells buffered in the local journal");
    }
    if (link) link->close();
    return report;
}

// ---------------------------------------------------------------------------
// CoordinatorService

struct CoordinatorService::Impl {
    CensusPlan plan;
    CoordinatorOptions opts;
    SweepJournalKey campaign;
    SweepJournal journal;
    CoordinatorReport report;
    std::atomic<bool> stop{false};

    std::uint64_t next_lease_id = 1;
    std::set<std::size_t> leased;  ///< cells inside some live lease
    /// Distinct workers that lost a lease over each cell — the poison meter.
    std::map<std::size_t, std::set<std::string>> failed_holders;
    std::size_t scan_hint = 0;  ///< no free cell below this index

    Impl(CensusPlan plan_in, fs::path path, CoordinatorOptions opts_in)
        : plan(std::move(plan_in)),
          opts(std::move(opts_in)),
          campaign(ParallelCensus(plan, 1).journal_key()),
          journal(std::move(path), campaign, opts.resume, opts.fs) {}
};

CoordinatorService::CoordinatorService(CensusPlan plan, fs::path journal_path,
                                       CoordinatorOptions opts)
    : impl_(std::make_unique<Impl>(std::move(plan), std::move(journal_path), std::move(opts))) {}

CoordinatorService::~CoordinatorService() = default;

void CoordinatorService::request_stop() { impl_->stop.store(true); }

const SweepJournalKey& CoordinatorService::key() const { return impl_->campaign; }

bool CoordinatorService::complete() const { return impl_->journal.complete(); }

std::size_t CoordinatorService::merged() const { return impl_->journal.completed(); }

std::size_t CoordinatorService::quarantined() const {
    return impl_->journal.quarantined().size();
}

CensusResult CoordinatorService::result() const {
    if (!impl_->journal.complete()) {
        if (impl_->journal.resolved()) {
            std::ostringstream why;
            why << "campaign resolved with " << impl_->journal.quarantined().size()
                << " quarantined poison cell(s):";
            for (const auto& [index, q] : impl_->journal.quarantined()) {
                why << " cell " << index << " (" << q.reason << ")";
            }
            throw core::LeaseExpired(why.str());
        }
        throw core::Error("coordinator journal '" + impl_->journal.path().string() + "' holds " +
                          std::to_string(impl_->journal.completed()) + "/" +
                          std::to_string(impl_->campaign.cells) + " cells; campaign incomplete");
    }
    CensusResult result;
    result.censuses.reserve(impl_->campaign.cells);
    for (std::size_t i = 0; i < impl_->campaign.cells; ++i) {
        result.censuses.push_back(*impl_->journal.find(i));
    }
    result.summary = summarize(result.censuses);
    return result;
}

namespace {

/// Coordinator-side view of one worker link.
struct LinkState {
    std::unique_ptr<core::Transport> link;
    std::size_t serial = 0;
    bool welcomed = false;
    std::string holder;  ///< identity for the poison meter
    bool has_lease = false;
    Lease lease;
    std::uint64_t last_heard_op = 0;  ///< frames counter at its last valid frame
};

}  // namespace

CoordinatorReport CoordinatorService::serve(core::Listener& listener) {
    using Phase = CoordinatorCrashPlan::Phase;
    Impl& im = *impl_;
    std::vector<LinkState> links;
    std::size_t next_serial = 0;

    const auto say = [&](const std::string& line) {
        if (im.opts.log) im.opts.log("coordinator: " + line);
    };

    const auto settled = [&](std::size_t cell) {
        return im.journal.find(cell) != nullptr || im.journal.quarantined().count(cell) != 0;
    };

    // Planned process death: close everything a real kill would take down
    // (peers must observe the loss), then unwind as SimulatedCrash.
    const auto crash_check = [&](Phase phase, std::size_t frame_index) {
        if (frame_index != im.opts.crash.crash_at_frame || phase != im.opts.crash.phase) return;
        for (LinkState& ls : links) ls.link->close();
        links.clear();
        listener.close();
        throw core::SimulatedCrash("coordinator killed handling frame " +
                                   std::to_string(frame_index) + " (phase " +
                                   std::to_string(static_cast<int>(phase)) + ")");
    };

    // Bounded reply: a faulty link may swallow sends as TransientError — the
    // worker's resend / re-pull covers an abandoned reply.  TransportClosed
    // propagates.
    const auto reply = [&](core::Transport& link, const std::string& frame) -> bool {
        const int attempts = im.opts.reply_attempts < 1 ? 1 : im.opts.reply_attempts;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            try {
                link.send(frame);
                return true;
            } catch (const core::TransientError&) {
                // swallowed; retry
            }
        }
        return false;
    };

    // Withdraw a lease: unfinished cells return to the pool, the holder is
    // charged on each cell's poison meter, and a cell that has now failed
    // under max_lease_attempts distinct workers is quarantined.
    const auto fail_lease = [&](LinkState& ls, const std::string& why) {
        if (!ls.has_lease) return;
        ++im.report.leases_expired;
        const std::size_t poison_bar =
            im.opts.max_lease_attempts < 1 ? 1 : im.opts.max_lease_attempts;
        std::size_t returned = 0;
        for (const std::size_t cell : ls.lease.cells) {
            im.leased.erase(cell);
            if (settled(cell)) continue;
            ++returned;
            im.scan_hint = std::min(im.scan_hint, cell);
            std::set<std::string>& holders = im.failed_holders[cell];
            holders.insert(ls.holder);
            if (holders.size() >= poison_bar) {
                im.journal.quarantine(cell, holders.size(),
                                      std::string(core::to_string(core::ErrorCode::kLeaseExpired)) +
                                          " under " + std::to_string(holders.size()) +
                                          " distinct workers");
                say("QUARANTINE cell " + std::to_string(cell) + ": poisoned after " +
                    std::to_string(holders.size()) + " workers lost its lease");
            }
        }
        say("lease " + std::to_string(ls.lease.id) + " of " + ls.holder + " withdrawn (" + why +
            "); " + std::to_string(returned) + " cells back in the pool");
        ls.has_lease = false;
    };

    // Release a lease whose every cell has settled (journaled/quarantined).
    const auto settle = [&](LinkState& ls) {
        if (!ls.has_lease) return;
        for (const std::size_t cell : ls.lease.cells) {
            if (!settled(cell)) return;
        }
        for (const std::size_t cell : ls.lease.cells) im.leased.erase(cell);
        ls.has_lease = false;
    };

    // Grant the lowest free cells to a pulling worker.  Returns the encoded
    // LEASE frame, or empty when nothing is grantable right now.
    const auto grant = [&](LinkState& ls) -> std::string {
        while (im.scan_hint < im.campaign.cells &&
               (settled(im.scan_hint) || im.leased.count(im.scan_hint) != 0)) {
            ++im.scan_hint;
        }
        const std::size_t chunk = im.opts.lease_chunk < 1 ? 1 : im.opts.lease_chunk;
        Lease lease;
        lease.deadline_ops = im.opts.lease_deadline_ops;
        for (std::size_t i = im.scan_hint;
             i < im.campaign.cells && lease.cells.size() < chunk; ++i) {
            if (settled(i) || im.leased.count(i) != 0) continue;
            lease.cells.push_back(i);
        }
        if (lease.cells.empty()) return {};
        lease.id = im.next_lease_id++;
        for (const std::size_t cell : lease.cells) im.leased.insert(cell);
        ls.has_lease = true;
        ls.lease = lease;
        ++im.report.leases_granted;
        say("lease " + std::to_string(lease.id) + " -> " + ls.holder + ": " +
            std::to_string(lease.cells.size()) + " cells from " +
            std::to_string(lease.cells.front()));
        return encode_lease(lease);
    };

    // The progress/ETA line, clock-free: rate is cells per 1000 protocol ops.
    const auto progress_line = [&] {
        const std::size_t total = im.campaign.cells;
        const std::size_t settled_cells =
            im.journal.completed() + im.journal.quarantined().size();
        const std::size_t ops = im.report.frames < 1 ? 1 : im.report.frames;
        const std::size_t rate_per_kop = settled_cells * 1000 / ops;
        const std::size_t eta_ops =
            settled_cells == 0 ? 0 : (total - settled_cells) * ops / settled_cells;
        std::ostringstream out;
        out << "progress: " << settled_cells << "/" << total << " cells ("
            << (total == 0 ? 100 : settled_cells * 100 / total) << "%), " << rate_per_kop
            << " cells/kop";
        if (settled_cells > 0 && settled_cells < total) out << ", ~" << eta_ops << " ops left";
        say(out.str());
    };

    // Returns true when the frame was valid (resets the idle budget).
    const auto handle_frame = [&](LinkState& ls, const std::string& bytes) -> bool {
        const std::size_t frame_index = im.report.frames++;
        crash_check(Phase::kOnFrame, frame_index);
        Frame frame;
        try {
            frame = decode_frame(bytes);
            if (frame.type == FrameType::kCell && frame.cell.index >= im.campaign.cells) {
                throw core::CorruptData("cell index " + std::to_string(frame.cell.index) +
                                        " outside campaign of " +
                                        std::to_string(im.campaign.cells));
            }
        } catch (const core::CorruptData& err) {
            ++im.report.corrupt_frames;
            say(std::string("rejecting corrupt frame: ") + err.what());
            (void)reply(*ls.link, encode_reject(err.what()));
            return false;
        }
        ls.last_heard_op = im.report.frames;
        switch (frame.type) {
            case FrameType::kHello: {
                const bool match = frame.hello.key == im.campaign;
                if (!match) ++im.report.rejected_hellos;
                crash_check(Phase::kAfterRecord, frame_index);
                if (match) {
                    ls.welcomed = true;
                    ls.holder = frame.hello.of > 0
                                    ? "shard " + std::to_string(frame.hello.shard) + "/" +
                                          std::to_string(frame.hello.of)
                                    : "worker#" + std::to_string(ls.serial);
                    say(ls.holder + " joined");
                    (void)reply(*ls.link, encode_welcome(im.journal.completed()));
                } else {
                    (void)reply(*ls.link,
                                encode_reject("campaign mismatch: coordinator serves base_seed " +
                                              std::to_string(im.campaign.cells) +
                                              "-cell campaign " +
                                              std::to_string(im.campaign.base_seed)));
                }
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            case FrameType::kCell: {
                if (im.journal.find(frame.cell.index) != nullptr) {
                    ++im.report.duplicates;  // replay after a loss: dedupe, re-ack
                } else {
                    // record() also heals a quarantined slot: a zombie's late
                    // cell replaces the poison record with real data.
                    im.journal.record(frame.cell.index, frame.cell.census);
                    ++im.report.cells_recorded;
                }
                settle(ls);  // a finished lease frees its cells for granting
                crash_check(Phase::kAfterRecord, frame_index);
                if (reply(*ls.link, encode_ack(frame.cell.index))) ++im.report.acks_sent;
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            case FrameType::kHeartbeat: {
                ++im.report.heartbeats;
                settle(ls);
                crash_check(Phase::kAfterRecord, frame_index);
                if (im.journal.resolved()) {
                    (void)reply(*ls.link, encode_done(im.journal.completed(),
                                                      im.journal.quarantined().size()));
                } else if (ls.welcomed && frame.lease_id == kNoLease) {
                    if (ls.has_lease) {
                        // The holder is pulling: its LEASE frame was lost, or
                        // it gave up on undelivered cells — re-announce.
                        (void)reply(*ls.link, encode_lease(ls.lease));
                    } else {
                        const std::string lease_frame = grant(ls);
                        if (!lease_frame.empty()) (void)reply(*ls.link, lease_frame);
                    }
                }
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            case FrameType::kProgress: {
                ++im.report.progress_frames;
                crash_check(Phase::kAfterRecord, frame_index);
                progress_line();
                crash_check(Phase::kAfterReply, frame_index);
                break;
            }
            default:
                break;  // coordinator-to-worker frames echoed back; ignore
        }
        return true;
    };

    int idle_polls = 0;
    for (;;) {
        const bool stopping = im.stop.load();
        if (im.journal.resolved()) break;

        bool progress = false;
        while (std::unique_ptr<core::Transport> fresh = listener.accept(0)) {
            LinkState ls;
            ls.link = std::move(fresh);
            ls.serial = next_serial++;
            ls.holder = "worker#" + std::to_string(ls.serial);
            links.push_back(std::move(ls));
            ++im.report.links_accepted;
            progress = true;
        }

        for (auto it = links.begin(); it != links.end();) {
            bool dead = false;
            try {
                std::string bytes;
                while (it->link->try_recv(bytes)) {
                    if (handle_frame(*it, bytes)) progress = true;
                }
            } catch (const core::TransportClosed&) {
                dead = true;
            }
            if (dead) {
                // A dead link is a dead worker: its lease fails on the spot
                // and the cells go back to the pool for the survivors.
                fail_lease(*it, "link closed");
                ++im.report.links_dropped;
                it = links.erase(it);
            } else {
                ++it;
            }
        }

        // Deadline sweep: a lease holder silent past its op budget — while
        // other workers' chatter advanced the clock — is permanently dead.
        for (auto it = links.begin(); it != links.end();) {
            const std::uint64_t now = im.report.frames;
            if (it->has_lease && now > it->last_heard_op &&
                now - it->last_heard_op > it->lease.deadline_ops) {
                say(it->holder + " silent for " + std::to_string(now - it->last_heard_op) +
                    " ops; declaring it dead");
                fail_lease(*it, "deadline missed");
                it->link->close();
                ++im.report.links_dropped;
                it = links.erase(it);
            } else {
                ++it;
            }
        }

        if (progress) {
            idle_polls = 0;
        } else {
            if (stopping) break;
            if (im.opts.idle_give_up_polls > 0 && ++idle_polls >= im.opts.idle_give_up_polls) {
                say("idle timeout: giving up at " + std::to_string(im.journal.completed()) +
                    "/" + std::to_string(im.campaign.cells) + " cells (" +
                    std::to_string(links.size()) + " silent links)");
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    if (im.journal.resolved()) {
        // Hang-up broadcast: every connected worker learns the campaign is
        // over instead of discovering a dead socket.
        const std::string done_frame =
            encode_done(im.journal.completed(), im.journal.quarantined().size());
        for (LinkState& ls : links) {
            try {
                (void)reply(*ls.link, done_frame);
            } catch (const core::TransportClosed&) {
            }
        }
        progress_line();
    }
    for (const auto& [cell, q] : im.journal.quarantined()) {
        say("POISON cell " + std::to_string(cell) + ": " + q.reason + " — no data recorded; " +
            "the rendered table would have a hole");
    }
    im.report.quarantined = im.journal.quarantined().size();
    im.report.resolved = im.journal.resolved();
    im.report.completed = im.journal.complete();
    for (LinkState& ls : links) ls.link->close();
    return im.report;
}

// ---------------------------------------------------------------------------
// In-process distributed harness

fs::path merged_journal_path(const fs::path& scratch) { return scratch / "merged.journal"; }

fs::path worker_journal_path(const fs::path& scratch, std::size_t shard) {
    return scratch / ("worker-" + std::to_string(shard) + ".journal");
}

DistributedOutcome run_distributed(const CensusPlan& plan, const fs::path& scratch,
                                   const DistributedOptions& opts) {
    if (opts.workers == 0) throw core::InvalidArgument("a distributed run needs >= 1 worker");
    fs::create_directories(scratch);

    DistributedOutcome out;
    out.workers.resize(opts.workers);
    out.worker_crashed.assign(opts.workers, false);

    CoordinatorOptions copts;
    copts.resume = opts.resume;
    copts.crash = opts.coordinator_crash;
    copts.lease_chunk = opts.lease_chunk;
    copts.lease_deadline_ops = opts.lease_deadline_ops;
    copts.max_lease_attempts = opts.max_lease_attempts;
    copts.fs = opts.fs;
    CoordinatorService service(plan, merged_journal_path(scratch), copts);

    core::LoopbackListener listener;
    std::exception_ptr coordinator_error;
    std::thread coordinator([&] {
        try {
            out.coordinator = service.serve(listener);
        } catch (const core::SimulatedCrash&) {
            out.coordinator_crashed = true;
        } catch (...) {
            coordinator_error = std::current_exception();
        }
        // A finished (or dead) coordinator takes its socket down with it:
        // blocked and future connects observe TransportClosed, not a hang.
        listener.close();
    });

    // One worker pass over a possibly-faulty link.  Returns true if the
    // planned link kill fired (SimulatedCrash); other failures propagate.
    const auto run_one = [&](std::size_t shard, const core::TransportFaultPlan& faults,
                             const std::string& channel, bool resume) -> bool {
        WorkerOptions wopts;
        wopts.jobs = opts.worker_jobs;
        wopts.resume = resume;
        wopts.retry = opts.retry;
        wopts.ack_timeout_ms = opts.ack_timeout_ms;
        wopts.fs = opts.fs;
        wopts.reconnect = [&listener]() -> std::unique_ptr<core::Transport> {
            // Reconnects are clean links: the fault plan modelled the first
            // connection's network; a re-dial is the operator's fresh cable.
            try {
                return listener.connect();
            } catch (const core::TransportClosed&) {
                return nullptr;
            }
        };
        std::unique_ptr<core::Transport> link;
        try {
            link = std::make_unique<core::FaultyTransport>(faults, channel, listener.connect());
        } catch (const core::TransportClosed&) {
            link = nullptr;  // coordinator already gone: offline mode
        }
        try {
            out.workers[shard] = run_worker(plan, ShardSpec{shard, 0},
                                            worker_journal_path(scratch, shard), std::move(link),
                                            wopts);
            return false;
        } catch (const core::SimulatedCrash&) {
            return true;
        }
    };

    std::vector<std::exception_ptr> worker_errors(opts.workers);
    {
        std::vector<std::thread> threads;
        threads.reserve(opts.workers);
        for (std::size_t w = 0; w < opts.workers; ++w) {
            threads.emplace_back([&, w] {
                try {
                    const core::TransportFaultPlan faults = w < opts.worker_faults.size()
                                                               ? opts.worker_faults[w]
                                                               : core::TransportFaultPlan{};
                    out.worker_crashed[w] =
                        run_one(w, faults, "worker." + std::to_string(w), opts.resume);
                } catch (...) {
                    worker_errors[w] = std::current_exception();
                }
            });
        }
        for (std::thread& t : threads) t.join();
    }

    // The operator walks to the tent and reboots dead nodes: each crashed
    // worker gets one clean-link rerun that resumes from its local journal.
    if (opts.restart_crashed_workers) {
        for (std::size_t w = 0; w < opts.workers; ++w) {
            if (!out.worker_crashed[w] || worker_errors[w]) continue;
            ++out.worker_restarts;
            try {
                (void)run_one(w, core::TransportFaultPlan{},
                              "worker." + std::to_string(w) + ".restart", /*resume=*/true);
            } catch (...) {
                worker_errors[w] = std::current_exception();
            }
        }
    }

    service.request_stop();
    coordinator.join();
    if (coordinator_error) std::rethrow_exception(coordinator_error);
    for (const std::exception_ptr& err : worker_errors) {
        if (err) std::rethrow_exception(err);
    }
    if (out.coordinator.completed) out.result = service.result();
    return out;
}

// ---------------------------------------------------------------------------
// Cross-process crash torture

namespace {

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw core::IoError("cannot read '" + path.string() + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void scrub(const fs::path& dir) {
    fs::remove_all(dir);
    fs::create_directories(dir);
}

}  // namespace

DistributedTortureReport distributed_torture(const CensusPlan& plan, const fs::path& scratch,
                                             const DistributedTortureOptions& opts,
                                             std::ostream& log) {
    using Phase = CoordinatorCrashPlan::Phase;
    DistributedTortureReport report;
    fs::create_directories(scratch);

    // The uninterrupted local reference: rendered table + journal bytes.
    const fs::path ref_dir = scratch / "reference";
    scrub(ref_dir);
    const ParallelCensus reference(plan, opts.jobs);
    std::string ref_render;
    std::string ref_journal_bytes;
    {
        SweepJournal journal(merged_journal_path(ref_dir), reference.journal_key(), false);
        ref_render = render_census_table(reference.run(journal), plan.base_seed);
        ref_journal_bytes = slurp(merged_journal_path(ref_dir));
    }

    DistributedOptions base;
    base.workers = opts.workers;
    base.worker_jobs = opts.jobs;
    base.ack_timeout_ms = 2000;

    const auto check = [&](const std::string& what, const fs::path& dir,
                           const DistributedOutcome& outcome) {
        if (!outcome.coordinator.completed) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": campaign incomplete ("
                << outcome.coordinator.cells_recorded << " cells recorded)\n";
            return;
        }
        const std::string render = render_census_table(outcome.result, plan.base_seed);
        const std::string journal_bytes = slurp(merged_journal_path(dir));
        if (render != ref_render) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": rendered census differs from reference\n";
        }
        if (journal_bytes != ref_journal_bytes) {
            ++report.mismatches;
            log << "MISMATCH " << what << ": merged journal bytes differ from reference\n";
        }
    };

    // Counting run: a clean distributed campaign sizes the kill matrices —
    // every worker's send count and the coordinator's frame count.  Lease
    // scheduling makes the exact counts interleaving-dependent, so these are
    // upper bounds to enumerate: a kill op a later run never reaches simply
    // yields a clean campaign (counted in unfired_kills), which must still
    // be byte-identical.
    const fs::path clean_dir = scratch / "clean";
    scrub(clean_dir);
    const DistributedOutcome clean = run_distributed(plan, clean_dir, base);
    check("clean distributed run", clean_dir, clean);
    std::vector<std::size_t> send_points;
    for (const WorkerReport& worker : clean.workers) {
        send_points.push_back(worker.link_sends);
        report.worker_send_points += worker.link_sends;
    }
    report.coordinator_frames = clean.coordinator.frames;
    log << "distributed torture: " << opts.workers << " workers, " << report.worker_send_points
        << " worker send points, " << report.coordinator_frames << " coordinator frames\n";

    // Matrix 1 — transient kills: the operator reboots the dead node
    // (restart_crashed_workers) and the campaign converges.
    const fs::path kill_dir = scratch / "kill";
    for (std::size_t w = 0; w < opts.workers; ++w) {
        for (std::size_t op = 0; op < send_points[w]; ++op) {
            for (const core::NetCrashPhase phase :
                 {core::NetCrashPhase::kBeforeOp, core::NetCrashPhase::kAfterOp}) {
                scrub(kill_dir);
                DistributedOptions run = base;
                run.restart_crashed_workers = true;
                run.worker_faults.assign(opts.workers, core::TransportFaultPlan{});
                run.worker_faults[w].crash_at_send = op;
                run.worker_faults[w].crash_phase = phase;
                const DistributedOutcome outcome = run_distributed(plan, kill_dir, run);
                ++report.crash_points;
                ++report.resumes;
                const std::string what =
                    "worker " + std::to_string(w) + " killed at send " + std::to_string(op) +
                    (phase == core::NetCrashPhase::kBeforeOp ? " (before)" : " (after)");
                if (opts.verbose) log << "  " << what << "\n";
                if (!outcome.worker_crashed[w]) ++report.unfired_kills;
                check(what, kill_dir, outcome);
            }
        }
    }

    // Matrix 2 — permanent death: kill worker w forever at every send op
    // (every lease boundary and heartbeat slot is a send).  Nobody reboots
    // it; the survivors must absorb its lease and the output must not move
    // by a byte.  Needs >= 2 workers so one survivor always remains.
    if (opts.workers >= 2) {
        for (std::size_t w = 0; w < opts.workers; ++w) {
            for (std::size_t op = 0; op < send_points[w]; ++op) {
                for (const core::NetCrashPhase phase :
                     {core::NetCrashPhase::kBeforeOp, core::NetCrashPhase::kAfterOp}) {
                    scrub(kill_dir);
                    DistributedOptions run = base;
                    run.restart_crashed_workers = false;
                    run.worker_faults.assign(opts.workers, core::TransportFaultPlan{});
                    run.worker_faults[w].crash_at_send = op;
                    run.worker_faults[w].crash_phase = phase;
                    const DistributedOutcome outcome = run_distributed(plan, kill_dir, run);
                    ++report.crash_points;
                    ++report.permanent_kills;
                    const std::string what =
                        "worker " + std::to_string(w) + " dead forever at send " +
                        std::to_string(op) +
                        (phase == core::NetCrashPhase::kBeforeOp ? " (before)" : " (after)");
                    if (opts.verbose) log << "  " << what << "\n";
                    if (!outcome.worker_crashed[w]) ++report.unfired_kills;
                    check(what, kill_dir, outcome);
                }
            }
        }
    } else {
        log << "distributed torture: < 2 workers, permanent-death matrix skipped\n";
    }

    // Matrix 3 — kill the coordinator at every frame, all three phases: die
    // before anything durable, after the journal/lease update but before the
    // reply, and after the reply.  A second, clean run resumes the merged
    // journal and the workers' local journals and must converge.
    for (std::size_t frame = 0; frame < report.coordinator_frames; ++frame) {
        for (const Phase phase : {Phase::kOnFrame, Phase::kAfterRecord, Phase::kAfterReply}) {
            scrub(kill_dir);
            DistributedOptions run = base;
            run.coordinator_crash.crash_at_frame = frame;
            run.coordinator_crash.phase = phase;
            const DistributedOutcome crashed = run_distributed(plan, kill_dir, run);
            ++report.crash_points;
            const std::string what = "coordinator killed at frame " + std::to_string(frame) +
                                     " phase " + std::to_string(static_cast<int>(phase));
            if (opts.verbose) log << "  " << what << "\n";
            if (!crashed.coordinator_crashed) {
                // This run's lease chatter never reached the planned frame;
                // the campaign simply completed — verify and move on.
                ++report.unfired_kills;
                check(what + " (never fired)", kill_dir, crashed);
                continue;
            }
            const DistributedOutcome resumed = run_distributed(plan, kill_dir, base);
            ++report.resumes;
            check(what + " + resume", kill_dir, resumed);
        }
    }

    // Poison scenario: one cell kills every worker that touches it, reboots
    // included.  Quarantine must engage, the campaign must resolve with
    // exactly that cell poisoned, and every other cell must match the
    // reference's record bytes.
    {
        scrub(kill_dir);
        // Last cell, chunk 1: every innocent cell completes first and the
        // fatal lease never drags a healthy neighbour into quarantine.
        const std::size_t poison_index = plan.seeds - 1;
        CensusPlan poisoned = plan;
        const auto orig_cell = plan.run_cell;
        poisoned.run_cell = [orig_cell, poison_index, base_seed = plan.base_seed](
                                const ExperimentConfig& cfg) -> FaultCensus {
            if (cfg.master_seed == base_seed + poison_index) {
                throw core::SimulatedCrash("poison cell " + std::to_string(poison_index));
            }
            return orig_cell ? orig_cell(cfg) : run_season_census(cfg);
        };
        DistributedOptions run = base;
        run.lease_chunk = 1;
        run.restart_crashed_workers = true;
        run.max_lease_attempts = opts.workers >= 2 ? 3 : 2;
        const DistributedOutcome outcome = run_distributed(poisoned, kill_dir, run);
        const std::string what = "poison cell " + std::to_string(poison_index);
        if (outcome.coordinator.quarantined == 1 && outcome.coordinator.resolved &&
            !outcome.coordinator.completed) {
            ++report.quarantine_checks;
            log << "distributed torture: " << what << " quarantined after "
                << outcome.coordinator.leases_expired << " expired leases\n";
        } else {
            ++report.mismatches;
            log << "MISMATCH " << what << ": quarantine did not engage (quarantined="
                << outcome.coordinator.quarantined
                << " resolved=" << outcome.coordinator.resolved
                << " completed=" << outcome.coordinator.completed << ")\n";
        }
    }

    log << "distributed torture: " << report.crash_points << " kills ("
        << report.permanent_kills << " permanent, " << report.unfired_kills << " unfired), "
        << report.resumes << " resumes, " << report.quarantine_checks
        << " quarantine checks, " << report.mismatches << " mismatches\n";
    return report;
}

}  // namespace zerodeg::experiment
