#include "experiment/sweep_journal.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"

namespace zerodeg::experiment {

namespace {

// v2 widened the record from 17 to 21 integers (traffic-workload fields);
// v1 journals fail the magic check cleanly rather than mis-parse.
constexpr std::string_view kMagic = "zerodeg-sweep-journal v2";
constexpr std::size_t kCensusFields = 21;

/// FaultCensus <-> flat integer record, in declaration order.  The journal
/// stores only these integers; summaries are re-folded from them, which is
/// why a resumed campaign is byte-identical to an uninterrupted one.
std::array<std::uint64_t, kCensusFields> pack(const FaultCensus& c) {
    return {static_cast<std::uint64_t>(c.tent_hosts),
            static_cast<std::uint64_t>(c.basement_hosts),
            static_cast<std::uint64_t>(c.tent_hosts_failed),
            static_cast<std::uint64_t>(c.basement_hosts_failed),
            static_cast<std::uint64_t>(c.system_failures),
            static_cast<std::uint64_t>(c.transient_failures),
            static_cast<std::uint64_t>(c.permanent_failures),
            static_cast<std::uint64_t>(c.sensor_incidents),
            static_cast<std::uint64_t>(c.switch_failures),
            static_cast<std::uint64_t>(c.fan_faults),
            static_cast<std::uint64_t>(c.disk_faults),
            c.load_runs,
            c.wrong_hashes,
            c.wrong_hashes_tent,
            c.wrong_hashes_basement,
            c.page_ops,
            c.page_ops_non_ecc,
            c.requests_completed,
            c.requests_dropped,
            c.deadline_misses,
            c.p99_sojourn_us};
}

FaultCensus unpack(const std::array<std::uint64_t, kCensusFields>& f) {
    FaultCensus c;
    c.tent_hosts = static_cast<std::size_t>(f[0]);
    c.basement_hosts = static_cast<std::size_t>(f[1]);
    c.tent_hosts_failed = static_cast<std::size_t>(f[2]);
    c.basement_hosts_failed = static_cast<std::size_t>(f[3]);
    c.system_failures = static_cast<std::size_t>(f[4]);
    c.transient_failures = static_cast<std::size_t>(f[5]);
    c.permanent_failures = static_cast<std::size_t>(f[6]);
    c.sensor_incidents = static_cast<std::size_t>(f[7]);
    c.switch_failures = static_cast<std::size_t>(f[8]);
    c.fan_faults = static_cast<std::size_t>(f[9]);
    c.disk_faults = static_cast<std::size_t>(f[10]);
    c.load_runs = f[11];
    c.wrong_hashes = f[12];
    c.wrong_hashes_tent = f[13];
    c.wrong_hashes_basement = f[14];
    c.page_ops = f[15];
    c.page_ops_non_ecc = f[16];
    c.requests_completed = f[17];
    c.requests_dropped = f[18];
    c.deadline_misses = f[19];
    c.p99_sojourn_us = f[20];
    return c;
}

std::string hex16(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t parse_hex(const std::string& field, std::size_t line_no) {
    if (field.empty() || field[0] == '-' || field[0] == '+') {
        throw core::ParseError("expected a hex word, got '" + field + "'", line_no);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(field.c_str(), &end, 16);
    if (end != field.c_str() + field.size() || errno == ERANGE) {
        throw core::ParseError("expected a hex word, got '" + field + "'", line_no);
    }
    return v;
}

/// "cell <index> <f1> ... <f21>" — the checksummed payload of one record.
std::string cell_payload(std::size_t index, const FaultCensus& census) {
    std::ostringstream out;
    out << "cell " << index;
    for (const std::uint64_t v : pack(census)) out << ' ' << v;
    return out.str();
}

}  // namespace

std::string encode_cell_record(std::size_t index, const FaultCensus& census) {
    const std::string payload = cell_payload(index, census);
    return payload + ' ' + hex16(core::fnv1a(payload));
}

CellRecord decode_cell_record(std::string_view line, std::size_t cells_limit) {
    const std::string row(line);
    // Checksum first, fields after: nothing inside the payload is trusted
    // until the bytes have verified (same discipline as SweepJournal::load).
    const std::size_t sep = row.rfind(' ');
    if (sep == std::string::npos) {
        throw core::CorruptData("malformed cell record '" + row + "' (no checksum)");
    }
    const std::string payload = row.substr(0, sep);
    const std::uint64_t want = parse_hex(row.substr(sep + 1), 0);
    if (core::fnv1a(payload) != want) {
        throw core::CorruptData("cell record checksum mismatch on '" + row + "'");
    }

    std::istringstream ss(payload);
    std::string tag, token;
    ss >> tag;
    if (tag != "cell") {
        throw core::ParseError("expected a 'cell' record, got '" + tag + "'");
    }
    if (!(ss >> token)) throw core::ParseError("cell record missing its index");
    const std::uint64_t index = core::parse_csv_u64(token, 0);
    if (cells_limit > 0 && index >= cells_limit) {
        throw core::CorruptData("cell index " + std::to_string(index) +
                                " out of range (campaign has " + std::to_string(cells_limit) +
                                " cells)");
    }
    std::array<std::uint64_t, kCensusFields> fields{};
    for (std::size_t k = 0; k < kCensusFields; ++k) {
        if (!(ss >> token)) {
            throw core::ParseError("record for cell " + std::to_string(index) + " has " +
                                   std::to_string(k) + " of " + std::to_string(kCensusFields) +
                                   " census fields");
        }
        fields[k] = core::parse_csv_u64(token, 0);
    }
    if (ss >> token) {
        throw core::ParseError("trailing junk in record for cell " + std::to_string(index));
    }
    return CellRecord{static_cast<std::size_t>(index), unpack(fields)};
}

SweepJournal::SweepJournal(std::filesystem::path path, SweepJournalKey key, bool resume,
                           core::FileSystem* fs)
    : path_(std::move(path)), key_(key), fs_(fs ? fs : &core::real_fs()) {
    if (resume && fs_->exists(path_)) {
        core::with_context("loading sweep journal '" + path_.string() + "'", [this] { load(); });
        if (recovered_tail_ > 0) {
            // Truncate the torn tail off the disk copy right away, so a
            // second crash before the next record() cannot re-trip on it.
            std::lock_guard lock(mutex_);
            rewrite();
        }
    } else {
        // Fresh campaign (or --resume with nothing to resume): start with a
        // header-only journal so the identity is on disk before any cell.
        std::lock_guard lock(mutex_);
        rewrite();
    }
}

void SweepJournal::load() {
    // The whole file in memory, split into lines (the journal is a few KB;
    // full-file reads are what the FileSystem seam traffics in).
    const std::string bytes = fs_->read_file(path_);
    std::vector<std::string> lines;
    for (std::size_t pos = 0; pos < bytes.size();) {
        std::size_t nl = bytes.find('\n', pos);
        if (nl == std::string::npos) nl = bytes.size();
        std::string row = bytes.substr(pos, nl - pos);
        if (!row.empty() && row.back() == '\r') row.pop_back();
        lines.push_back(std::move(row));
        pos = nl + 1;
    }

    std::string line;
    std::size_t line_no = 0;
    const auto next_line = [&]() -> bool {
        if (line_no >= lines.size()) return false;
        line = lines[line_no];
        ++line_no;
        return true;
    };
    // The only damage load() may forgive lives on the final content line: a
    // tail record torn by a crash mid-append (or lost from the page cache).
    std::size_t last_content_line = 0;  // 1-based, 0 = none
    for (std::size_t i = lines.size(); i > 0; --i) {
        if (!lines[i - 1].empty()) {
            last_content_line = i;
            break;
        }
    }

    if (!next_line() || line != kMagic) {
        throw core::CorruptData("bad magic on line 1 (not a sweep journal?)");
    }

    // Header: each line names one identity field; a mismatch means the
    // journal belongs to a different campaign.
    const auto header_u64 = [&](const std::string& name) {
        if (!next_line()) throw core::ParseError("truncated header (missing " + name + ")",
                                                 line_no + 1);
        std::istringstream ss(line);
        std::string got_name, value;
        ss >> got_name >> value;
        if (got_name != name || value.empty()) {
            throw core::ParseError("expected '" + name + " <value>', got '" + line + "'", line_no);
        }
        return name == "config_hash" ? parse_hex(value, line_no)
                                     : core::parse_csv_u64(value, line_no);
    };
    const std::uint64_t base_seed = header_u64("base_seed");
    const std::uint64_t config_hash = header_u64("config_hash");
    const std::uint64_t cells = header_u64("cells");
    if (base_seed != key_.base_seed || config_hash != key_.config_hash || cells != key_.cells) {
        std::ostringstream why;
        why << "journal belongs to a different campaign (journal: base_seed " << base_seed
            << ", config_hash " << hex16(config_hash) << ", cells " << cells
            << "; this campaign: base_seed " << key_.base_seed << ", config_hash "
            << hex16(key_.config_hash) << ", cells " << key_.cells
            << ") — delete the journal or rerun the original campaign";
        throw core::StaleJournal(why.str());
    }

    while (next_line()) {
        if (line.empty()) continue;
        // Verify the record checksum against the raw payload bytes before
        // trusting any field: "<payload> <hex checksum>".  Damage detected
        // *before* the checksum verifies is exactly what tail truncation
        // produces, so on the final content line it is forgiven: the record
        // is dropped with a warning (its cell re-simulates) and the caller
        // truncates it off the disk copy.  Once a checksum has verified the
        // bytes are intact, so every later inconsistency stays fatal.
        std::string payload;
        std::string damage;
        const std::size_t sep = line.rfind(' ');
        if (sep == std::string::npos) {
            damage = "malformed record '" + line + "'";
        } else {
            payload = line.substr(0, sep);
            std::uint64_t want = 0;
            try {
                want = parse_hex(line.substr(sep + 1), line_no);
            } catch (const core::ParseError&) {
                damage = "unparseable record checksum";
            }
            if (damage.empty() && core::fnv1a(payload) != want) {
                damage = "record checksum mismatch";
            }
        }
        if (!damage.empty()) {
            if (line_no == last_content_line) {
                std::cerr << "warning: sweep journal '" << path_.string()
                          << "': dropping torn tail record (line " << line_no << ": " << damage
                          << "); its cell will be re-simulated\n";
                ++recovered_tail_;
                break;
            }
            throw core::CorruptData("line " + std::to_string(line_no) + ": " + damage +
                                    " (torn write or edited file)");
        }

        std::istringstream ss(payload);
        std::string tag, token;
        ss >> tag;
        if (tag != "cell" && tag != "poison") {
            throw core::ParseError("expected a 'cell' or 'poison' record, got '" + tag + "'",
                                   line_no);
        }
        if (!(ss >> token)) throw core::ParseError("record missing cell index", line_no);
        const std::uint64_t index = core::parse_csv_u64(token, line_no);
        if (index >= key_.cells) {
            throw core::CorruptData("line " + std::to_string(line_no) + ": cell index " +
                                    std::to_string(index) + " out of range (campaign has " +
                                    std::to_string(key_.cells) + " cells)");
        }
        if (cells_.count(static_cast<std::size_t>(index)) ||
            quarantined_.count(static_cast<std::size_t>(index))) {
            throw core::CorruptData("line " + std::to_string(line_no) + ": duplicate cell " +
                                    std::to_string(index));
        }
        if (tag == "poison") {
            // "poison <index> <attempts> <reason...>": the reason is free
            // text, everything after the attempts word.
            if (!(ss >> token)) {
                throw core::ParseError("poison record for cell " + std::to_string(index) +
                                           " missing its attempt count",
                                       line_no);
            }
            QuarantineRecord q;
            q.attempts = static_cast<std::size_t>(core::parse_csv_u64(token, line_no));
            std::string reason;
            std::getline(ss, reason);
            if (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
            if (reason.empty()) {
                throw core::ParseError("poison record for cell " + std::to_string(index) +
                                           " missing its reason",
                                       line_no);
            }
            q.reason = std::move(reason);
            quarantined_.emplace(static_cast<std::size_t>(index), std::move(q));
            continue;
        }
        std::array<std::uint64_t, kCensusFields> fields{};
        for (std::size_t k = 0; k < kCensusFields; ++k) {
            if (!(ss >> token)) {
                throw core::ParseError("record for cell " + std::to_string(index) + " has " +
                                           std::to_string(k) + " of " +
                                           std::to_string(kCensusFields) + " census fields",
                                       line_no);
            }
            fields[k] = core::parse_csv_u64(token, line_no);
        }
        if (ss >> token) {
            throw core::ParseError("trailing junk in record for cell " + std::to_string(index),
                                   line_no);
        }
        cells_.emplace(static_cast<std::size_t>(index), unpack(fields));
    }
}

void SweepJournal::rewrite() const {
    std::ostringstream out;
    out << kMagic << '\n';
    out << "base_seed " << key_.base_seed << '\n';
    out << "config_hash " << hex16(key_.config_hash) << '\n';
    out << "cells " << key_.cells << '\n';
    for (const auto& [index, census] : cells_) {
        out << encode_cell_record(index, census) << '\n';
    }
    // Poison records after the data, both in index order: the file's bytes
    // depend only on the journal's final contents, never on arrival order.
    for (const auto& [index, q] : quarantined_) {
        const std::string payload =
            "poison " + std::to_string(index) + ' ' + std::to_string(q.attempts) + ' ' + q.reason;
        out << payload << ' ' << hex16(core::fnv1a(payload)) << '\n';
    }
    // Crash-safe tmp+rename through the io seam; injected transient faults
    // (short write, ENOSPC, refused rename) restart the sequence, bounded.
    io_retries_ += core::replace_file_atomic(*fs_, path_, out.str(), core::IoRetryPolicy{4},
                                             "sweep journal '" + path_.string() + "'");
}

void SweepJournal::record(std::size_t index, const FaultCensus& census) {
    if (index >= key_.cells) {
        throw core::InvalidArgument("SweepJournal::record: cell index " + std::to_string(index) +
                                    " out of range (campaign has " + std::to_string(key_.cells) +
                                    " cells)");
    }
    std::lock_guard lock(mutex_);
    cells_.insert_or_assign(index, census);
    quarantined_.erase(index);  // real data heals a quarantined slot
    rewrite();
}

void SweepJournal::quarantine(std::size_t index, std::size_t attempts,
                              const std::string& reason) {
    if (index >= key_.cells) {
        throw core::InvalidArgument("SweepJournal::quarantine: cell index " +
                                    std::to_string(index) + " out of range (campaign has " +
                                    std::to_string(key_.cells) + " cells)");
    }
    if (reason.empty() || reason.find('\n') != std::string::npos) {
        throw core::InvalidArgument(
            "SweepJournal::quarantine: reason must be one non-empty line");
    }
    std::lock_guard lock(mutex_);
    if (cells_.count(index)) return;  // data already landed; nothing to hold
    quarantined_.insert_or_assign(index, QuarantineRecord{attempts, reason});
    rewrite();
}

const FaultCensus* SweepJournal::find(std::size_t index) const {
    const auto it = cells_.find(index);
    return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace zerodeg::experiment
