// The experiment runner: wires weather, enclosures, fleet, faults, load,
// and monitoring together and replays the paper's season.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/event_queue.hpp"
#include "core/log.hpp"
#include "experiment/config.hpp"
#include "faults/component_faults.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_log.hpp"
#include "hardware/fleet.hpp"
#include "monitoring/collector.hpp"
#include "monitoring/datalogger.hpp"
#include "monitoring/netsim.hpp"
#include "monitoring/power_meter.hpp"
#include "thermal/condensation.hpp"
#include "thermal/enclosure.hpp"
#include "thermal/envelope.hpp"
#include "weather/weather_station.hpp"
#include "workload/scheduler.hpp"
#include "workload/traffic.hpp"

namespace zerodeg::experiment {

/// Everything a bench or example wants to look at after a run.
class ExperimentRunner {
public:
    explicit ExperimentRunner(ExperimentConfig config = {});
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner&) = delete;
    ExperimentRunner& operator=(const ExperimentRunner&) = delete;

    /// Run the whole configured window.
    void run();
    /// Run up to a given time (callable repeatedly).
    void run_until(core::TimePoint t);

    // --- accessors for reports/benches -------------------------------------
    [[nodiscard]] const ExperimentConfig& config() const { return config_; }
    [[nodiscard]] core::Simulator& simulator() { return sim_; }
    [[nodiscard]] const weather::WeatherStation& station() const { return *station_; }
    [[nodiscard]] const thermal::TentModel& tent() const { return *tent_; }
    [[nodiscard]] const thermal::BasementModel& basement() const { return *basement_; }
    [[nodiscard]] hardware::Fleet& fleet() { return fleet_; }
    [[nodiscard]] const hardware::Fleet& fleet() const { return fleet_; }
    [[nodiscard]] const faults::FaultLog& fault_log() const { return fault_log_; }
    [[nodiscard]] const core::EventLog& event_log() const { return event_log_; }
    [[nodiscard]] const workload::LoadScheduler& load() const { return *load_; }
    /// Request-serving workload; only present when config.workload is
    /// kTraffic (check has_traffic() first).
    [[nodiscard]] bool has_traffic() const { return traffic_ != nullptr; }
    [[nodiscard]] const workload::TrafficEngine& traffic() const { return *traffic_; }
    [[nodiscard]] const monitoring::LascarLogger& tent_logger() const { return *tent_logger_; }
    [[nodiscard]] const monitoring::Collector& collector() const { return *collector_; }
    [[nodiscard]] const monitoring::Network& network() const { return net_; }
    [[nodiscard]] const monitoring::TechnolineMeter& tent_meter() const { return *tent_meter_; }
    [[nodiscard]] const thermal::CondensationAnalyzer& condensation() const {
        return condensation_;
    }
    /// Time-in-envelope metering of the tent intake air (ASHRAE-allowable).
    [[nodiscard]] const thermal::EnvelopeTracker& tent_envelope() const {
        return tent_envelope_;
    }

    /// Tent air temperature/humidity sampled every tick (ground truth, not
    /// the noisy logger) — what Fig. 3/4's "inside" curves measure.
    [[nodiscard]] const core::TimeSeries& tent_truth_temperature() const {
        return tent_truth_temp_;
    }
    [[nodiscard]] const core::TimeSeries& tent_truth_humidity() const { return tent_truth_rh_; }
    [[nodiscard]] const core::TimeSeries& basement_temperature() const { return basement_temp_; }

    /// Host #19 is created when #15 is retired; id of the replacement host.
    static constexpr int kReplacementHostId = 19;

private:
    ExperimentConfig config_;
    core::Simulator sim_;
    std::unique_ptr<weather::WeatherStation> station_;
    std::unique_ptr<thermal::TentModel> tent_;
    std::unique_ptr<thermal::BasementModel> basement_;
    hardware::Fleet fleet_;
    faults::FaultInjector injector_;
    faults::FaultLog fault_log_;
    core::EventLog event_log_;
    std::unique_ptr<workload::LoadScheduler> load_;
    std::unique_ptr<workload::TrafficEngine> traffic_;
    monitoring::Network net_;
    std::unique_ptr<monitoring::Collector> collector_;
    std::unique_ptr<monitoring::LascarLogger> tent_logger_;
    std::unique_ptr<monitoring::TechnolineMeter> tent_meter_;
    thermal::CondensationAnalyzer condensation_;
    core::TimeSeries tent_truth_temp_{"tent_true_temp_degC"};
    core::TimeSeries tent_truth_rh_{"tent_true_rh_pct"};
    core::TimeSeries basement_temp_{"basement_temp_degC"};

    std::size_t tent_switch_a_ = 0;
    std::size_t tent_switch_b_ = 0;
    int spare_switches_used_ = 0;
    bool replacement_installed_ = false;
    std::vector<int> sensor_incident_handled_;
    std::vector<std::size_t> switch_replacement_pending_;
    std::map<int, double> last_intake_;
    std::map<int, faults::ComponentFaultProcess> component_faults_;
    thermal::EnvelopeTracker tent_envelope_{thermal::ashrae_allowable()};

    /// Reused per-tick scratch for the batched engine: one slot per
    /// installed host, in fleet order.  Member storage so a season's 5k+
    /// ticks allocate these arrays once instead of every tick.
    struct BatchScratch {
        std::vector<hardware::HostRecord*> recs;
        std::vector<std::uint8_t> in_tent;
        std::vector<std::uint8_t> operational;
        std::vector<std::uint8_t> announce;  ///< power-on log deferred to scatter
        std::vector<double> intake_c;
        std::vector<double> humidity;
        std::vector<double> age_hours;
        std::vector<double> cycling;
        std::vector<std::uint8_t> unreliable;
        std::vector<double> hazard;

        void clear();
    };
    BatchScratch batch_;

    static constexpr int kMonitorNodeId = 1000;

    void wire_hosts();
    void register_host_with_services(hardware::HostRecord& rec);
    void tick();
    void host_pass_per_object(core::TimePoint now, const weather::WeatherSample& outside,
                              const thermal::EnclosureAir& tent_air,
                              const thermal::EnclosureAir& basement_air);
    void host_pass_batched(core::TimePoint now, const weather::WeatherSample& outside,
                           const thermal::EnclosureAir& tent_air,
                           const thermal::EnclosureAir& basement_air);
    void handle_failure(hardware::HostRecord& rec, faults::FaultSeverity severity);
    void retire_and_replace(hardware::HostRecord& rec);
    void handle_sensor_incident(hardware::HostRecord& rec, core::Celsius reading);
    void apply_component_events(hardware::HostRecord& rec,
                                const std::vector<faults::ComponentEvent>& events);
    void check_switches();
};

}  // namespace zerodeg::experiment
