// Analytic Arrhenius/Peck acceleration models and their precomputed
// lookup-table form for the hazard hot path.
//
// The census inner loop evaluates Arrhenius (exp) and Peck (pow) once per
// host per tick; at fleet scale those transcendentals dominate the hazard
// kernel.  HazardTable tabulates both factors over the temperatures and
// humidities a season can actually produce and interpolates between knots,
// falling back to the analytic models outside the tabulated range so the
// table is an optimization, never a domain change.
//
// Interpolation note: the naive choice here is linear interpolation, but a
// linear table cannot meet the 1e-9 relative-error budget at a sane size —
// Arrhenius near -40 degC has f''/f ~ (Ea/k)^2/T^4, which would need
// millikelvin knot spacing (megabytes per table).  We use cubic Hermite
// segments with *exact* analytic derivatives at the knots instead: the
// leading error term is f''''*h^4/384, which at h = 0.125 keeps the
// relative error under ~2e-10 across the full -40..+60 degC acceptance
// grid.  Same table size as the linear sketch, two orders of magnitude
// more margin.
#pragma once

#include <cstddef>
#include <vector>

#include "core/units.hpp"

namespace zerodeg::faults {

using core::Celsius;
using core::RelHumidity;

/// Arrhenius acceleration factor relative to a reference temperature:
/// AF = exp(Ea/k * (1/T_ref - 1/T)).  Below T_ref the factor drops under 1 —
/// cold silicon wears *slower*, which is why the paper's outcome (no failure
/// wave) is physically plausible.
class ArrheniusModel {
public:
    ArrheniusModel(double activation_energy_ev, Celsius reference);

    [[nodiscard]] double acceleration(Celsius t) const;

private:
    double ea_over_k_;  ///< Ea / Boltzmann-in-eV
    double t_ref_kelvin_;
};

/// Peck's humidity model: AF = (RH/RH_ref)^n, commonly n ~ 2.7-3.
/// Applies above a threshold where surface moisture films form.
class PeckModel {
public:
    PeckModel(double exponent, RelHumidity reference);

    [[nodiscard]] double acceleration(RelHumidity rh) const;

private:
    double n_;
    double rh_ref_;
};

/// One tabulated function on a uniform grid with cubic Hermite segments.
/// Knots store both the value and the exact analytic derivative, so the
/// interpolant is C1 and fourth-order accurate.
class CubicTable {
public:
    /// `values` and `slopes` are knot samples of f and f' on the uniform
    /// grid x0, x0+step, ...; both must hold the same count (>= 2).
    CubicTable(double x0, double step, std::vector<double> values, std::vector<double> slopes);

    [[nodiscard]] bool covers(double x) const { return x >= x0_ && x <= x1_; }

    /// Hermite evaluation; caller must ensure covers(x).
    [[nodiscard]] double eval(double x) const {
        const double s = (x - x0_) * inv_step_;
        std::size_t i = static_cast<std::size_t>(s);
        // Right edge: x == x1_ lands exactly on the last knot; clamp to the
        // final segment so i+1 stays in range (t becomes exactly 1.0).
        if (i > last_segment_) i = last_segment_;
        const double t = s - static_cast<double>(i);
        const double t2 = t * t;
        const double t3 = t2 * t;
        const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        const double h10 = t3 - 2.0 * t2 + t;
        const double h01 = -2.0 * t3 + 3.0 * t2;
        const double h11 = t3 - t2;
        return h00 * y_[i] + step_ * h10 * m_[i] + h01 * y_[i + 1] + step_ * h11 * m_[i + 1];
    }

private:
    double x0_;
    double x1_;
    double step_;
    double inv_step_;
    std::size_t last_segment_;  ///< index of the left knot of the final segment
    std::vector<double> y_;
    std::vector<double> m_;
};

/// Temperature/humidity-indexed acceleration factors for one parameter set.
/// Built once per config (the fault injector shares one model, and thus one
/// table, across all hosts); out-of-range queries fall through to the
/// analytic models, so results differ from direct evaluation only by the
/// interpolation error inside the tabulated window — which also preserves
/// the analytic domain checks (absolute zero, RH clamping at 1%).
class HazardTable {
public:
    HazardTable(double arrhenius_ea_ev, Celsius arrhenius_reference, double peck_exponent,
                RelHumidity peck_reference);

    /// Arrhenius acceleration at component temperature `t` (degC).
    [[nodiscard]] double arrhenius(Celsius t) const {
        const double x = t.value();
        if (arrhenius_table_.covers(x)) return arrhenius_table_.eval(x);
        return arrhenius_analytic_.acceleration(t);
    }

    /// Peck humidity acceleration at relative humidity `rh` (%).
    [[nodiscard]] double peck(RelHumidity rh) const {
        const double x = rh.value();
        if (peck_table_.covers(x)) return peck_table_.eval(x);
        return peck_analytic_.acceleration(rh);
    }

private:
    ArrheniusModel arrhenius_analytic_;
    PeckModel peck_analytic_;
    CubicTable arrhenius_table_;
    CubicTable peck_table_;
};

}  // namespace zerodeg::faults
