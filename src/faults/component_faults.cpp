#include "faults/component_faults.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::faults {

namespace {
constexpr double kHoursPerYear = 8766.0;
}

const char* to_string(ComponentEventKind k) {
    switch (k) {
        case ComponentEventKind::kFanSeized: return "fan seized";
        case ComponentEventKind::kDiskFailed: return "disk failed";
        case ComponentEventKind::kDiskMediaError: return "disk media error";
    }
    return "?";
}

ComponentFaultProcess::ComponentFaultProcess(int host_id, int fans, int disks,
                                             ComponentFaultParams params, core::RngStream rng)
    : host_id_(host_id), params_(params), rng_(rng) {
    if (fans < 0 || disks < 0) {
        throw core::InvalidArgument("ComponentFaultProcess: negative component count");
    }
    const auto fresh = [this] {
        Risk r;
        r.threshold = rng_.exponential(1.0);
        return r;
    };
    for (int i = 0; i < fans; ++i) fans_.push_back(fresh());
    for (int i = 0; i < disks; ++i) {
        disks_.push_back(fresh());
        media_.push_back(fresh());
    }
}

double ComponentFaultProcess::fan_hazard_per_hour(Celsius intake) const {
    double accel = 1.0;
    if (intake < Celsius{0.0}) {
        accel += params_.fan_cold_per_deg * -intake.value();
    }
    return params_.fan_afr / kHoursPerYear * accel;
}

double ComponentFaultProcess::disk_hazard_per_hour(Celsius hdd_temp) const {
    const double away = hdd_temp.value() - params_.disk_sweet_spot.value();
    const double accel = 1.0 + params_.disk_temp_coeff * away * away;
    return params_.disk_afr / kHoursPerYear * accel;
}

double ComponentFaultProcess::media_hazard_per_hour(RelHumidity rh) const {
    double accel = 1.0;
    if (rh > params_.media_humidity_knee) {
        accel = std::pow(std::max(rh.value(), 1.0) / params_.media_peck_reference.value(),
                         params_.media_peck_exponent);
    }
    return params_.media_events_per_year / kHoursPerYear * accel;
}

std::vector<ComponentEvent> ComponentFaultProcess::advance(core::Duration dt, Celsius intake,
                                                           Celsius hdd_temp, RelHumidity rh) {
    if (dt.count() < 0) throw core::InvalidArgument("ComponentFaultProcess: negative dt");
    const double hours = static_cast<double>(dt.count()) / 3600.0;
    std::vector<ComponentEvent> events;

    const double fan_h = fan_hazard_per_hour(intake) * hours;
    for (std::size_t i = 0; i < fans_.size(); ++i) {
        Risk& r = fans_[i];
        if (r.dead) continue;
        r.cumulative += fan_h;
        if (r.cumulative >= r.threshold) {
            r.dead = true;
            events.push_back({ComponentEventKind::kFanSeized, static_cast<int>(i), 0});
        }
    }

    const double disk_h = disk_hazard_per_hour(hdd_temp) * hours;
    for (std::size_t i = 0; i < disks_.size(); ++i) {
        Risk& r = disks_[i];
        if (r.dead) continue;
        r.cumulative += disk_h;
        if (r.cumulative >= r.threshold) {
            r.dead = true;
            events.push_back({ComponentEventKind::kDiskFailed, static_cast<int>(i), 0});
        }
    }

    const double media_h = media_hazard_per_hour(rh) * hours;
    for (std::size_t i = 0; i < media_.size(); ++i) {
        if (disks_[i].dead) continue;  // dead drives grow no new defects
        Risk& r = media_[i];
        r.cumulative += media_h;
        if (r.cumulative >= r.threshold) {
            // Renewing process: re-arm after each event.
            r.cumulative = 0.0;
            r.threshold = rng_.exponential(1.0);
            const int sectors =
                static_cast<int>(rng_.uniform_int(1, params_.media_max_sectors));
            events.push_back(
                {ComponentEventKind::kDiskMediaError, static_cast<int>(i), sectors});
        }
    }
    return events;
}

int ComponentFaultProcess::live_fans() const {
    return static_cast<int>(std::count_if(fans_.begin(), fans_.end(),
                                          [](const Risk& r) { return !r.dead; }));
}

int ComponentFaultProcess::live_disks() const {
    return static_cast<int>(std::count_if(disks_.begin(), disks_.end(),
                                          [](const Risk& r) { return !r.dead; }));
}

}  // namespace zerodeg::faults
