// Fault records, the census over them, and the common-cause detector.
//
// Section 3's third research question: if temperature/humidity swings break
// a particular component type, it should show up as near-simultaneous
// failures of that component across multiple hosts.  CommonCauseDetector
// implements that test: cluster fault records by component within a time
// window and flag clusters spanning several hosts.
#pragma once

#include <string>
#include <vector>

#include "core/sim_time.hpp"

namespace zerodeg::faults {

enum class FaultComponent {
    kSystem,      ///< whole-machine crash/hang (the paper's "system failure")
    kSensorChip,
    kMemory,
    kDisk,
    kPsu,
    kFan,
    kSwitch,
};

[[nodiscard]] const char* to_string(FaultComponent c);

enum class FaultSeverity {
    kTransient,  ///< recovered by reset (host #15's first failure)
    kPermanent,  ///< requires replacement / retirement
};

[[nodiscard]] const char* to_string(FaultSeverity s);

struct FaultRecord {
    core::TimePoint time;
    int host_id = 0;            ///< 0 for non-host equipment (switches)
    std::string source;         ///< "host-15", "switch-1", ...
    FaultComponent component = FaultComponent::kSystem;
    FaultSeverity severity = FaultSeverity::kTransient;
    std::string description;
    bool in_tent = false;
};

class FaultLog {
public:
    void record(FaultRecord r);

    [[nodiscard]] const std::vector<FaultRecord>& records() const { return records_; }
    [[nodiscard]] std::size_t count() const { return records_.size(); }
    [[nodiscard]] std::size_t count_component(FaultComponent c) const;
    [[nodiscard]] std::size_t count_severity(FaultSeverity s) const;
    [[nodiscard]] std::vector<FaultRecord> for_host(int host_id) const;
    [[nodiscard]] std::size_t count_in_tent(bool in_tent) const;

    /// Distinct hosts with at least one fault of the given component.
    [[nodiscard]] std::size_t hosts_affected(FaultComponent c) const;

private:
    std::vector<FaultRecord> records_;
};

/// A cluster of same-component faults on different hosts within a window.
struct CommonCauseCluster {
    FaultComponent component = FaultComponent::kSystem;
    core::TimePoint first;
    core::TimePoint last;
    std::vector<int> host_ids;
};

class CommonCauseDetector {
public:
    /// @param window     faults within this span count as "simultaneous"
    /// @param min_hosts  minimum distinct hosts to call it common-cause
    explicit CommonCauseDetector(core::Duration window = core::Duration::hours(24),
                                 std::size_t min_hosts = 3);

    [[nodiscard]] std::vector<CommonCauseCluster> analyze(const FaultLog& log) const;

private:
    core::Duration window_;
    std::size_t min_hosts_;
};

}  // namespace zerodeg::faults
