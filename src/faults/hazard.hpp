// Environment-dependent hazard models.
//
// The paper's second research question is exactly this function: does the
// equipment failure rate rise when intake air is unconditioned?  We compose
// the standard reliability-physics acceleration models:
//   * Arrhenius       — thermal acceleration of chemical wear (hot side),
//   * Peck            — humidity acceleration (corrosion/electrochemistry),
//   * cold stress     — out-of-spec low-temperature operation and the
//                       mechanical stress of thermal cycling,
//   * bathtub         — infant mortality + useful life + wear-out over age,
// into a single failures-per-hour rate the injector integrates through time.
//
// The analytic Arrhenius/Peck classes and their table-backed fast form live
// in faults/hazard_table.hpp; HostHazardModel routes every evaluation —
// scalar or batched — through the shared table so both census engines see
// bit-identical hazards.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/units.hpp"
#include "faults/hazard_table.hpp"

namespace zerodeg::faults {

using core::Celsius;
using core::RelHumidity;

/// Excess hazard from operating below the characterized range: grows
/// quadratically below the threshold (condensed moisture, brittle solder,
/// out-of-spec timing).  Returns a multiplier >= 1.
class ColdStressModel {
public:
    ColdStressModel(Celsius threshold, double coefficient_per_deg2);

    [[nodiscard]] double acceleration(Celsius t) const;

private:
    double threshold_;
    double coeff_;
};

/// Bathtub hazard over component age (hours): Weibull infant mortality +
/// constant useful-life floor + Weibull wear-out.
class BathtubHazard {
public:
    struct Params {
        double infant_weight = 0.3;       ///< fraction of floor at t=0 decays away
        double infant_tau_hours = 500.0;  ///< decay constant of infant term
        double floor_per_hour = 1e-5;     ///< useful-life constant hazard
        double wearout_onset_hours = 30000.0;
        double wearout_scale_hours = 20000.0;
    };

    BathtubHazard() : BathtubHazard(Params()) {}
    explicit BathtubHazard(Params p);

    /// Hazard (per hour) at component age `hours`.
    [[nodiscard]] double hazard_per_hour(double hours) const;

private:
    Params p_;
};

/// Everything combined: the per-hour system-failure hazard of one host.
struct StressState {
    Celsius intake{20.0};
    RelHumidity humidity{40.0};
    double age_hours = 0.0;
    /// |d(intake)/dt| in K/h: thermal cycling works solder joints and
    /// connectors.  Zero in the air-conditioned basement; the tent swings.
    double cycling_rate_k_per_h = 0.0;
    bool known_unreliable = false;  ///< the vendor-B flaky series
};

/// Structure-of-arrays view of per-host stress for the batched census
/// engine: parallel arrays, one slot per host, `known_unreliable` as 0/1.
/// Same fields as StressState, laid out for contiguous sweeps.
struct StressSoa {
    const double* intake_c = nullptr;
    const double* humidity = nullptr;
    const double* age_hours = nullptr;
    const double* cycling_rate_k_per_h = nullptr;
    const std::uint8_t* known_unreliable = nullptr;
};

struct HostHazardParams {
    /// Baseline annual failure rate (AFR) of a healthy host in spec.  The
    /// fleet is end-of-life hardware headed for recycling, so this sits
    /// well above a new machine's ~4-5%.
    double base_afr = 0.09;
    /// Multiplier for the known-defective series (Section 3's fourth
    /// research question: those machines did NOT improve outside).
    double unreliable_multiplier = 35.0;
    /// Thermal-cycling multiplier: 1 + coeff * |dT/dt| (K/h).
    double cycling_coeff_per_k_per_h = 1.8;
    double arrhenius_ea_ev = 0.5;
    Celsius arrhenius_reference{45.0};  ///< component temp at 21 degC intake
    double peck_exponent = 2.7;
    RelHumidity peck_reference{50.0};
    /// RH above which the Peck term engages (moisture films form).
    RelHumidity humidity_knee{80.0};
    Celsius cold_threshold{0.0};
    double cold_coeff_per_deg2 = 0.012;
    BathtubHazard::Params bathtub{};
};

class HostHazardModel {
public:
    explicit HostHazardModel(HostHazardParams params = {});

    /// Failures per hour under the given stress.
    [[nodiscard]] double hazard_per_hour(const StressState& s) const {
        return hazard_one(s.intake.value(), s.humidity.value(), s.age_hours,
                          s.cycling_rate_k_per_h, s.known_unreliable);
    }

    /// Batched evaluation over `n` slots; writes failures/hour into `out`.
    /// Bit-identical to calling the scalar overload slot by slot.
    void hazard_per_hour(const StressSoa& soa, std::size_t n, double* out) const;

    [[nodiscard]] const HostHazardParams& params() const { return params_; }
    [[nodiscard]] const HazardTable& table() const { return table_; }

private:
    [[nodiscard]] double hazard_one(double intake_c, double humidity_pct, double age_hours,
                                    double cycling_rate_k_per_h, bool known_unreliable) const;

    HostHazardParams params_;
    HazardTable table_;
    ColdStressModel cold_;
    BathtubHazard bathtub_;
    double base_per_hour_;   ///< base_afr / hours-per-year, hoisted
    double bathtub_mid_;     ///< bathtub(10000 h) normalization denominator
};

}  // namespace zerodeg::faults
