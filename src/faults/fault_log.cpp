#include "faults/fault_log.hpp"

#include <algorithm>
#include <set>

namespace zerodeg::faults {

const char* to_string(FaultComponent c) {
    switch (c) {
        case FaultComponent::kSystem: return "system";
        case FaultComponent::kSensorChip: return "sensor chip";
        case FaultComponent::kMemory: return "memory";
        case FaultComponent::kDisk: return "disk";
        case FaultComponent::kPsu: return "PSU";
        case FaultComponent::kFan: return "fan";
        case FaultComponent::kSwitch: return "network switch";
    }
    return "?";
}

const char* to_string(FaultSeverity s) {
    switch (s) {
        case FaultSeverity::kTransient: return "transient";
        case FaultSeverity::kPermanent: return "permanent";
    }
    return "?";
}

void FaultLog::record(FaultRecord r) { records_.push_back(std::move(r)); }

std::size_t FaultLog::count_component(FaultComponent c) const {
    return static_cast<std::size_t>(std::count_if(
        records_.begin(), records_.end(),
        [c](const FaultRecord& r) { return r.component == c; }));
}

std::size_t FaultLog::count_severity(FaultSeverity s) const {
    return static_cast<std::size_t>(std::count_if(
        records_.begin(), records_.end(),
        [s](const FaultRecord& r) { return r.severity == s; }));
}

std::vector<FaultRecord> FaultLog::for_host(int host_id) const {
    std::vector<FaultRecord> out;
    for (const FaultRecord& r : records_) {
        if (r.host_id == host_id) out.push_back(r);
    }
    return out;
}

std::size_t FaultLog::count_in_tent(bool in_tent) const {
    return static_cast<std::size_t>(std::count_if(
        records_.begin(), records_.end(),
        [in_tent](const FaultRecord& r) { return r.in_tent == in_tent; }));
}

std::size_t FaultLog::hosts_affected(FaultComponent c) const {
    std::set<int> hosts;
    for (const FaultRecord& r : records_) {
        if (r.component == c && r.host_id != 0) hosts.insert(r.host_id);
    }
    return hosts.size();
}

CommonCauseDetector::CommonCauseDetector(core::Duration window, std::size_t min_hosts)
    : window_(window), min_hosts_(min_hosts) {}

std::vector<CommonCauseCluster> CommonCauseDetector::analyze(const FaultLog& log) const {
    // Group per component, sort by time, then sweep a window.
    std::vector<CommonCauseCluster> clusters;
    const FaultComponent kinds[] = {
        FaultComponent::kSystem, FaultComponent::kSensorChip, FaultComponent::kMemory,
        FaultComponent::kDisk,   FaultComponent::kPsu,        FaultComponent::kFan,
        FaultComponent::kSwitch,
    };
    for (const FaultComponent kind : kinds) {
        std::vector<const FaultRecord*> recs;
        for (const FaultRecord& r : log.records()) {
            if (r.component == kind && r.host_id != 0) recs.push_back(&r);
        }
        std::sort(recs.begin(), recs.end(),
                  [](const FaultRecord* a, const FaultRecord* b) { return a->time < b->time; });

        std::size_t i = 0;
        while (i < recs.size()) {
            std::size_t j = i;
            std::set<int> hosts;
            while (j < recs.size() && recs[j]->time - recs[i]->time <= window_) {
                hosts.insert(recs[j]->host_id);
                ++j;
            }
            if (hosts.size() >= min_hosts_) {
                CommonCauseCluster c;
                c.component = kind;
                c.first = recs[i]->time;
                c.last = recs[j - 1]->time;
                c.host_ids.assign(hosts.begin(), hosts.end());
                clusters.push_back(std::move(c));
                i = j;  // skip past this cluster
            } else {
                ++i;
            }
        }
    }
    return clusters;
}

}  // namespace zerodeg::faults
