// The fault injector: turns time-varying hazard into concrete fault events.
//
// Standard competing-risks machinery: for each host we draw a unit
// exponential threshold and integrate the hazard through (simulated) time;
// when the accumulated hazard crosses the threshold, a system failure fires
// and a fresh threshold is drawn.  Severity is sampled per event — most
// in-field failures present as transients (the paper's host #15 pattern:
// transient first, then a repeat that proves permanent).
//
// All hosts share one immutable HostHazardModel (and thus one precomputed
// HazardTable): the model depends only on the config, so the injector
// builds it once and every process evaluates against the same tables.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "faults/fault_log.hpp"
#include "faults/hazard.hpp"

namespace zerodeg::faults {

struct InjectorParams {
    HostHazardParams hazard{};
    /// Probability a system failure is transient (reset clears it).
    double transient_probability = 0.75;
    /// A host whose count of failures reaches this is deemed permanently
    /// defective (the operator criterion applied to host #15: second failure
    /// plus a Memtest86+ crash ended its tent career).
    int failures_to_permanent = 2;
};

/// One host's failure process.
class HostFaultProcess {
public:
    /// Convenience form: builds a private hazard model from `params`.
    HostFaultProcess(int host_id, bool known_unreliable, InjectorParams params,
                     core::RngStream rng);

    /// Fleet form: evaluates against a model shared across hosts.
    HostFaultProcess(int host_id, bool known_unreliable, InjectorParams params,
                     std::shared_ptr<const HostHazardModel> model, core::RngStream rng);

    /// Integrate hazard over `dt` at the given stress; returns true if a
    /// system failure fires within this interval.
    [[nodiscard]] bool advance(core::Duration dt, const StressState& stress);

    /// Batched-engine entry point: add an already-evaluated hazard integral
    /// (failures/hour x hours) to the accumulator.  Identical crossing
    /// arithmetic to advance(); callers must feed the same products the
    /// per-object path would compute.
    [[nodiscard]] bool accumulate(double hazard_hours);

    /// Classify the failure that just fired (call once per fired event).
    [[nodiscard]] FaultSeverity classify_failure();

    [[nodiscard]] int failures_so_far() const { return failures_; }
    [[nodiscard]] double cumulative_hazard() const { return cumulative_; }
    [[nodiscard]] int host_id() const { return host_id_; }
    [[nodiscard]] bool known_unreliable() const { return known_unreliable_; }

private:
    int host_id_;
    bool known_unreliable_;
    InjectorParams params_;
    std::shared_ptr<const HostHazardModel> model_;
    core::RngStream rng_;
    double cumulative_ = 0.0;
    double threshold_;
    int failures_ = 0;
};

/// Fleet-level injector: owns one process per host plus the shared model.
class FaultInjector {
public:
    FaultInjector(InjectorParams params, std::uint64_t master_seed);

    /// Register a host (idempotent per id).
    void add_host(int host_id, bool known_unreliable);

    /// Advance one host; if a failure fires, appends to `log` and returns
    /// the severity.  `source`/`in_tent` annotate the record.
    [[nodiscard]] std::optional<FaultSeverity> advance_host(
        int host_id, core::Duration dt, const StressState& stress, core::TimePoint now,
        const std::string& source, bool in_tent, FaultLog& log);

    /// Batched-engine twin of advance_host: the hazard integral for this
    /// tick was already computed by the shared model's SoA kernel; commit it
    /// and log exactly as advance_host would have.
    [[nodiscard]] std::optional<FaultSeverity> commit_host(int host_id, double hazard_hours,
                                                           core::TimePoint now,
                                                           const std::string& source,
                                                           bool in_tent, FaultLog& log);

    [[nodiscard]] const HostFaultProcess* process(int host_id) const;
    [[nodiscard]] const InjectorParams& params() const { return params_; }
    /// The config-wide hazard model (one table build per injector).
    [[nodiscard]] const HostHazardModel& model() const { return *model_; }

private:
    [[nodiscard]] FaultSeverity record_failure(HostFaultProcess& process, core::TimePoint now,
                                               const std::string& source, bool in_tent,
                                               FaultLog& log);

    InjectorParams params_;
    std::uint64_t master_seed_;
    std::shared_ptr<const HostHazardModel> model_;
    std::map<int, HostFaultProcess> processes_;
};

}  // namespace zerodeg::faults
