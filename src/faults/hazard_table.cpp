#include "faults/hazard_table.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/error.hpp"

namespace zerodeg::faults {

namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K

// Tabulated windows.  Component temperature is intake + a fixed rise, so
// the Arrhenius window covers every intake a Helsinki winter (or the
// acceptance grid's -40..+60 degC) can produce after that offset; the Peck
// window starts below the humidity knee (the model only engages above it)
// and runs past saturation.
constexpr double kArrheniusLoC = -60.0;
constexpr double kArrheniusHiC = 130.0;
constexpr double kPeckLoRh = 40.0;
constexpr double kPeckHiRh = 110.0;
constexpr double kStep = 0.125;

std::size_t knot_count(double lo, double hi) {
    return static_cast<std::size_t>((hi - lo) / kStep) + 1;
}

}  // namespace

ArrheniusModel::ArrheniusModel(double activation_energy_ev, Celsius reference)
    : ea_over_k_(activation_energy_ev / kBoltzmannEv),
      t_ref_kelvin_(reference.to_kelvin().value()) {
    if (activation_energy_ev <= 0.0) {
        throw core::InvalidArgument("ArrheniusModel: activation energy must be positive");
    }
}

double ArrheniusModel::acceleration(Celsius t) const {
    const double t_kelvin = t.to_kelvin().value();
    if (t_kelvin <= 0.0) throw core::InvalidArgument("ArrheniusModel: below absolute zero");
    return std::exp(ea_over_k_ * (1.0 / t_ref_kelvin_ - 1.0 / t_kelvin));
}

PeckModel::PeckModel(double exponent, RelHumidity reference)
    : n_(exponent), rh_ref_(reference.value()) {
    if (exponent <= 0.0) throw core::InvalidArgument("PeckModel: exponent must be positive");
    if (reference.value() <= 0.0) {
        throw core::InvalidArgument("PeckModel: reference RH must be positive");
    }
}

double PeckModel::acceleration(RelHumidity rh) const {
    const double clamped = std::max(rh.value(), 1.0);
    return std::pow(clamped / rh_ref_, n_);
}

CubicTable::CubicTable(double x0, double step, std::vector<double> values,
                       std::vector<double> slopes)
    : x0_(x0),
      x1_(x0 + step * static_cast<double>(values.size() - 1)),
      step_(step),
      inv_step_(1.0 / step),
      last_segment_(values.size() >= 2 ? values.size() - 2 : 0),
      y_(std::move(values)),
      m_(std::move(slopes)) {
    if (y_.size() < 2 || y_.size() != m_.size()) {
        throw core::InvalidArgument("CubicTable: need >= 2 knots with matching slopes");
    }
}

HazardTable::HazardTable(double arrhenius_ea_ev, Celsius arrhenius_reference, double peck_exponent,
                         RelHumidity peck_reference)
    : arrhenius_analytic_(arrhenius_ea_ev, arrhenius_reference),
      peck_analytic_(peck_exponent, peck_reference),
      arrhenius_table_([&] {
          const double ea_over_k = arrhenius_ea_ev / kBoltzmannEv;
          const std::size_t n = knot_count(kArrheniusLoC, kArrheniusHiC);
          std::vector<double> y(n);
          std::vector<double> m(n);
          for (std::size_t i = 0; i < n; ++i) {
              const double t_c = kArrheniusLoC + kStep * static_cast<double>(i);
              const double f = arrhenius_analytic_.acceleration(Celsius{t_c});
              const double t_k = Celsius{t_c}.to_kelvin().value();
              y[i] = f;
              m[i] = f * ea_over_k / (t_k * t_k);  // df/dT, exact
          }
          return CubicTable(kArrheniusLoC, kStep, std::move(y), std::move(m));
      }()),
      peck_table_([&] {
          const std::size_t n = knot_count(kPeckLoRh, kPeckHiRh);
          std::vector<double> y(n);
          std::vector<double> m(n);
          for (std::size_t i = 0; i < n; ++i) {
              const double rh = kPeckLoRh + kStep * static_cast<double>(i);
              const double f = peck_analytic_.acceleration(RelHumidity{rh});
              y[i] = f;
              m[i] = peck_exponent * f / rh;  // d/dRH of (RH/ref)^n, exact
          }
          return CubicTable(kPeckLoRh, kStep, std::move(y), std::move(m));
      }()) {}

}  // namespace zerodeg::faults
