#include "faults/hazard.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::faults {

namespace {
constexpr double kHoursPerYear = 8766.0;
}  // namespace

ColdStressModel::ColdStressModel(Celsius threshold, double coefficient_per_deg2)
    : threshold_(threshold.value()), coeff_(coefficient_per_deg2) {
    if (coefficient_per_deg2 < 0.0) {
        throw core::InvalidArgument("ColdStressModel: negative coefficient");
    }
}

double ColdStressModel::acceleration(Celsius t) const {
    if (t.value() >= threshold_) return 1.0;
    const double below = threshold_ - t.value();
    return 1.0 + coeff_ * below * below;
}

BathtubHazard::BathtubHazard(Params p) : p_(p) {
    if (p.floor_per_hour < 0.0 || p.infant_weight < 0.0 || p.infant_tau_hours <= 0.0 ||
        p.wearout_scale_hours <= 0.0) {
        throw core::InvalidArgument("BathtubHazard: bad parameters");
    }
}

double BathtubHazard::hazard_per_hour(double hours) const {
    if (hours < 0.0) throw core::InvalidArgument("BathtubHazard: negative age");
    const double infant =
        p_.floor_per_hour * p_.infant_weight * std::exp(-hours / p_.infant_tau_hours);
    double wearout = 0.0;
    if (hours > p_.wearout_onset_hours) {
        const double over = (hours - p_.wearout_onset_hours) / p_.wearout_scale_hours;
        wearout = p_.floor_per_hour * over * over;
    }
    return p_.floor_per_hour + infant + wearout;
}

HostHazardModel::HostHazardModel(HostHazardParams params)
    : params_(params),
      table_(params.arrhenius_ea_ev, params.arrhenius_reference, params.peck_exponent,
             params.peck_reference),
      cold_(params.cold_threshold, params.cold_coeff_per_deg2),
      bathtub_(params.bathtub),
      base_per_hour_(params.base_afr / kHoursPerYear),
      bathtub_mid_(bathtub_.hazard_per_hour(10000.0)) {}  // mid-life reference

double HostHazardModel::hazard_one(double intake_c, double humidity_pct, double age_hours,
                                   double cycling_rate_k_per_h, bool known_unreliable) const {
    // Normalize the bathtub so a mid-life host matches base_afr at reference
    // conditions, then scale by the acceleration factors.  Kept as a divide
    // (not a cached reciprocal) to round exactly like the pre-table code.
    const double age_shape = bathtub_.hazard_per_hour(age_hours) / bathtub_mid_;

    // Arrhenius works on component temperature; approximate it as intake
    // plus the same rise assumed at reference (the reference is "component
    // temp when intake is office air").
    const Celsius component_temp = Celsius{intake_c} + Celsius{24.0};
    double accel = table_.arrhenius(component_temp);
    if (humidity_pct > params_.humidity_knee.value()) {
        accel *= table_.peck(RelHumidity{humidity_pct});
    }
    accel *= cold_.acceleration(Celsius{intake_c});
    accel *= 1.0 + params_.cycling_coeff_per_k_per_h * std::max(0.0, cycling_rate_k_per_h);
    if (known_unreliable) accel *= params_.unreliable_multiplier;

    return base_per_hour_ * age_shape * accel;
}

void HostHazardModel::hazard_per_hour(const StressSoa& soa, std::size_t n, double* out) const {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = hazard_one(soa.intake_c[i], soa.humidity[i], soa.age_hours[i],
                            soa.cycling_rate_k_per_h[i], soa.known_unreliable[i] != 0);
    }
}

}  // namespace zerodeg::faults
