#include "faults/hazard.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::faults {

namespace {
constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K
constexpr double kHoursPerYear = 8766.0;
}  // namespace

ArrheniusModel::ArrheniusModel(double activation_energy_ev, Celsius reference)
    : ea_over_k_(activation_energy_ev / kBoltzmannEv),
      t_ref_kelvin_(reference.to_kelvin().value()) {
    if (activation_energy_ev <= 0.0) {
        throw core::InvalidArgument("ArrheniusModel: activation energy must be positive");
    }
}

double ArrheniusModel::acceleration(Celsius t) const {
    const double t_kelvin = t.to_kelvin().value();
    if (t_kelvin <= 0.0) throw core::InvalidArgument("ArrheniusModel: below absolute zero");
    return std::exp(ea_over_k_ * (1.0 / t_ref_kelvin_ - 1.0 / t_kelvin));
}

PeckModel::PeckModel(double exponent, RelHumidity reference)
    : n_(exponent), rh_ref_(reference.value()) {
    if (exponent <= 0.0) throw core::InvalidArgument("PeckModel: exponent must be positive");
    if (reference.value() <= 0.0) {
        throw core::InvalidArgument("PeckModel: reference RH must be positive");
    }
}

double PeckModel::acceleration(RelHumidity rh) const {
    const double clamped = std::max(rh.value(), 1.0);
    return std::pow(clamped / rh_ref_, n_);
}

ColdStressModel::ColdStressModel(Celsius threshold, double coefficient_per_deg2)
    : threshold_(threshold.value()), coeff_(coefficient_per_deg2) {
    if (coefficient_per_deg2 < 0.0) {
        throw core::InvalidArgument("ColdStressModel: negative coefficient");
    }
}

double ColdStressModel::acceleration(Celsius t) const {
    if (t.value() >= threshold_) return 1.0;
    const double below = threshold_ - t.value();
    return 1.0 + coeff_ * below * below;
}

BathtubHazard::BathtubHazard(Params p) : p_(p) {
    if (p.floor_per_hour < 0.0 || p.infant_weight < 0.0 || p.infant_tau_hours <= 0.0 ||
        p.wearout_scale_hours <= 0.0) {
        throw core::InvalidArgument("BathtubHazard: bad parameters");
    }
}

double BathtubHazard::hazard_per_hour(double hours) const {
    if (hours < 0.0) throw core::InvalidArgument("BathtubHazard: negative age");
    const double infant =
        p_.floor_per_hour * p_.infant_weight * std::exp(-hours / p_.infant_tau_hours);
    double wearout = 0.0;
    if (hours > p_.wearout_onset_hours) {
        const double over = (hours - p_.wearout_onset_hours) / p_.wearout_scale_hours;
        wearout = p_.floor_per_hour * over * over;
    }
    return p_.floor_per_hour + infant + wearout;
}

HostHazardModel::HostHazardModel(HostHazardParams params)
    : params_(params),
      arrhenius_(params.arrhenius_ea_ev, params.arrhenius_reference),
      peck_(params.peck_exponent, params.peck_reference),
      cold_(params.cold_threshold, params.cold_coeff_per_deg2),
      bathtub_(params.bathtub) {}

double HostHazardModel::hazard_per_hour(const StressState& s) const {
    // Normalize the bathtub so a mid-life host matches base_afr at reference
    // conditions, then scale by the acceleration factors.
    const double base_per_hour = params_.base_afr / kHoursPerYear;
    const double age_shape = bathtub_.hazard_per_hour(s.age_hours) /
                             bathtub_.hazard_per_hour(10000.0);  // mid-life reference

    // Arrhenius works on component temperature; approximate it as intake
    // plus the same rise assumed at reference (the reference is "component
    // temp when intake is office air").
    const Celsius component_temp = s.intake + Celsius{24.0};
    double accel = arrhenius_.acceleration(component_temp);
    if (s.humidity > params_.humidity_knee) {
        accel *= peck_.acceleration(s.humidity);
    }
    accel *= cold_.acceleration(s.intake);
    accel *= 1.0 + params_.cycling_coeff_per_k_per_h * std::max(0.0, s.cycling_rate_k_per_h);
    if (s.known_unreliable) accel *= params_.unreliable_multiplier;

    return base_per_hour * age_shape * accel;
}

}  // namespace zerodeg::faults
