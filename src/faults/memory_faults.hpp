// Memory soft-error model (Section 4.2.2).
//
// The paper's wrong-hash forensics: five corrupted archives out of 27 627
// runs, each traceable to a single flipped bit in one bzip2 block; with an
// estimated ~3.2 billion memory-page operations over the experiment, that is
// a fault ratio "around one in 570 million" page operations — and every
// affected host had non-ECC memory.  This model reproduces that pipeline:
// page operations accumulate per job, bit flips arrive as a Bernoulli/Poisson
// process over them, and ECC absorbs single-bit events.
#pragma once

#include <cstdint>

#include "core/rng.hpp"

namespace zerodeg::faults {

struct MemoryFaultParams {
    /// Probability of a bit flip per memory-page operation — the paper's
    /// headline "one in 570 million".
    double flip_probability_per_page_op = 1.0 / 570e6;
    /// Fraction of raw events that flip more than one bit in a word (ECC
    /// corrects single-bit errors, detects-but-may-not-correct doubles).
    double multi_bit_fraction = 0.02;
};

struct MemoryFaultOutcome {
    std::uint64_t raw_flips = 0;        ///< events before ECC
    std::uint64_t corrected = 0;        ///< absorbed by ECC (ECC hosts only)
    std::uint64_t corrupting_flips = 0; ///< reached data; archive hash wrong
};

class MemoryFaultModel {
public:
    MemoryFaultModel(MemoryFaultParams params, core::RngStream rng);

    /// Simulate `page_ops` memory-page operations on a host with or without
    /// ECC, returning what got through.
    [[nodiscard]] MemoryFaultOutcome run(std::uint64_t page_ops, bool ecc);

    [[nodiscard]] const MemoryFaultParams& params() const { return params_; }

    /// Closed-form expectation of corrupting flips for `page_ops` ops —
    /// for tests and the TAB-HASHES comparison row.
    [[nodiscard]] double expected_corruptions(std::uint64_t page_ops, bool ecc) const;

private:
    MemoryFaultParams params_;
    core::RngStream rng_;
};

}  // namespace zerodeg::faults
