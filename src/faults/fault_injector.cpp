#include "faults/fault_injector.hpp"

#include "core/error.hpp"

namespace zerodeg::faults {

HostFaultProcess::HostFaultProcess(int host_id, bool known_unreliable, InjectorParams params,
                                   core::RngStream rng)
    : HostFaultProcess(host_id, known_unreliable, params,
                       std::make_shared<const HostHazardModel>(params.hazard), std::move(rng)) {}

HostFaultProcess::HostFaultProcess(int host_id, bool known_unreliable, InjectorParams params,
                                   std::shared_ptr<const HostHazardModel> model,
                                   core::RngStream rng)
    : host_id_(host_id),
      known_unreliable_(known_unreliable),
      params_(params),
      model_(std::move(model)),
      rng_(rng),
      threshold_(rng_.exponential(1.0)) {}

bool HostFaultProcess::advance(core::Duration dt, const StressState& stress) {
    if (dt.count() < 0) throw core::InvalidArgument("HostFaultProcess::advance: negative dt");
    StressState s = stress;
    s.known_unreliable = known_unreliable_;
    return accumulate(model_->hazard_per_hour(s) * (static_cast<double>(dt.count()) / 3600.0));
}

bool HostFaultProcess::accumulate(double hazard_hours) {
    cumulative_ += hazard_hours;
    if (cumulative_ >= threshold_) {
        cumulative_ = 0.0;
        threshold_ = rng_.exponential(1.0);
        ++failures_;
        return true;
    }
    return false;
}

FaultSeverity HostFaultProcess::classify_failure() {
    if (failures_ >= params_.failures_to_permanent) return FaultSeverity::kPermanent;
    return rng_.chance(params_.transient_probability) ? FaultSeverity::kTransient
                                                      : FaultSeverity::kPermanent;
}

FaultInjector::FaultInjector(InjectorParams params, std::uint64_t master_seed)
    : params_(params),
      master_seed_(master_seed),
      model_(std::make_shared<const HostHazardModel>(params.hazard)) {}

void FaultInjector::add_host(int host_id, bool known_unreliable) {
    if (processes_.contains(host_id)) return;
    processes_.emplace(host_id,
                       HostFaultProcess(host_id, known_unreliable, params_, model_,
                                        core::RngStream{master_seed_,
                                                        "faults.host." + std::to_string(host_id)}));
}

std::optional<FaultSeverity> FaultInjector::advance_host(int host_id, core::Duration dt,
                                                         const StressState& stress,
                                                         core::TimePoint now,
                                                         const std::string& source, bool in_tent,
                                                         FaultLog& log) {
    const auto it = processes_.find(host_id);
    if (it == processes_.end()) {
        throw core::InvalidArgument("FaultInjector::advance_host: unknown host");
    }
    if (!it->second.advance(dt, stress)) return std::nullopt;
    return record_failure(it->second, now, source, in_tent, log);
}

std::optional<FaultSeverity> FaultInjector::commit_host(int host_id, double hazard_hours,
                                                        core::TimePoint now,
                                                        const std::string& source, bool in_tent,
                                                        FaultLog& log) {
    const auto it = processes_.find(host_id);
    if (it == processes_.end()) {
        throw core::InvalidArgument("FaultInjector::commit_host: unknown host");
    }
    if (!it->second.accumulate(hazard_hours)) return std::nullopt;
    return record_failure(it->second, now, source, in_tent, log);
}

const HostFaultProcess* FaultInjector::process(int host_id) const {
    const auto it = processes_.find(host_id);
    return it == processes_.end() ? nullptr : &it->second;
}

FaultSeverity FaultInjector::record_failure(HostFaultProcess& process, core::TimePoint now,
                                            const std::string& source, bool in_tent,
                                            FaultLog& log) {
    const FaultSeverity severity = process.classify_failure();
    FaultRecord rec;
    rec.time = now;
    rec.host_id = process.host_id();
    rec.source = source;
    rec.component = FaultComponent::kSystem;
    rec.severity = severity;
    rec.description = severity == FaultSeverity::kTransient
                          ? "system failure (no cause determined)"
                          : "system failure (permanent; unit defective)";
    rec.in_tent = in_tent;
    log.record(std::move(rec));
    return severity;
}

}  // namespace zerodeg::faults
