#include "faults/distributions.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::faults {

Exponential::Exponential(double rate) : rate_(rate) {
    if (rate <= 0.0) throw core::InvalidArgument("Exponential: rate must be positive");
}

double Exponential::cdf(double t) const { return t <= 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * t); }

double Exponential::sample(core::RngStream& rng) const { return rng.exponential(rate_); }

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    if (shape <= 0.0 || scale <= 0.0) {
        throw core::InvalidArgument("Weibull: shape and scale must be positive");
    }
}

double Weibull::hazard(double t) const {
    if (t < 0.0) return 0.0;
    if (t == 0.0) {
        // h(0) diverges for shape < 1; report the 1-second-in hazard instead
        // of infinity so integrators stay finite.
        t = 1.0 / 3600.0;
    }
    return shape_ / scale_ * std::pow(t / scale_, shape_ - 1.0);
}

double Weibull::cdf(double t) const {
    return t <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(t / scale_, shape_));
}

double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

double Weibull::sample(core::RngStream& rng) const {
    double u = rng.uniform01();
    while (u <= 0.0) u = rng.uniform01();
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    if (sigma <= 0.0) throw core::InvalidArgument("LogNormal: sigma must be positive");
}

double LogNormal::median() const { return std::exp(mu_); }

double LogNormal::cdf(double t) const {
    if (t <= 0.0) return 0.0;
    return 0.5 * (1.0 + std::erf((std::log(t) - mu_) / (sigma_ * std::sqrt(2.0))));
}

double LogNormal::sample(core::RngStream& rng) const {
    return std::exp(mu_ + sigma_ * rng.normal());
}

}  // namespace zerodeg::faults
