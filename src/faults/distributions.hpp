// Failure-time distributions.
//
// Used directly for components with environment-independent lifetimes (the
// defective switches) and, via their hazard functions, as building blocks of
// the time-varying models in hazard.hpp.
#pragma once

#include "core/rng.hpp"

namespace zerodeg::faults {

/// Exponential(rate): constant hazard, memoryless — the useful-life floor of
/// the bathtub curve.
class Exponential {
public:
    explicit Exponential(double rate);

    [[nodiscard]] double rate() const { return rate_; }
    [[nodiscard]] double hazard(double /*t*/) const { return rate_; }
    [[nodiscard]] double mean() const { return 1.0 / rate_; }
    [[nodiscard]] double cdf(double t) const;
    [[nodiscard]] double sample(core::RngStream& rng) const;

private:
    double rate_;
};

/// Weibull(shape k, scale lambda): k < 1 gives infant mortality, k > 1 gives
/// wear-out; hazard h(t) = (k/lambda) (t/lambda)^(k-1).
class Weibull {
public:
    Weibull(double shape, double scale);

    [[nodiscard]] double shape() const { return shape_; }
    [[nodiscard]] double scale() const { return scale_; }
    [[nodiscard]] double hazard(double t) const;
    [[nodiscard]] double cdf(double t) const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double sample(core::RngStream& rng) const;

private:
    double shape_;
    double scale_;
};

/// LogNormal(mu, sigma) of the underlying normal; classic for electronics
/// wear mechanisms (electromigration, corrosion).
class LogNormal {
public:
    LogNormal(double mu, double sigma);

    [[nodiscard]] double median() const;
    [[nodiscard]] double cdf(double t) const;
    [[nodiscard]] double sample(core::RngStream& rng) const;

private:
    double mu_;
    double sigma_;
};

}  // namespace zerodeg::faults
