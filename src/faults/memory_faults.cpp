#include "faults/memory_faults.hpp"

#include "core/error.hpp"

namespace zerodeg::faults {

MemoryFaultModel::MemoryFaultModel(MemoryFaultParams params, core::RngStream rng)
    : params_(params), rng_(rng) {
    if (params.flip_probability_per_page_op < 0.0 || params.flip_probability_per_page_op > 1.0) {
        throw core::InvalidArgument("MemoryFaultModel: probability out of [0,1]");
    }
    if (params.multi_bit_fraction < 0.0 || params.multi_bit_fraction > 1.0) {
        throw core::InvalidArgument("MemoryFaultModel: multi-bit fraction out of [0,1]");
    }
}

MemoryFaultOutcome MemoryFaultModel::run(std::uint64_t page_ops, bool ecc) {
    MemoryFaultOutcome out;
    // The per-op probability is tiny; the count over a job is Poisson with
    // mean p * n to excellent accuracy.
    const double mean = params_.flip_probability_per_page_op * static_cast<double>(page_ops);
    out.raw_flips = rng_.poisson(mean);
    for (std::uint64_t i = 0; i < out.raw_flips; ++i) {
        const bool multi_bit = rng_.chance(params_.multi_bit_fraction);
        if (ecc && !multi_bit) {
            ++out.corrected;
        } else {
            ++out.corrupting_flips;
        }
    }
    return out;
}

double MemoryFaultModel::expected_corruptions(std::uint64_t page_ops, bool ecc) const {
    const double mean = params_.flip_probability_per_page_op * static_cast<double>(page_ops);
    return ecc ? mean * params_.multi_bit_fraction : mean;
}

}  // namespace zerodeg::faults
