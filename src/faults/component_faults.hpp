// Component-level fault processes: fans, disks, and disk media.
//
// Research question 3 of the paper: "which components will fail first...
// If the extreme temperature and humidity shifts indeed cause certain
// components to regularly fail, we should be able to detect this as a
// common-cause failure on multiple hosts nearly simultaneously."  These
// processes give the census something to detect (or, as in the paper,
// fail to detect): per-component hazards with their own physics —
// mechanical wear for fans and spindles (cold thickens lubricants), Peck
// humidity stress for media, Arrhenius for electronics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "faults/hazard.hpp"

namespace zerodeg::faults {

enum class ComponentEventKind {
    kFanSeized,
    kDiskFailed,
    kDiskMediaError,  ///< grown defects: pending sectors, not a dead drive
};

[[nodiscard]] const char* to_string(ComponentEventKind k);

struct ComponentEvent {
    ComponentEventKind kind;
    int component_index = 0;  ///< which fan / which drive
    int detail = 0;           ///< media error: number of pending sectors
};

struct ComponentFaultParams {
    /// Fan bearing AFR at reference conditions (sleeve bearings in recycled
    /// machines are the classic first casualty).
    double fan_afr = 0.02;
    /// Cold thickens bearing lubricant: multiplier per degree below zero
    /// intake (linear, mild).
    double fan_cold_per_deg = 0.015;

    /// Disk (whole-drive) AFR at reference temperature.
    double disk_afr = 0.025;
    /// Google-style temperature sensitivity: hazard grows away from the
    /// 25..30 degC sweet spot; this is the per-deg^2 coefficient.
    double disk_temp_coeff = 0.002;
    Celsius disk_sweet_spot{28.0};

    /// Grown-defect (media) events per drive-year at reference.
    double media_events_per_year = 0.4;
    /// Humidity acceleration for media events above the knee.
    double media_peck_exponent = 2.0;
    RelHumidity media_humidity_knee{80.0};
    RelHumidity media_peck_reference{50.0};
    /// Pending sectors per media event, 1..this.
    int media_max_sectors = 8;
};

/// Per-host component fault generator (competing risks per component).
class ComponentFaultProcess {
public:
    ComponentFaultProcess(int host_id, int fans, int disks, ComponentFaultParams params,
                          core::RngStream rng);

    /// Advance all surviving components; returns the events that fired.
    /// `intake` is enclosure air, `hdd_temp` the drive temperature, `rh`
    /// the enclosure humidity.
    [[nodiscard]] std::vector<ComponentEvent> advance(core::Duration dt, Celsius intake,
                                                      Celsius hdd_temp, RelHumidity rh);

    [[nodiscard]] int host_id() const { return host_id_; }
    [[nodiscard]] int live_fans() const;
    [[nodiscard]] int live_disks() const;

private:
    struct Risk {
        double cumulative = 0.0;
        double threshold = 0.0;
        bool dead = false;
    };

    int host_id_;
    ComponentFaultParams params_;
    core::RngStream rng_;
    std::vector<Risk> fans_;
    std::vector<Risk> disks_;
    std::vector<Risk> media_;  ///< per-disk media-event processes (renewing)

    [[nodiscard]] double fan_hazard_per_hour(Celsius intake) const;
    [[nodiscard]] double disk_hazard_per_hour(Celsius hdd_temp) const;
    [[nodiscard]] double media_hazard_per_hour(RelHumidity rh) const;
};

}  // namespace zerodeg::faults
