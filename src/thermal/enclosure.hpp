// Enclosure models: the tent on the roof terrace, the plastic-box prototype
// shelter, and the basement control room.
//
// An Enclosure turns the outdoor state plus the equipment's power draw into
// the air condition the machines actually inhale.  The tent is the paper's
// centerpiece: Section 3.2 lists the four factors that set its internal
// temperature — outside air, sunlight/wind, equipment power, and which flaps
// are open — and Section 4.1's Figure 3 annotates the four modifications
// (R: reflective foil, I: inner tent removed, B: bottom tarpaulin removed,
// F: table fan installed) the authors made to dump heat.  Each modification
// maps to a parameter change on the tent's RC node.
#pragma once

#include <string>

#include "core/units.hpp"
#include "weather/psychrometrics.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg::thermal {

using core::Celsius;
using core::Duration;
using core::RelHumidity;
using core::Watts;
using weather::WeatherSample;

/// Air condition inside an enclosure.
struct EnclosureAir {
    Celsius temperature;
    RelHumidity humidity;
    Celsius dew_point;
};

/// Interface shared by the tent, prototype boxes and basement.
class Enclosure {
public:
    virtual ~Enclosure() = default;

    /// Total electrical power currently dissipated inside.
    virtual void set_equipment_power(Watts p) = 0;

    /// Advance internal state by dt under the given outdoor conditions.
    virtual void step(Duration dt, const WeatherSample& outside) = 0;

    [[nodiscard]] virtual EnclosureAir air() const = 0;
    [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Named tent modifications from Fig. 3.
enum class TentMod {
    kReflectiveFoil,   ///< R: rescue-foil cover reduces solar gain
    kInnerTentRemoved, ///< I: inner fabric cut open
    kBottomOpened,     ///< B: bottom tarpaulin partially removed
    kFanInstalled,     ///< F: tabletop motorized fan
    kFrontDoorHalfOpen ///< ongoing operational tweak from Section 3.2
};

[[nodiscard]] const char* to_string(TentMod mod);
[[nodiscard]] char short_code(TentMod mod);  ///< 'R', 'I', 'B', 'F', 'D'

struct TentConfig {
    /// Envelope conductance with everything closed, per the heat-retention
    /// surprise of Section 3.2 (a camping tent is built to keep warmth in).
    core::WattsPerKelvin base_conductance{26.0};

    /// Multipliers applied to the envelope conductance by each modification.
    double inner_removed_factor = 1.6;
    double bottom_opened_factor = 1.5;
    double fan_factor = 1.9;
    double front_door_factor = 1.25;

    /// Wind doubles heat removal at about this speed (forced convection).
    double wind_doubling_mps = 6.0;

    /// Effective solar aperture (m^2) without and with the foil cover.
    double solar_aperture_m2 = 1.35;
    double solar_aperture_foil_m2 = 0.4;

    /// Thermal mass of tent air + contents (J/K).  ~6 m^3 of air plus the
    /// machines' metal gives a time constant of tens of minutes.
    core::JoulesPerKelvin heat_capacity{90000.0};

    /// Moisture buffering: tent RH relaxes toward the rebased outside RH
    /// with this time constant (fabric and snow on the ground buffer vapor).
    Duration humidity_tau = Duration::minutes(50);
};

class TentModel final : public Enclosure {
public:
    explicit TentModel(TentConfig config = {}, Celsius initial = Celsius{0.0});

    void apply_modification(TentMod mod);
    [[nodiscard]] bool has_modification(TentMod mod) const;

    void set_equipment_power(Watts p) override { equipment_power_ = p; }
    void step(Duration dt, const WeatherSample& outside) override;
    [[nodiscard]] EnclosureAir air() const override;
    [[nodiscard]] const std::string& name() const override { return name_; }

    /// Envelope conductance with current modifications and wind.
    [[nodiscard]] core::WattsPerKelvin effective_conductance(
        core::MetersPerSecond wind) const;

    /// Solar heat input with current modifications.
    [[nodiscard]] Watts solar_gain(core::WattsPerSquareMeter ghi) const;

    [[nodiscard]] const TentConfig& config() const { return config_; }

private:
    std::string name_ = "tent";
    TentConfig config_;
    Watts equipment_power_{0.0};
    double inside_temp_;   ///< degC
    double inside_rh_;     ///< %
    bool mods_[5] = {};
    bool humidity_initialized_ = false;
};

/// The prototype shelter from Section 3.1: two hard plastic boxes that "did
/// not really impede air flow or contain any heat" — i.e. a high-conductance
/// envelope with no solar aperture worth modeling.
class PrototypeBoxModel final : public Enclosure {
public:
    explicit PrototypeBoxModel(Celsius initial = Celsius{0.0});

    void set_equipment_power(Watts p) override { equipment_power_ = p; }
    void step(Duration dt, const WeatherSample& outside) override;
    [[nodiscard]] EnclosureAir air() const override;
    [[nodiscard]] const std::string& name() const override { return name_; }

private:
    std::string name_ = "prototype-boxes";
    Watts equipment_power_{0.0};
    double inside_temp_;
    double inside_rh_ = 80.0;
    static constexpr double kConductance = 55.0;   ///< W/K — nearly open air
    static constexpr double kCapacity = 15000.0;   ///< J/K
};

/// The basement control room: protection-shelter space with "stable,
/// office-type air conditioning", operating within equipment specs.
class BasementModel final : public Enclosure {
public:
    explicit BasementModel(Celsius setpoint = Celsius{21.0},
                           RelHumidity humidity = RelHumidity{35.0});

    void set_equipment_power(Watts p) override;
    void step(Duration dt, const WeatherSample& outside) override;
    [[nodiscard]] EnclosureAir air() const override;
    [[nodiscard]] const std::string& name() const override { return name_; }

    /// HVAC work done removing the equipment heat (for energy accounting).
    [[nodiscard]] core::Joules cooling_energy() const { return cooling_energy_; }

private:
    std::string name_ = "basement";
    Celsius setpoint_;
    RelHumidity humidity_;
    Watts equipment_power_{0.0};
    double temp_;  ///< degC; small excursion proportional to load
    core::Joules cooling_energy_{0.0};
};

}  // namespace zerodeg::thermal
