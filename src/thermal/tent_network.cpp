#include "thermal/tent_network.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::thermal {

namespace {
// How the single-node envelope conductance splits across the two boundary
// layers: inner (air -> fabric) and outer (fabric -> ambient).  Series
// conductances G_i and G_o combine as G = G_i G_o / (G_i + G_o); with
// G_i = G_o = 2G the series total equals G, matching the lumped model.
constexpr double kSeriesFactor = 2.0;
}  // namespace

TentNetworkModel::TentNetworkModel(TentConfig config, Celsius initial) : config_(config) {
    // ~6 m^3 of air is only ~7 kJ/K; most of the lumped model's 90 kJ/K is
    // the contents.  Split the configured capacity accordingly.
    const double total_cap = config_.heat_capacity.value();
    air_node_ = net_.add_node("inside-air", core::JoulesPerKelvin{0.12 * total_cap}, initial);
    fabric_node_ = net_.add_node("fabric", core::JoulesPerKelvin{0.08 * total_cap}, initial,
                                 core::WattsPerKelvin{kSeriesFactor *
                                                      config_.base_conductance.value()});
    mass_node_ = net_.add_node("equipment-mass", core::JoulesPerKelvin{0.80 * total_cap},
                               initial);
    air_fabric_edge_ = net_.connect(
        air_node_, fabric_node_,
        core::WattsPerKelvin{kSeriesFactor * config_.base_conductance.value()});
    // The machines' fans couple their steel tightly to the tent air.
    net_.connect(air_node_, mass_node_, core::WattsPerKelvin{45.0});
}

void TentNetworkModel::apply_modification(TentMod mod) { mods_[static_cast<int>(mod)] = true; }

bool TentNetworkModel::has_modification(TentMod mod) const {
    return mods_[static_cast<int>(mod)];
}

double TentNetworkModel::envelope_multiplier() const {
    double m = 1.0;
    if (has_modification(TentMod::kInnerTentRemoved)) m *= config_.inner_removed_factor;
    if (has_modification(TentMod::kBottomOpened)) m *= config_.bottom_opened_factor;
    if (has_modification(TentMod::kFanInstalled)) m *= config_.fan_factor;
    if (has_modification(TentMod::kFrontDoorHalfOpen)) m *= config_.front_door_factor;
    return m;
}

void TentNetworkModel::update_conductances(core::MetersPerSecond wind) {
    double wind_gain = wind.value() / config_.wind_doubling_mps;
    if (has_modification(TentMod::kBottomOpened) ||
        has_modification(TentMod::kFrontDoorHalfOpen)) {
        wind_gain *= 1.5;
    }
    // Both boundary layers scale together so the series total reduces
    // exactly to the lumped model's envelope conductance (the property the
    // equivalence tests pin down).
    const double g = config_.base_conductance.value() * envelope_multiplier() *
                     (1.0 + wind_gain);
    net_.set_edge_conductance(air_fabric_edge_, core::WattsPerKelvin{kSeriesFactor * g});
    net_.set_ambient_conductance(fabric_node_, core::WattsPerKelvin{kSeriesFactor * g});
}

void TentNetworkModel::step(Duration dt, const WeatherSample& outside) {
    if (dt.count() < 0) throw core::InvalidArgument("TentNetworkModel::step: negative dt");
    if (!humidity_initialized_) {
        inside_rh_ = weather::rebase_humidity(outside.temperature, outside.humidity,
                                              net_.temperature(air_node_))
                         .clamped()
                         .value();
        humidity_initialized_ = true;
    }
    update_conductances(outside.wind);

    // Equipment heat enters the air; the sun loads the fabric (which is why
    // the foil works: it shrinks the aperture before the heat reaches air).
    net_.set_power(air_node_, equipment_power_);
    const double aperture = has_modification(TentMod::kReflectiveFoil)
                                ? config_.solar_aperture_foil_m2
                                : config_.solar_aperture_m2;
    net_.set_power(fabric_node_, outside.irradiance.over_area(aperture));

    net_.step(dt, outside.temperature);

    // Moisture follows the same lag law as the lumped model.
    const double rh_target = weather::rebase_humidity(outside.temperature, outside.humidity,
                                                      net_.temperature(air_node_))
                                 .clamped()
                                 .value();
    double tau = static_cast<double>(config_.humidity_tau.count()) / envelope_multiplier();
    const double b = std::exp(-static_cast<double>(dt.count()) / std::max(tau, 1.0));
    inside_rh_ = std::clamp(rh_target + (inside_rh_ - rh_target) * b, 0.0, 100.0);
}

EnclosureAir TentNetworkModel::air() const {
    EnclosureAir a;
    a.temperature = net_.temperature(air_node_);
    a.humidity = core::RelHumidity{inside_rh_};
    a.dew_point = inside_rh_ > 0.0 ? weather::dew_point(a.temperature, a.humidity)
                                   : Celsius{-100.0};
    return a;
}

Celsius TentNetworkModel::fabric_temperature() const { return net_.temperature(fabric_node_); }

Celsius TentNetworkModel::equipment_mass_temperature() const {
    return net_.temperature(mass_node_);
}

}  // namespace zerodeg::thermal
