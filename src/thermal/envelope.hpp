// Operating-envelope classification (the "industry tribal knowledge" meter).
//
// Data-center practice judges intake air against an allowable envelope
// (ASHRAE's classes; in 2010 the common allowable was roughly 15..32 degC
// and 20..80% RH).  The paper's whole point is that its tent spent most of
// the season far outside any such envelope — "sub-zero temperatures or
// relative humidities above 80% or 90% are not a certified cause for server
// failures" — so we meter exactly how far outside, for the census to set
// against the (flat) failure rate.
#pragma once

#include <cstddef>

#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::thermal {

struct EnvelopeSpec {
    const char* name = "custom";
    core::Celsius min_temp{15.0};
    core::Celsius max_temp{32.0};
    core::RelHumidity min_rh{20.0};
    core::RelHumidity max_rh{80.0};
    core::Celsius max_dew_point{17.0};
};

/// The 2008 ASHRAE "recommended" envelope (tightest).
[[nodiscard]] EnvelopeSpec ashrae_recommended();
/// The 2008 "allowable class 1/2"-style envelope the paper's era used.
[[nodiscard]] EnvelopeSpec ashrae_allowable();
/// The widest modern free-air class (A4-like), for contrast.
[[nodiscard]] EnvelopeSpec ashrae_a4_like();

enum class EnvelopeVerdict {
    kWithin,
    kTooCold,
    kTooHot,
    kTooDry,
    kTooHumid,
    kDewPointHigh,
};

[[nodiscard]] const char* to_string(EnvelopeVerdict v);

/// Classify one air state (first violated limit wins, cold before humidity —
/// matching how operators narrate it).
[[nodiscard]] EnvelopeVerdict classify(const EnvelopeSpec& spec, core::Celsius temp,
                                       core::RelHumidity rh, core::Celsius dew_point);

/// Accumulates time-in/out-of-envelope over a run.
class EnvelopeTracker {
public:
    explicit EnvelopeTracker(EnvelopeSpec spec);

    void observe(core::Duration dt, core::Celsius temp, core::RelHumidity rh,
                 core::Celsius dew_point);

    [[nodiscard]] double hours_total() const { return hours_total_; }
    [[nodiscard]] double hours_within() const { return hours_[0]; }
    [[nodiscard]] double hours(EnvelopeVerdict v) const {
        return hours_[static_cast<std::size_t>(v)];
    }
    /// Fraction of observed time inside the envelope.
    [[nodiscard]] double fraction_within() const;
    [[nodiscard]] const EnvelopeSpec& spec() const { return spec_; }

private:
    EnvelopeSpec spec_;
    double hours_total_ = 0.0;
    double hours_[6] = {};
};

}  // namespace zerodeg::thermal
