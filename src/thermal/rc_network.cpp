#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::thermal {

NodeId ThermalNetwork::add_node(std::string name, JoulesPerKelvin capacity, Celsius initial,
                                WattsPerKelvin to_ambient) {
    if (capacity.value() <= 0.0) {
        throw core::InvalidArgument("ThermalNetwork::add_node: capacity must be positive");
    }
    if (to_ambient.value() < 0.0) {
        throw core::InvalidArgument("ThermalNetwork::add_node: negative conductance");
    }
    nodes_.push_back(
        {std::move(name), capacity.value(), initial.value(), 0.0, to_ambient.value()});
    stiffest_rate_dirty_ = true;
    return nodes_.size() - 1;
}

std::size_t ThermalNetwork::connect(NodeId a, NodeId b, WattsPerKelvin conductance) {
    check_node(a);
    check_node(b);
    if (a == b) throw core::InvalidArgument("ThermalNetwork::connect: self-edge");
    if (conductance.value() < 0.0) {
        throw core::InvalidArgument("ThermalNetwork::connect: negative conductance");
    }
    edges_.push_back({a, b, conductance.value()});
    stiffest_rate_dirty_ = true;
    return edges_.size() - 1;
}

void ThermalNetwork::set_edge_conductance(std::size_t edge, WattsPerKelvin conductance) {
    if (edge >= edges_.size()) throw core::InvalidArgument("ThermalNetwork: bad edge index");
    if (conductance.value() < 0.0) {
        throw core::InvalidArgument("ThermalNetwork: negative conductance");
    }
    edges_[edge].conductance = conductance.value();
    stiffest_rate_dirty_ = true;
}

WattsPerKelvin ThermalNetwork::edge_conductance(std::size_t edge) const {
    if (edge >= edges_.size()) throw core::InvalidArgument("ThermalNetwork: bad edge index");
    return WattsPerKelvin{edges_[edge].conductance};
}

void ThermalNetwork::set_power(NodeId n, Watts p) {
    check_node(n);
    nodes_[n].power = p.value();
}

Watts ThermalNetwork::power(NodeId n) const {
    check_node(n);
    return Watts{nodes_[n].power};
}

void ThermalNetwork::set_ambient_conductance(NodeId n, WattsPerKelvin g) {
    check_node(n);
    if (g.value() < 0.0) throw core::InvalidArgument("ThermalNetwork: negative conductance");
    nodes_[n].to_ambient = g.value();
    stiffest_rate_dirty_ = true;
}

WattsPerKelvin ThermalNetwork::ambient_conductance(NodeId n) const {
    check_node(n);
    return WattsPerKelvin{nodes_[n].to_ambient};
}

void ThermalNetwork::set_temperature(NodeId n, Celsius t) {
    check_node(n);
    nodes_[n].temperature = t.value();
}

Celsius ThermalNetwork::temperature(NodeId n) const {
    check_node(n);
    return Celsius{nodes_[n].temperature};
}

const std::string& ThermalNetwork::name(NodeId n) const {
    check_node(n);
    return nodes_[n].name;
}

double ThermalNetwork::stiffest_rate() const {
    if (stiffest_rate_dirty_) {
        double rate = 0.0;
        for (NodeId n = 0; n < nodes_.size(); ++n) rate = std::max(rate, max_rate(n));
        stiffest_rate_ = rate;
        stiffest_rate_dirty_ = false;
    }
    return stiffest_rate_;
}

double ThermalNetwork::max_rate(NodeId n) const {
    double g = nodes_[n].to_ambient;
    for (const Edge& e : edges_) {
        if (e.a == n || e.b == n) g += e.conductance;
    }
    return g / nodes_[n].capacity;
}

void ThermalNetwork::step(Duration dt, Celsius ambient) {
    if (dt.count() < 0) throw core::InvalidArgument("ThermalNetwork::step: negative dt");
    if (nodes_.empty() || dt.count() == 0) return;

    // Explicit Euler is stable for dt < 2/rate; use a quarter of that.
    // The stiffest rate depends only on topology and conductances, so the
    // scan is cached and set_power/set_temperature stay invalidation-free.
    const double rate = stiffest_rate();
    double remaining = static_cast<double>(dt.count());
    const double max_sub = rate > 0.0 ? 0.5 / rate : remaining;
    while (remaining > 0.0) {
        const double sub = std::min(remaining, max_sub);
        single_step(sub, ambient.value());
        remaining -= sub;
    }
}

void ThermalNetwork::single_step(double dt_seconds, double ambient) {
    flow_.assign(nodes_.size(), 0.0);
    std::vector<double>& flow = flow_;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        flow[i] = n.power + n.to_ambient * (ambient - n.temperature);
    }
    for (const Edge& e : edges_) {
        const double q = e.conductance * (nodes_[e.b].temperature - nodes_[e.a].temperature);
        flow[e.a] += q;
        flow[e.b] -= q;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i].temperature += flow[i] / nodes_[i].capacity * dt_seconds;
    }
}

Watts ThermalNetwork::heat_flow_to_ambient(NodeId n, Celsius ambient) const {
    check_node(n);
    return Watts{nodes_[n].to_ambient * (nodes_[n].temperature - ambient.value())};
}

Celsius ThermalNetwork::local_equilibrium(NodeId n, Celsius ambient) const {
    check_node(n);
    double g_total = nodes_[n].to_ambient;
    double weighted = nodes_[n].to_ambient * ambient.value();
    for (const Edge& e : edges_) {
        if (e.a == n) {
            g_total += e.conductance;
            weighted += e.conductance * nodes_[e.b].temperature;
        } else if (e.b == n) {
            g_total += e.conductance;
            weighted += e.conductance * nodes_[e.a].temperature;
        }
    }
    if (g_total <= 0.0) {
        throw core::InvalidArgument("local_equilibrium: node has no conductance anywhere");
    }
    return Celsius{(weighted + nodes_[n].power) / g_total};
}

void ThermalNetwork::check_node(NodeId n) const {
    if (n >= nodes_.size()) throw core::InvalidArgument("ThermalNetwork: bad node id");
}

}  // namespace zerodeg::thermal
