// Per-machine thermal model: intake air -> component temperatures.
//
// The paper's prototype observation anchors this model: with outside air
// averaging -9.2 degC, lm-sensors reported CPU temperatures down to -4 degC —
// i.e. a near-idle machine in a strong cold airflow runs its silicon only a
// few kelvin above intake.  Each component is a first-order lag over intake
// temperature plus a (power x thermal-resistance) rise; airflow (case fans +
// any external wind reaching the case) lowers the resistance.
#pragma once

#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::thermal {

struct ServerThermalConfig {
    /// Thermal resistance intake->CPU die at nominal airflow (K/W of CPU power).
    double cpu_resistance_k_per_w = 0.38;
    /// Thermal resistance intake->case air (K/W of total power).
    double case_resistance_k_per_w = 0.045;
    /// HDD sits in the case airflow with a small self-heating rise.
    double hdd_rise_k = 4.0;
    /// First-order lag time constants.
    core::Duration cpu_tau = core::Duration::seconds(90);
    core::Duration case_tau = core::Duration::minutes(12);
    core::Duration hdd_tau = core::Duration::minutes(20);
    /// Fraction by which doubling airflow reduces the resistances.
    double airflow_exponent = 0.6;
};

/// Configurations per chassis, reflecting Section 3.4's form factors.
/// Vendor B's small-form-factor series has the "bad air flow circulation"
/// defect the authors deliberately included.
[[nodiscard]] ServerThermalConfig tower_thermal_config();      // vendor A
[[nodiscard]] ServerThermalConfig sff_thermal_config();        // vendor B (poor airflow)
[[nodiscard]] ServerThermalConfig rack_2u_thermal_config();    // vendor C

class ServerThermalModel {
public:
    explicit ServerThermalModel(ServerThermalConfig config, core::Celsius initial_intake);

    /// Advance by dt given intake air temperature, the CPU's current power,
    /// the machine's total power, and relative airflow (1.0 = nominal fans;
    /// >1 when outside wind blows through an opened enclosure).
    void step(core::Duration dt, core::Celsius intake, core::Watts cpu_power,
              core::Watts total_power, double airflow = 1.0);

    [[nodiscard]] core::Celsius cpu_temperature() const { return core::Celsius{cpu_}; }
    [[nodiscard]] core::Celsius case_air_temperature() const { return core::Celsius{case_air_}; }
    [[nodiscard]] core::Celsius hdd_temperature() const { return core::Celsius{hdd_}; }

    /// Exterior case-surface temperature, the quantity that matters for the
    /// Section 5 condensation question: it sits between intake air and case
    /// air and is always warmed by the internal dissipation.
    [[nodiscard]] core::Celsius case_surface_temperature(core::Celsius intake) const;

    [[nodiscard]] const ServerThermalConfig& config() const { return config_; }

private:
    ServerThermalConfig config_;
    double cpu_;
    double case_air_;
    double hdd_;

    static double relax(double current, double target, double dt_s, double tau_s);
};

}  // namespace zerodeg::thermal
