#include "thermal/enclosure.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace zerodeg::thermal {

const char* to_string(TentMod mod) {
    switch (mod) {
        case TentMod::kReflectiveFoil: return "reflective foil cover (R)";
        case TentMod::kInnerTentRemoved: return "inner tent removed (I)";
        case TentMod::kBottomOpened: return "bottom tarpaulin opened (B)";
        case TentMod::kFanInstalled: return "tabletop fan installed (F)";
        case TentMod::kFrontDoorHalfOpen: return "front door half-open (D)";
    }
    return "?";
}

char short_code(TentMod mod) {
    switch (mod) {
        case TentMod::kReflectiveFoil: return 'R';
        case TentMod::kInnerTentRemoved: return 'I';
        case TentMod::kBottomOpened: return 'B';
        case TentMod::kFanInstalled: return 'F';
        case TentMod::kFrontDoorHalfOpen: return 'D';
    }
    return '?';
}

TentModel::TentModel(TentConfig config, Celsius initial)
    : config_(config), inside_temp_(initial.value()), inside_rh_(75.0) {}

void TentModel::apply_modification(TentMod mod) { mods_[static_cast<int>(mod)] = true; }

bool TentModel::has_modification(TentMod mod) const { return mods_[static_cast<int>(mod)]; }

core::WattsPerKelvin TentModel::effective_conductance(core::MetersPerSecond wind) const {
    double g = config_.base_conductance.value();
    if (has_modification(TentMod::kInnerTentRemoved)) g *= config_.inner_removed_factor;
    if (has_modification(TentMod::kBottomOpened)) g *= config_.bottom_opened_factor;
    if (has_modification(TentMod::kFanInstalled)) g *= config_.fan_factor;
    if (has_modification(TentMod::kFrontDoorHalfOpen)) g *= config_.front_door_factor;
    // Forced convection: wind at wind_doubling_mps doubles the heat removal.
    // Ventilation mods make the envelope more wind-sensitive (air actually
    // passes through instead of around).
    double wind_gain = wind.value() / config_.wind_doubling_mps;
    if (has_modification(TentMod::kBottomOpened) ||
        has_modification(TentMod::kFrontDoorHalfOpen)) {
        wind_gain *= 1.5;
    }
    return core::WattsPerKelvin{g * (1.0 + wind_gain)};
}

Watts TentModel::solar_gain(core::WattsPerSquareMeter ghi) const {
    const double aperture = has_modification(TentMod::kReflectiveFoil)
                                ? config_.solar_aperture_foil_m2
                                : config_.solar_aperture_m2;
    return ghi.over_area(aperture);
}

void TentModel::step(Duration dt, const WeatherSample& outside) {
    if (dt.count() < 0) throw core::InvalidArgument("TentModel::step: negative dt");
    if (!humidity_initialized_) {
        inside_rh_ = weather::rebase_humidity(outside.temperature, outside.humidity,
                                              Celsius{inside_temp_})
                         .clamped()
                         .value();
        humidity_initialized_ = true;
    }

    const double g = effective_conductance(outside.wind).value();
    const double cap = config_.heat_capacity.value();
    const double input = equipment_power_.value() + solar_gain(outside.irradiance).value();

    // Exact relaxation toward equilibrium for this step's (constant) forcing:
    // T_eq = T_out + P/G, time constant C/G.
    const double t_eq = outside.temperature.value() + (g > 0.0 ? input / g : 0.0);
    const double a = g > 0.0 ? std::exp(-static_cast<double>(dt.count()) * g / cap) : 1.0;
    inside_temp_ = t_eq + (inside_temp_ - t_eq) * a;

    // Moisture: the inside vapour content tracks the outside with a lag; the
    // instantaneous target is the outside air's RH re-based to the inside
    // temperature.
    const double rh_target = weather::rebase_humidity(outside.temperature, outside.humidity,
                                                      Celsius{inside_temp_})
                                 .clamped()
                                 .value();
    double tau = static_cast<double>(config_.humidity_tau.count());
    // More airflow = faster tracking = the wider RH swings of Fig. 4's tail.
    tau /= effective_conductance(outside.wind).value() / config_.base_conductance.value();
    const double b = std::exp(-static_cast<double>(dt.count()) / std::max(tau, 1.0));
    inside_rh_ = rh_target + (inside_rh_ - rh_target) * b;
    inside_rh_ = std::clamp(inside_rh_, 0.0, 100.0);
}

EnclosureAir TentModel::air() const {
    EnclosureAir a;
    a.temperature = Celsius{inside_temp_};
    a.humidity = RelHumidity{inside_rh_};
    a.dew_point = inside_rh_ > 0.0
                      ? weather::dew_point(a.temperature, a.humidity)
                      : Celsius{-100.0};
    return a;
}

PrototypeBoxModel::PrototypeBoxModel(Celsius initial) : inside_temp_(initial.value()) {}

void PrototypeBoxModel::step(Duration dt, const WeatherSample& outside) {
    if (dt.count() < 0) throw core::InvalidArgument("PrototypeBoxModel::step: negative dt");
    const double t_eq = outside.temperature.value() + equipment_power_.value() / kConductance;
    const double a = std::exp(-static_cast<double>(dt.count()) * kConductance / kCapacity);
    inside_temp_ = t_eq + (inside_temp_ - t_eq) * a;
    inside_rh_ = weather::rebase_humidity(outside.temperature, outside.humidity,
                                          Celsius{inside_temp_})
                     .clamped()
                     .value();
}

EnclosureAir PrototypeBoxModel::air() const {
    EnclosureAir a;
    a.temperature = Celsius{inside_temp_};
    a.humidity = RelHumidity{inside_rh_};
    a.dew_point = inside_rh_ > 0.0 ? weather::dew_point(a.temperature, a.humidity)
                                   : Celsius{-100.0};
    return a;
}

BasementModel::BasementModel(Celsius setpoint, RelHumidity humidity)
    : setpoint_(setpoint), humidity_(humidity), temp_(setpoint.value()) {}

void BasementModel::set_equipment_power(Watts p) {
    if (p.value() < 0.0) throw core::InvalidArgument("BasementModel: negative power");
    equipment_power_ = p;
}

void BasementModel::step(Duration dt, const WeatherSample& /*outside*/) {
    if (dt.count() < 0) throw core::InvalidArgument("BasementModel::step: negative dt");
    // Office-type air conditioning holds the setpoint with a small excursion
    // proportional to the IT load (1 K per 2 kW is typical for a small room).
    temp_ = setpoint_.value() + equipment_power_.value() / 2000.0;
    // All equipment heat must be pumped out; meter it for energy accounting.
    cooling_energy_ += core::energy(equipment_power_, static_cast<double>(dt.count()));
}

EnclosureAir BasementModel::air() const {
    EnclosureAir a;
    a.temperature = Celsius{temp_};
    a.humidity = humidity_;
    a.dew_point = weather::dew_point(a.temperature, a.humidity);
    return a;
}

}  // namespace zerodeg::thermal
