#include "thermal/envelope.hpp"

#include "core/error.hpp"

namespace zerodeg::thermal {

EnvelopeSpec ashrae_recommended() {
    EnvelopeSpec s;
    s.name = "ASHRAE 2008 recommended";
    s.min_temp = core::Celsius{18.0};
    s.max_temp = core::Celsius{27.0};
    s.min_rh = core::RelHumidity{25.0};
    s.max_rh = core::RelHumidity{60.0};
    s.max_dew_point = core::Celsius{15.0};
    return s;
}

EnvelopeSpec ashrae_allowable() {
    EnvelopeSpec s;
    s.name = "ASHRAE 2008 allowable (class 1/2)";
    s.min_temp = core::Celsius{15.0};
    s.max_temp = core::Celsius{32.0};
    s.min_rh = core::RelHumidity{20.0};
    s.max_rh = core::RelHumidity{80.0};
    s.max_dew_point = core::Celsius{17.0};
    return s;
}

EnvelopeSpec ashrae_a4_like() {
    EnvelopeSpec s;
    s.name = "A4-like free-air class";
    s.min_temp = core::Celsius{5.0};
    s.max_temp = core::Celsius{45.0};
    s.min_rh = core::RelHumidity{8.0};
    s.max_rh = core::RelHumidity{90.0};
    s.max_dew_point = core::Celsius{24.0};
    return s;
}

const char* to_string(EnvelopeVerdict v) {
    switch (v) {
        case EnvelopeVerdict::kWithin: return "within envelope";
        case EnvelopeVerdict::kTooCold: return "below temperature minimum";
        case EnvelopeVerdict::kTooHot: return "above temperature maximum";
        case EnvelopeVerdict::kTooDry: return "below humidity minimum";
        case EnvelopeVerdict::kTooHumid: return "above humidity maximum";
        case EnvelopeVerdict::kDewPointHigh: return "dew point too high";
    }
    return "?";
}

EnvelopeVerdict classify(const EnvelopeSpec& spec, core::Celsius temp, core::RelHumidity rh,
                         core::Celsius dew_point) {
    if (temp < spec.min_temp) return EnvelopeVerdict::kTooCold;
    if (temp > spec.max_temp) return EnvelopeVerdict::kTooHot;
    if (rh < spec.min_rh) return EnvelopeVerdict::kTooDry;
    if (rh > spec.max_rh) return EnvelopeVerdict::kTooHumid;
    if (dew_point > spec.max_dew_point) return EnvelopeVerdict::kDewPointHigh;
    return EnvelopeVerdict::kWithin;
}

EnvelopeTracker::EnvelopeTracker(EnvelopeSpec spec) : spec_(spec) {}

void EnvelopeTracker::observe(core::Duration dt, core::Celsius temp, core::RelHumidity rh,
                              core::Celsius dew_point) {
    if (dt.count() < 0) throw core::InvalidArgument("EnvelopeTracker: negative dt");
    const double h = static_cast<double>(dt.count()) / 3600.0;
    hours_total_ += h;
    hours_[static_cast<std::size_t>(classify(spec_, temp, rh, dew_point))] += h;
}

double EnvelopeTracker::fraction_within() const {
    if (hours_total_ <= 0.0) return 0.0;
    return hours_[0] / hours_total_;
}

}  // namespace zerodeg::thermal
