#include "thermal/server_thermal.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::thermal {

ServerThermalConfig tower_thermal_config() {
    return {};  // defaults are the medium-tower vendor-A clone
}

ServerThermalConfig sff_thermal_config() {
    ServerThermalConfig c;
    // The known-unreliable small-form-factor series: cramped case, poor
    // airflow, so everything runs hotter per watt.
    c.cpu_resistance_k_per_w = 0.55;
    c.case_resistance_k_per_w = 0.085;
    c.hdd_rise_k = 7.0;
    return c;
}

ServerThermalConfig rack_2u_thermal_config() {
    ServerThermalConfig c;
    // 2U servers move a lot of air: low resistances, faster response.
    c.cpu_resistance_k_per_w = 0.28;
    c.case_resistance_k_per_w = 0.03;
    c.hdd_rise_k = 5.0;  // five spindles packed together
    c.cpu_tau = core::Duration::seconds(60);
    c.case_tau = core::Duration::minutes(6);
    return c;
}

ServerThermalModel::ServerThermalModel(ServerThermalConfig config, core::Celsius initial_intake)
    : config_(config),
      cpu_(initial_intake.value()),
      case_air_(initial_intake.value()),
      hdd_(initial_intake.value()) {}

double ServerThermalModel::relax(double current, double target, double dt_s, double tau_s) {
    const double a = std::exp(-dt_s / tau_s);
    return target + (current - target) * a;
}

void ServerThermalModel::step(core::Duration dt, core::Celsius intake, core::Watts cpu_power,
                              core::Watts total_power, double airflow) {
    if (dt.count() < 0) throw core::InvalidArgument("ServerThermalModel::step: negative dt");
    if (airflow <= 0.0) throw core::InvalidArgument("ServerThermalModel::step: airflow <= 0");
    const double dt_s = static_cast<double>(dt.count());
    const double flow_factor = std::pow(airflow, config_.airflow_exponent);

    const double case_target =
        intake.value() + total_power.value() * config_.case_resistance_k_per_w / flow_factor;
    case_air_ = relax(case_air_, case_target,
                      dt_s, static_cast<double>(config_.case_tau.count()));

    const double cpu_target =
        intake.value() + cpu_power.value() * config_.cpu_resistance_k_per_w / flow_factor;
    cpu_ = relax(cpu_, cpu_target, dt_s, static_cast<double>(config_.cpu_tau.count()));

    const double hdd_target = case_air_ + config_.hdd_rise_k / flow_factor;
    hdd_ = relax(hdd_, hdd_target, dt_s, static_cast<double>(config_.hdd_tau.count()));
}

core::Celsius ServerThermalModel::case_surface_temperature(core::Celsius intake) const {
    // The steel skin is convectively coupled to both sides; weight toward
    // the (warm) inside because the inside flow is fan-driven.
    return core::Celsius{0.35 * intake.value() + 0.65 * case_air_};
}

}  // namespace zerodeg::thermal
