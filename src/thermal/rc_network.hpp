// Lumped-parameter (RC) thermal network solver.
//
// Every enclosure and machine in the simulation is a small graph of thermal
// nodes: each node has a heat capacity, optional internal power dissipation,
// conductances to other nodes, and optionally a conductance to the ambient
// boundary (whose temperature is prescribed, e.g. by the weather model).
// Integration is explicit Euler with automatic sub-stepping bounded by the
// stiffest node's time constant, so callers can step at any cadence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace zerodeg::thermal {

using core::Celsius;
using core::Duration;
using core::JoulesPerKelvin;
using core::Watts;
using core::WattsPerKelvin;

/// Index of a node within a ThermalNetwork.
using NodeId = std::size_t;

class ThermalNetwork {
public:
    /// Add a node.  `to_ambient` may be zero for fully internal nodes.
    NodeId add_node(std::string name, JoulesPerKelvin capacity, Celsius initial,
                    WattsPerKelvin to_ambient = WattsPerKelvin{0.0});

    /// Connect two nodes with a fixed conductance.  Returns an edge index
    /// usable with set_edge_conductance (tent modifications change these).
    std::size_t connect(NodeId a, NodeId b, WattsPerKelvin conductance);

    void set_edge_conductance(std::size_t edge, WattsPerKelvin conductance);
    [[nodiscard]] WattsPerKelvin edge_conductance(std::size_t edge) const;

    /// Per-node knobs that change during a run.
    void set_power(NodeId n, Watts p);
    [[nodiscard]] Watts power(NodeId n) const;
    void set_ambient_conductance(NodeId n, WattsPerKelvin g);
    [[nodiscard]] WattsPerKelvin ambient_conductance(NodeId n) const;
    void set_temperature(NodeId n, Celsius t);

    [[nodiscard]] Celsius temperature(NodeId n) const;
    [[nodiscard]] const std::string& name(NodeId n) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

    /// Advance the whole network by `dt` with ambient at `ambient`.
    void step(Duration dt, Celsius ambient);

    /// Steady-state heat flow from node `n` to ambient at current temps.
    [[nodiscard]] Watts heat_flow_to_ambient(NodeId n, Celsius ambient) const;

    /// The equilibrium temperature the single node `n` would settle at with
    /// everything else frozen (used by tests to validate step()).
    [[nodiscard]] Celsius local_equilibrium(NodeId n, Celsius ambient) const;

private:
    struct Node {
        std::string name;
        double capacity = 1.0;    ///< J/K
        double temperature = 0.0; ///< degC
        double power = 0.0;       ///< W
        double to_ambient = 0.0;  ///< W/K
    };
    struct Edge {
        NodeId a = 0;
        NodeId b = 0;
        double conductance = 0.0;  ///< W/K
    };

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;

    /// Cached stiffest-node rate (max over nodes of max_rate), invalidated
    /// on topology or conductance changes.  step() used to recompute this
    /// O(nodes x edges) scan every call even though power/temperature —
    /// the only knobs that change every tick — cannot affect it.
    mutable double stiffest_rate_ = 0.0;
    mutable bool stiffest_rate_dirty_ = true;

    std::vector<double> flow_;  ///< single_step scratch, reused across sub-steps

    [[nodiscard]] double max_rate(NodeId n) const;  ///< sum of conductances / capacity
    [[nodiscard]] double stiffest_rate() const;
    void single_step(double dt_seconds, double ambient);
    void check_node(NodeId n) const;
};

}  // namespace zerodeg::thermal
