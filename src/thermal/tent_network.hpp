// Multi-node tent model built on the RC network solver.
//
// The single-node TentModel reproduces the figures; this three-node variant
// (inside air / fabric shell / equipment thermal mass) resolves the effects
// the lumped model folds away: the fabric running hotter than the air in
// sunshine (what the rescue foil actually fixes) and the machines' steel
// buffering fast fronts.  Same Enclosure interface, so it drops into any
// code that takes the tent, and the ablation bench compares the two.
#pragma once

#include <string>

#include "thermal/enclosure.hpp"
#include "thermal/rc_network.hpp"

namespace zerodeg::thermal {

class TentNetworkModel final : public Enclosure {
public:
    explicit TentNetworkModel(TentConfig config = TentConfig(),
                              Celsius initial = Celsius{0.0});

    void apply_modification(TentMod mod);
    [[nodiscard]] bool has_modification(TentMod mod) const;

    void set_equipment_power(Watts p) override { equipment_power_ = p; }
    void step(Duration dt, const WeatherSample& outside) override;
    [[nodiscard]] EnclosureAir air() const override;
    [[nodiscard]] const std::string& name() const override { return name_; }

    /// Extra observables the single-node model cannot provide.
    [[nodiscard]] Celsius fabric_temperature() const;
    [[nodiscard]] Celsius equipment_mass_temperature() const;

    [[nodiscard]] const TentConfig& config() const { return config_; }

private:
    std::string name_ = "tent-network";
    TentConfig config_;
    Watts equipment_power_{0.0};
    ThermalNetwork net_;
    NodeId air_node_;
    NodeId fabric_node_;
    NodeId mass_node_;
    std::size_t air_fabric_edge_;
    double inside_rh_ = 75.0;
    bool mods_[5] = {};
    bool humidity_initialized_ = false;

    [[nodiscard]] double envelope_multiplier() const;
    void update_conductances(core::MetersPerSecond wind);
};

}  // namespace zerodeg::thermal
