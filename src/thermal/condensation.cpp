#include "thermal/condensation.hpp"

#include <algorithm>

#include "weather/psychrometrics.hpp"

namespace zerodeg::thermal {

CondensationAnalyzer::CondensationAnalyzer(core::Celsius safety_margin)
    : safety_margin_(safety_margin) {}

void CondensationAnalyzer::observe(core::TimePoint t, core::Celsius surface,
                                   core::Celsius air_temp, core::RelHumidity air_rh) {
    const core::Celsius margin = weather::condensation_margin(surface, air_temp, air_rh);
    margins_.append(t, margin.value());
    if (margin <= core::Celsius{0.0}) condensed_ = true;

    const bool risky = margin <= safety_margin_;
    if (risky && !in_event_) {
        in_event_ = true;
        open_ = {t, t, margin};
    } else if (risky && in_event_) {
        open_.end = t;
        open_.worst_margin = std::min(open_.worst_margin, margin);
    } else if (!risky && in_event_) {
        open_.end = t;
        events_.push_back(open_);
        in_event_ = false;
    }
}

void CondensationAnalyzer::finish(core::TimePoint t) {
    if (in_event_) {
        open_.end = t;
        events_.push_back(open_);
        in_event_ = false;
    }
}

}  // namespace zerodeg::thermal
