// Condensation-risk analyzer (the Section 5 question).
//
// "A central question concerns whether water can condense in the hardware" —
// the paper argues it cannot as long as the cases are warmer than the air's
// dew point, which their internal dissipation guarantees except when outside
// air suddenly becomes warmer than the (cold-soaked) cases.  The analyzer
// tracks the margin between a surface temperature and the ambient dew point
// and records every excursion below a configurable safety threshold.
#pragma once

#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "core/timeseries.hpp"
#include "core/units.hpp"

namespace zerodeg::thermal {

struct CondensationEvent {
    core::TimePoint start;
    core::TimePoint end;
    core::Celsius worst_margin;  ///< most negative (or least positive) margin seen
};

class CondensationAnalyzer {
public:
    /// @param safety_margin  report an event whenever the surface is within
    ///                       this many degrees of the dew point.
    explicit CondensationAnalyzer(core::Celsius safety_margin = core::Celsius{1.0});

    /// Feed one observation: the surface of interest, and the air around it.
    void observe(core::TimePoint t, core::Celsius surface, core::Celsius air_temp,
                 core::RelHumidity air_rh);

    /// Completed below-threshold excursions (an open excursion is completed
    /// by the first safe observation or by finish()).
    [[nodiscard]] const std::vector<CondensationEvent>& events() const { return events_; }

    /// Close any open excursion (call at the end of a run).
    void finish(core::TimePoint t);

    /// Full margin history (surface minus dew point), for the ABL-COND bench.
    [[nodiscard]] const core::TimeSeries& margin_series() const { return margins_; }

    /// True condensation (margin <= 0) observed at any point?
    [[nodiscard]] bool condensation_occurred() const { return condensed_; }

    [[nodiscard]] std::size_t observations() const { return margins_.size(); }

private:
    core::Celsius safety_margin_;
    core::TimeSeries margins_{"condensation_margin_degC"};
    std::vector<CondensationEvent> events_;
    bool in_event_ = false;
    CondensationEvent open_{};
    bool condensed_ = false;
};

}  // namespace zerodeg::thermal
