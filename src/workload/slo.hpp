// Latency / SLO accounting for the traffic workload.
//
// Every completed request's sojourn time is recorded (the percentile basis),
// deadline misses and drops are counted, and a per-tick aggregate row is
// appended so a season exports a compact latency CSV instead of millions of
// raw samples.  All aggregation is order-stable: rows are appended in tick
// order and percentiles use core::stats' deterministic interpolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_time.hpp"

namespace zerodeg::workload {

/// One tick's latency aggregate (the unit of the exported CSV).
struct SloTickRow {
    core::TimePoint time;          ///< tick end
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t deadline_misses = 0;
    double p50_seconds = 0.0;      ///< over this tick's completions (0 if none)
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
    double mean_utilization = 0.0; ///< fleet-mean busy fraction this tick
};

class SloTracker {
public:
    explicit SloTracker(double deadline_seconds);

    /// A completed request's sojourn (response) time, in seconds.
    void record(double sojourn_seconds);
    /// A request that never completed (host down, nowhere to dispatch).
    /// Drops are charged as deadline misses too — the user saw no response.
    void record_dropped();

    /// Close the current tick: fold the since-last-call completions into one
    /// CSV row stamped `tick_end`.
    void close_tick(core::TimePoint tick_end, double mean_utilization);

    // --- season-wide aggregates -------------------------------------------
    [[nodiscard]] std::uint64_t completed() const { return completed_; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
    [[nodiscard]] std::uint64_t deadline_misses() const { return deadline_misses_; }
    [[nodiscard]] double deadline_miss_fraction() const;
    [[nodiscard]] double mean_sojourn_seconds() const;
    /// Percentile over every completed request's sojourn, p in [0, 100].
    [[nodiscard]] double sojourn_percentile(double p) const;
    [[nodiscard]] double deadline_seconds() const { return deadline_; }

    [[nodiscard]] const std::vector<SloTickRow>& tick_rows() const { return rows_; }

private:
    double deadline_;
    std::uint64_t completed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t deadline_misses_ = 0;
    double sojourn_sum_ = 0.0;
    std::vector<double> sojourns_;      ///< every completion, season-wide
    std::vector<double> tick_sojourns_; ///< completions since the last close_tick
    std::uint64_t tick_dropped_ = 0;
    std::uint64_t tick_misses_ = 0;
    std::vector<SloTickRow> rows_;
};

/// Render the per-tick aggregate rows as CSV (the `traffic_slo.csv` export).
[[nodiscard]] std::string render_slo_csv(const SloTracker& tracker);

}  // namespace zerodeg::workload
