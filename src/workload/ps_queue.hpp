// Processor-sharing queue: the service model of the traffic workload.
//
// A PS server of capacity `service_rate` (work units per second) splits its
// capacity equally over all resident jobs; a job with demand d therefore
// leaves after integral(rate / n(t)) dt == d.  The simulation is *exact*,
// not tick-quantized: advance_to() walks from completion to completion in
// continuous time, so sojourn times match the M/M/1-PS closed forms
// (E[T] = 1/(mu - lambda)) to sampling error alone — the property the
// analytic-oracle suite (tests/test_traffic_analytic.cpp) pins to 2%.
//
// Everything is deterministic: jobs are held in admission order, ties
// complete in admission order, and no randomness lives here (the generators
// own the RNG streams).
#pragma once

#include <cstdint>
#include <vector>

namespace zerodeg::workload {

class PsQueue {
public:
    /// `service_rate` is the server capacity in work units per second; a
    /// job's demand is expressed in the same work units.
    explicit PsQueue(double service_rate);

    struct Completion {
        std::uint64_t id = 0;
        double time = 0.0;  ///< absolute queue time of the departure
    };

    /// Admit a job at absolute time `now` (must be >= clock(); callers
    /// advance_to(now) first so pending departures are not skipped).
    void admit(std::uint64_t id, double demand, double now);

    /// Advance the queue clock to absolute time `t`, appending every
    /// departure in (clock(), t] to `out` in completion order.
    void advance_to(double t, std::vector<Completion>& out);

    /// Remove a resident job (clone cancellation / host crash).  Returns
    /// false if the id is not resident.
    bool cancel(std::uint64_t id);

    /// Drop every resident job (host crash), appending their ids to `out`
    /// in admission order.
    void drop_all(std::vector<std::uint64_t>& out);

    [[nodiscard]] std::size_t in_service() const { return jobs_.size(); }
    [[nodiscard]] double clock() const { return clock_; }
    [[nodiscard]] double service_rate() const { return rate_; }

    /// Absolute time of the next departure if nothing else arrives;
    /// +infinity when idle.
    [[nodiscard]] double next_completion_time() const;

    /// Busy time (clock seconds with >= 1 resident job) accumulated since
    /// the last call; the per-tick utilization integrand.
    [[nodiscard]] double take_busy_seconds();

private:
    struct Job {
        std::uint64_t id = 0;
        double remaining = 0.0;  ///< work units left
    };

    double rate_;
    double clock_ = 0.0;
    double busy_seconds_ = 0.0;
    std::vector<Job> jobs_;  ///< admission order
};

}  // namespace zerodeg::workload
