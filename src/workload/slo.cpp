#include "workload/slo.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace zerodeg::workload {

namespace {

std::string fmt6(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

}  // namespace

SloTracker::SloTracker(double deadline_seconds) : deadline_(deadline_seconds) {
    if (!(deadline_seconds > 0.0)) {
        throw core::InvalidArgument("SloTracker: deadline_seconds must be positive");
    }
}

void SloTracker::record(double sojourn_seconds) {
    ++completed_;
    sojourn_sum_ += sojourn_seconds;
    sojourns_.push_back(sojourn_seconds);
    tick_sojourns_.push_back(sojourn_seconds);
    if (sojourn_seconds > deadline_) {
        ++deadline_misses_;
        ++tick_misses_;
    }
}

void SloTracker::record_dropped() {
    ++dropped_;
    ++tick_dropped_;
    ++deadline_misses_;
    ++tick_misses_;
}

void SloTracker::close_tick(core::TimePoint tick_end, double mean_utilization) {
    SloTickRow row;
    row.time = tick_end;
    row.completed = tick_sojourns_.size();
    row.dropped = tick_dropped_;
    row.deadline_misses = tick_misses_;
    row.mean_utilization = mean_utilization;
    if (!tick_sojourns_.empty()) {
        row.p50_seconds = core::percentile(tick_sojourns_, 50.0);
        row.p95_seconds = core::percentile(tick_sojourns_, 95.0);
        row.p99_seconds = core::percentile(tick_sojourns_, 99.0);
    }
    rows_.push_back(row);
    tick_sojourns_.clear();
    tick_dropped_ = 0;
    tick_misses_ = 0;
}

double SloTracker::deadline_miss_fraction() const {
    const std::uint64_t issued = completed_ + dropped_;
    if (issued == 0) return 0.0;
    return static_cast<double>(deadline_misses_) / static_cast<double>(issued);
}

double SloTracker::mean_sojourn_seconds() const {
    if (completed_ == 0) return 0.0;
    return sojourn_sum_ / static_cast<double>(completed_);
}

double SloTracker::sojourn_percentile(double p) const {
    if (sojourns_.empty()) return 0.0;
    return core::percentile(sojourns_, p);
}

std::string render_slo_csv(const SloTracker& tracker) {
    std::ostringstream out;
    out << "time,completed,dropped,deadline_misses,p50_s,p95_s,p99_s,mean_utilization\n";
    for (const SloTickRow& row : tracker.tick_rows()) {
        out << row.time.to_string() << ',' << row.completed << ',' << row.dropped << ','
            << row.deadline_misses << ',' << fmt6(row.p50_seconds) << ','
            << fmt6(row.p95_seconds) << ',' << fmt6(row.p99_seconds) << ','
            << fmt6(row.mean_utilization) << '\n';
    }
    return out.str();
}

}  // namespace zerodeg::workload
