#include "workload/crc32.hpp"

#include <array>

namespace zerodeg::workload {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
    for (const std::uint8_t byte : data) {
        crc_ = kTable[(crc_ ^ byte) & 0xffu] ^ (crc_ >> 8);
    }
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    Crc32 c;
    c.update(data);
    return c.value();
}

}  // namespace zerodeg::workload
