#include "workload/crc32.hpp"

#include <array>
#include <cstring>

namespace zerodeg::workload {

namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// gives the CRC of a byte followed by k zero bytes, letting update() fold
// eight input bytes per iteration.  Same polynomial (reflected 0xEDB88320),
// same values as the byte-at-a-time loop — just fewer dependent loads.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        tables[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = tables[0][i];
        for (std::size_t t = 1; t < 8; ++t) {
            c = tables[0][c & 0xffu] ^ (c >> 8);
            tables[t][i] = c;
        }
    }
    return tables;
}

constexpr auto kTables = make_tables();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
    std::size_t i = 0;
    std::uint32_t crc = crc_;
    for (; i + 8 <= data.size(); i += 8) {
        // Little-endian-agnostic: assemble the two words byte by byte.
        const std::uint32_t lo = static_cast<std::uint32_t>(data[i]) |
                                 static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                 static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                 static_cast<std::uint32_t>(data[i + 3]) << 24;
        const std::uint32_t hi = static_cast<std::uint32_t>(data[i + 4]) |
                                 static_cast<std::uint32_t>(data[i + 5]) << 8 |
                                 static_cast<std::uint32_t>(data[i + 6]) << 16 |
                                 static_cast<std::uint32_t>(data[i + 7]) << 24;
        const std::uint32_t x = crc ^ lo;
        crc = kTables[7][x & 0xffu] ^ kTables[6][(x >> 8) & 0xffu] ^
              kTables[5][(x >> 16) & 0xffu] ^ kTables[4][(x >> 24) & 0xffu] ^
              kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
              kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][(hi >> 24) & 0xffu];
    }
    for (; i < data.size(); ++i) {
        crc = kTables[0][(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    }
    crc_ = crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    Crc32 c;
    c.update(data);
    return c.value();
}

}  // namespace zerodeg::workload
