#include "workload/scheduler.hpp"

#include "core/error.hpp"

namespace zerodeg::workload {

LoadScheduler::LoadScheduler(core::Simulator& sim, LoadJob job,
                             faults::MemoryFaultParams mem_params, std::uint64_t master_seed,
                             core::Duration cycle)
    : sim_(sim),
      job_(std::move(job)),
      mem_params_(mem_params),
      master_seed_(master_seed),
      cycle_(cycle) {
    if (cycle.count() <= 0) throw core::InvalidArgument("LoadScheduler: bad cycle");
}

void LoadScheduler::add_host(HostBinding binding, core::TimePoint first_cycle) {
    if (hosts_.contains(binding.host_id)) {
        throw core::InvalidArgument("LoadScheduler::add_host: duplicate host");
    }
    if (!binding.operational) {
        throw core::InvalidArgument("LoadScheduler::add_host: missing operational check");
    }
    const int id = binding.host_id;
    const std::string tag = std::to_string(id);
    HostState state{
        std::move(binding),
        faults::MemoryFaultModel(mem_params_, core::RngStream{master_seed_, "load.mem." + tag}),
        core::RngStream{master_seed_, "load.fuzz." + tag},
        0,
        false,
    };
    hosts_.emplace(id, std::move(state));
    stats_.emplace(id, HostLoadStats{});

    const core::TimePoint start = first_cycle < sim_.now() ? sim_.now() : first_cycle;
    hosts_.at(id).cycle_event = sim_.schedule_every(
        start, cycle_,
        [this, id] {
            // "each host sleeps for 0 to 119 seconds before commencing"
            HostState& h = hosts_.at(id);
            if (h.removed) return;
            const auto fuzz = core::Duration::seconds(h.fuzz_rng.uniform_int(0, 119));
            sim_.schedule_in(fuzz, [this, id] { run_cycle(id); },
                             "load-cycle host " + std::to_string(id));
        },
        "load-tick host " + tag);
}

void LoadScheduler::remove_host(int host_id) {
    const auto it = hosts_.find(host_id);
    if (it == hosts_.end()) throw core::InvalidArgument("LoadScheduler::remove_host: unknown");
    it->second.removed = true;
    sim_.cancel(it->second.cycle_event);
}

void LoadScheduler::run_cycle(int host_id) {
    HostState& h = hosts_.at(host_id);
    if (h.removed) return;
    HostLoadStats& st = stats_.at(host_id);
    if (!h.binding.operational()) {
        ++st.skipped;
        return;
    }
    const JobResult result = job_.run(h.memory, h.binding.ecc);
    ++st.runs;
    st.page_ops += result.page_ops;
    st.ecc_corrected += result.corrected_flips;
    if (!result.hash_ok) {
        ++st.wrong_hashes;
        WrongHashIncident inc;
        inc.time = sim_.now();
        inc.host_id = host_id;
        if (result.forensics) {
            inc.corrupt_blocks = result.forensics->corrupt_blocks.size();
            inc.total_blocks = result.forensics->total_blocks;
            inc.recovered = result.forensics->lost_bytes < result.forensics->salvaged_bytes;
        }
        incidents_.push_back(inc);
    }
}

const HostLoadStats& LoadScheduler::stats(int host_id) const {
    const auto it = stats_.find(host_id);
    if (it == stats_.end()) throw core::InvalidArgument("LoadScheduler::stats: unknown host");
    return it->second;
}

std::uint64_t LoadScheduler::total_runs() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.runs;
    return n;
}

std::uint64_t LoadScheduler::total_wrong_hashes() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.wrong_hashes;
    return n;
}

std::uint64_t LoadScheduler::total_page_ops() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.page_ops;
    return n;
}

}  // namespace zerodeg::workload
