// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//
// frost's compressed container stores a CRC per block, mirroring bzip2's
// per-block CRCs — that is what lets the recovery utility point at exactly
// one corrupted block out of 396 (Section 4.2.2).
#pragma once

#include <cstdint>
#include <span>

namespace zerodeg::workload {

class Crc32 {
public:
    void update(std::span<const std::uint8_t> data);
    [[nodiscard]] std::uint32_t value() const { return ~crc_; }
    void reset() { crc_ = 0xffffffffu; }

private:
    std::uint32_t crc_ = 0xffffffffu;
};

/// One-shot convenience.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace zerodeg::workload
