// Request generators for the traffic workload.
//
// Two archetypes, per the request-cloning reproducibility report's service
// model (PAPERS.md):
//
//   * open loop  — a nonhomogeneous Poisson process: a diurnal rate curve
//     (users sleep) times scheduled flash-crowd multipliers (something goes
//     viral), realized by thinning so determinism holds for any rate shape;
//   * closed loop — N users cycling think -> request -> response -> think,
//     whose throughput obeys the classic asymptotic bound min(N/(Z+R), mu).
//
// All randomness is drawn from named core::rng streams of the season's
// master seed; generating the same window twice replays the same arrivals
// bit for bit, which is what the cross-engine determinism tests rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"

namespace zerodeg::workload {

/// A scheduled load spike: the arrival rate is multiplied by `multiplier`
/// while `start <= t < start + duration`.
struct FlashCrowd {
    core::TimePoint start;
    core::Duration duration{0};
    double multiplier = 1.0;
};

/// The open-loop arrival process: diurnal sinusoid around `base_rps` plus
/// flash crowds.
struct OpenLoopConfig {
    /// Fleet-wide mean request rate, 1/s.  The default is sized for the
    /// paper fleet's *early* era: six hosts of 1/12 rps capacity each serve
    /// 0.25 rps at rho = 0.5 (0.7 at the diurnal peak); the full 18-host
    /// fleet idles near rho = 0.17 unless a flash crowd hits.
    double base_rps = 0.25;
    double diurnal_amplitude = 0.4; ///< relative swing, in [0, 1)
    double peak_hour = 20.0;        ///< local hour of the diurnal maximum
    std::vector<FlashCrowd> flash_crowds;
};

/// Instantaneous arrival rate at absolute time `t` (requests per second).
[[nodiscard]] double arrival_rate(const OpenLoopConfig& config, core::TimePoint t);

/// Open-loop arrival sequencer: emits the Poisson arrival instants of the
/// configured rate curve, in order, via thinning against the rate envelope.
class OpenLoopGenerator {
public:
    /// Arrival times are seconds relative to `origin` (the season start);
    /// the stream is named so other consumers never perturb it.
    OpenLoopGenerator(OpenLoopConfig config, std::uint64_t master_seed,
                      core::TimePoint origin);

    /// The next arrival instant strictly after the previous one, in seconds
    /// since the origin.  Unbounded sequence; callers stop reading when the
    /// instant passes their window.
    [[nodiscard]] double next_arrival();

private:
    OpenLoopConfig config_;
    core::TimePoint origin_;
    core::RngStream rng_;
    double rate_max_;
    double t_ = 0.0;
};

/// The closed-loop population: N users with exponential think times.
struct ClosedLoopConfig {
    int users = 60;
    double think_seconds = 60.0;  ///< mean think time Z
};

/// Per-request service demand: exponential with the given mean, drawn from
/// its own named stream (one draw per dispatched clone).
class DemandSampler {
public:
    DemandSampler(double mean_seconds, std::uint64_t master_seed);
    [[nodiscard]] double next();

private:
    double mean_;
    core::RngStream rng_;
};

}  // namespace zerodeg::workload
