#include "workload/load_job.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "workload/archive.hpp"

namespace zerodeg::workload {

LoadJob::LoadJob(LoadJobConfig config, std::uint64_t seed)
    : config_(config), flip_rng_(seed, "loadjob.flips") {
    const SyntheticCorpus corpus(config.corpus, seed);
    archive_ = write_archive(corpus.files());

    // Pick a block size that yields ~target_blocks blocks, as the paper's
    // corpus did under bzip2's 900k blocks (396 blocks there).
    if (config.target_blocks == 0) throw core::InvalidArgument("LoadJob: zero target blocks");
    comp_config_.block_size = std::max<std::size_t>(1024, archive_.size() / config.target_blocks);
    reference_container_ = frost_compress(archive_, comp_config_);
    reference_digest_ = md5(reference_container_);
    block_count_ = frost_block_directory(reference_container_).size();

    const std::uint64_t real_page_ops =
        static_cast<std::uint64_t>((archive_.size() + reference_container_.size()) / 4096);
    page_ops_per_run_ = static_cast<std::uint64_t>(static_cast<double>(real_page_ops) *
                                                   config.page_op_multiplier);
}

JobResult LoadJob::run(faults::MemoryFaultModel& memory, bool ecc) {
    JobResult result;
    result.page_ops = page_ops_per_run_;

    const faults::MemoryFaultOutcome outcome = memory.run(page_ops_per_run_, ecc);
    result.raw_flips = outcome.raw_flips;
    result.corrected_flips = outcome.corrected;

    if (outcome.corrupting_flips == 0) {
        // Clean run: the pipeline is deterministic, so the output is
        // bit-identical to the reference container.
        if (config_.cache_clean_runs) {
            result.digest = reference_digest_;
        } else {
            const std::vector<std::uint8_t> container = frost_compress(archive_, comp_config_);
            result.digest = md5(container);
        }
        result.hash_ok = result.digest == reference_digest_;
        return result;
    }

    // A corrupting flip: run the real pipeline and damage the buffer the way
    // a flipped DRAM bit does — one bit, somewhere in the data pages.  The
    // pipeline is deterministic (the clean path above already banks on it),
    // so under cache_clean_runs the pre-damage buffer is a copy of the
    // reference container rather than a fresh compression pass.
    std::vector<std::uint8_t> container =
        config_.cache_clean_runs ? reference_container_ : frost_compress(archive_, comp_config_);
    for (std::uint64_t i = 0; i < outcome.corrupting_flips; ++i) {
        // Flip within payload area (skip the 12-byte stream header so the
        // damage lands in a block, as the paper observed).
        const auto byte_index = static_cast<std::size_t>(
            flip_rng_.uniform_int(12, static_cast<std::int64_t>(container.size()) - 1));
        const auto bit = static_cast<int>(flip_rng_.uniform_int(0, 7));
        container[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    }

    result.digest = md5(container);
    result.hash_ok = result.digest == reference_digest_;
    if (!result.hash_ok) {
        // "If the results differ, the packed tarball is stored" — and later
        // inspected with the recovery utility.
        result.forensics = frost_recover(container);
    }
    return result;
}

}  // namespace zerodeg::workload
